//! Shared-store equivalence: a randomized mixed order-book + warehouse
//! stream flows through one shared-store `ViewServer` (maps deduplicated
//! across views, each shared map maintained by exactly one view) and, in
//! parallel, through N fully independent `Engine`s — one per view, each
//! privately materializing every map. The server's `snapshot_all` and
//! per-view results must match the independent engines exactly, routing
//! is asserted via per-view event counters, and the store report must
//! show the `BASE_*` maps of the portfolio materialized once.

use dbtoaster::compiler::{compile_sql, CompileOptions};
use dbtoaster::prelude::*;
use dbtoaster::workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, SOBI, VWAP_COMPONENTS,
    VWAP_NESTED,
};
use dbtoaster::workloads::tpch::{
    ssb_catalog, transform_to_ssb, TpchConfig, TpchData, SSB_REVENUE_BY_YEAR,
};
use dbtoaster::workloads::GeneratorSource;

/// One catalog covering both workloads (relation names are disjoint).
fn shared_catalog() -> Catalog {
    let mut catalog = orderbook_catalog();
    for schema in ssb_catalog().relations() {
        catalog.add(schema.clone());
    }
    catalog
}

/// The portfolio: full, first-order and nested compilations mixed, so
/// the store sees result maps, sub-aggregates and `BASE_*` maps.
/// `vwap` and `vwap_again` are textually identical (everything shares);
/// the first-order pair shares `BASE_BIDS`/`BASE_ASKS` with each other
/// and with the nested view's `BASE_BIDS`.
fn portfolio() -> Vec<(&'static str, &'static str, CompileOptions)> {
    vec![
        ("vwap", VWAP_COMPONENTS, CompileOptions::full()),
        ("vwap_again", VWAP_COMPONENTS, CompileOptions::full()),
        ("market_maker", MARKET_MAKER, CompileOptions::full()),
        ("sobi_fo", SOBI, CompileOptions::first_order()),
        ("mm_fo", MARKET_MAKER, CompileOptions::first_order()),
        ("vwap_nested", VWAP_NESTED, CompileOptions::full()),
        ("ssb_revenue", SSB_REVENUE_BY_YEAR, CompileOptions::full()),
    ]
}

/// The randomized mixed stream: order-book messages interleaved with
/// warehouse loading records (both generators are seeded, so the test is
/// deterministic while the event mix is arbitrary inserts and deletes).
fn mixed_stream() -> UpdateStream {
    let orderbook = OrderBookGenerator::new(OrderBookConfig {
        messages: 700,
        book_depth: 120,
        ..Default::default()
    })
    .generate();
    let warehouse = transform_to_ssb(&TpchData::generate(&TpchConfig {
        orders: 120,
        ..Default::default()
    }));
    GeneratorSource::interleave("mixed", [orderbook, warehouse])
        .drain(1 << 20)
        .unwrap()
}

fn build_server(catalog: &Catalog) -> ViewServer {
    let mut server = ViewServer::new(catalog);
    for (name, sql, options) in portfolio() {
        server.register_with(name, sql, &options).unwrap();
    }
    server
}

fn build_engines(catalog: &Catalog) -> Vec<(&'static str, Engine)> {
    portfolio()
        .into_iter()
        .map(|(name, sql, options)| {
            let program = compile_sql(sql, catalog, &options).unwrap();
            (name, Engine::new(&program).unwrap())
        })
        .collect()
}

#[test]
fn shared_store_server_matches_independent_engines_exactly() {
    let catalog = shared_catalog();
    let server = build_server(&catalog);
    let mut engines = build_engines(&catalog);
    let stream = mixed_stream();

    // Server: batched ingestion. Engines: the same events, per event
    // (independent engines simply ignore relations they don't watch).
    for chunk in stream.events.chunks(97) {
        server.apply_batch(chunk).unwrap();
    }
    for (_, engine) in &mut engines {
        engine.process(&stream).unwrap();
    }

    // Every view answers exactly as its private engine — including the
    // views whose maps are all shared and never written by their own
    // statements.
    let snapshots = server.snapshot_all();
    assert_eq!(snapshots.len(), engines.len());
    for (snapshot, (name, engine)) in snapshots.iter().zip(&engines) {
        assert_eq!(&snapshot.name, name);
        assert_eq!(snapshot.columns, engine.column_names(), "{name}");
        assert_eq!(snapshot.rows, engine.result(), "{name} diverged");
        assert_eq!(
            server.result(name).unwrap(),
            engine.result(),
            "{name} diverged outside the snapshot path"
        );
    }

    // Routing: each view absorbed exactly the events of its relations.
    let events_of = |rels: &[&str]| -> u64 {
        stream
            .events
            .iter()
            .filter(|e| rels.contains(&e.relation.as_str()))
            .count() as u64
    };
    for name in ["vwap", "vwap_again", "vwap_nested"] {
        assert_eq!(
            server.events_processed(name).unwrap(),
            events_of(&["BIDS"]),
            "{name}"
        );
    }
    for name in ["market_maker", "sobi_fo", "mm_fo"] {
        assert_eq!(
            server.events_processed(name).unwrap(),
            events_of(&["BIDS", "ASKS"]),
            "{name}"
        );
    }
    assert_eq!(
        server.events_processed("ssb_revenue").unwrap(),
        events_of(&["DATES", "LINEORDER"])
    );
    // The mix genuinely exercises partial routing.
    assert!(events_of(&["BIDS"]) > 0);
    assert!(events_of(&["BIDS"]) < stream.len() as u64);
}

#[test]
fn the_portfolio_dedupes_base_maps_and_identical_views() {
    let catalog = shared_catalog();
    let server = build_server(&catalog);
    let report = server.store_report();

    // BASE_BIDS: one slot, shared by the two first-order views. (The
    // nested view no longer binds it: the materialization hierarchy
    // maintains vwap_nested from its own child maps instead of
    // re-evaluating over BASE_BIDS.)
    let base_bids: Vec<_> = report
        .maps
        .iter()
        .filter(|m| m.aliases.iter().any(|(_, n)| n == "BASE_BIDS"))
        .collect();
    assert_eq!(base_bids.len(), 1, "BASE_BIDS materialized once");
    assert_eq!(base_bids[0].sharers, 2);
    assert_eq!(base_bids[0].maintainer, "sobi_fo");
    assert!(base_bids[0].is_base_relation);
    assert!(
        !report.maps.iter().any(|m| m
            .aliases
            .iter()
            .any(|(v, n)| v == "vwap_nested" && n == "BASE_BIDS")),
        "hierarchy-compiled nested views must not materialize base maps"
    );

    // BASE_ASKS: one slot, shared by the two first-order views.
    let base_asks: Vec<_> = report
        .maps
        .iter()
        .filter(|m| m.aliases.iter().any(|(_, n)| n == "BASE_ASKS"))
        .collect();
    assert_eq!(base_asks.len(), 1, "BASE_ASKS materialized once");
    assert_eq!(base_asks[0].sharers, 2);

    // vwap_again shares every map with vwap (identical SQL).
    assert!(report
        .maps
        .iter()
        .filter(|m| m.aliases.iter().any(|(v, _)| v == "vwap_again"))
        .all(|m| m.aliases.iter().any(|(v, _)| v == "vwap")));
}

#[test]
fn shared_map_writes_happen_once_per_event() {
    let catalog = shared_catalog();
    let server = build_server(&catalog);
    let stream = mixed_stream();
    server.apply_batch(&stream.events).unwrap();

    let report = server.store_report();
    // vwap_again's statements are fully skipped (vwap maintains its
    // maps), and the base-map sharers skip their own BASE_* updates, so
    // the dedup must have saved a substantial number of statement runs.
    assert!(
        report.dedup_skipped_statements >= server.events_processed("vwap_again").unwrap(),
        "expected at least one skipped statement per vwap_again delivery, got {}",
        report.dedup_skipped_statements
    );
    // Memory: the shared store holds strictly less than the per-view
    // baseline, and exactly the deduped totals add up.
    assert!(server.memory_bytes() < server.memory_bytes_if_unshared());
    assert_eq!(
        server.memory_bytes(),
        report.total_bytes,
        "store accounting is consistent"
    );
}

#[test]
fn batched_and_per_event_shared_ingestion_agree() {
    let catalog = shared_catalog();
    let batched = build_server(&catalog);
    let per_event = build_server(&catalog);
    let stream = mixed_stream();

    for chunk in stream.events.chunks(113) {
        batched.apply_batch(chunk).unwrap();
    }
    for event in &stream {
        per_event.apply(event).unwrap();
    }
    for (name, _, _) in portfolio() {
        assert_eq!(
            batched.result(name).unwrap(),
            per_event.result(name).unwrap(),
            "{name} diverged between ingestion paths"
        );
        assert_eq!(
            batched.events_processed(name).unwrap(),
            per_event.events_processed(name).unwrap()
        );
    }
}
