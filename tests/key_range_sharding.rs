//! Key-range sharding equivalence: a single *hot* relation feeding
//! several views is range-sharded ([`ViewServer::enable_range_sharding`])
//! and driven through the scoped [`ShardedDispatcher`], which buckets
//! the hot relation's events by key range and runs the ranges
//! concurrently. The stream is randomized and *skewed* — a few keys
//! absorb most of the traffic, with duplicate tuples and genuine
//! deletes — and every aggregate is integer-valued, so the final
//! snapshots must be **bit-exact** equal to a sequential server at
//! every worker count.
//!
//! A second group of tests pins the sound default: relations whose
//! views are not provably range-shardable (cross-relation joins, maps
//! shared with another relation's triggers) are *rejected* by
//! `enable_range_sharding` and keep whole-relation locking.

use std::sync::Arc;

use dbtoaster::prelude::*;

/// One hot stream plus a cold side relation, so mixed batches exercise
/// the default bucket and the range buckets together.
fn catalog() -> Catalog {
    Catalog::new()
        .with(Schema::new(
            "BOOK",
            vec![
                ("ID", ColumnType::Int),
                ("PRICE", ColumnType::Int),
                ("VOLUME", ColumnType::Int),
            ],
        ))
        .with(Schema::new(
            "AUDIT",
            vec![("ID", ColumnType::Int), ("QTY", ColumnType::Int)],
        ))
}

/// The hot-relation portfolio: accumulator-only flat group-bys (group
/// keys unrelated to the partition key) plus a keyed self join whose
/// sub-aggregates are read back inside BOOK's own triggers — the two
/// shard roles the analysis distinguishes. AUDIT keeps its own view in
/// a separate partition.
fn build_server(ranges: Option<usize>) -> Arc<ViewServer> {
    let mut server = ViewServer::new(&catalog());
    server
        .register(
            "hot_sum",
            "select ID, sum(PRICE * VOLUME) from BOOK group by ID",
        )
        .unwrap();
    server
        .register(
            "hot_by_price",
            "select PRICE, count(*) from BOOK group by PRICE",
        )
        .unwrap();
    server
        .register(
            "hot_self_join",
            "select b1.ID, sum(b1.PRICE * b2.VOLUME) from BOOK b1, BOOK b2 \
             where b1.ID = b2.ID group by b1.ID",
        )
        .unwrap();
    server
        .register("audit_total", "select ID, sum(QTY) from AUDIT group by ID")
        .unwrap();
    if let Some(ranges) = ranges {
        let got = server.enable_range_sharding("BOOK", ranges).unwrap();
        assert_eq!(got, ranges);
        assert_eq!(server.range_sharding("BOOK"), Some((0, ranges)));
    }
    Arc::new(server)
}

/// Deterministic xorshift generator — randomized stream, reproducible
/// failures.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A skewed randomized stream: 80% of BOOK events hit 4 hot IDs (so
/// single ranges absorb long runs and duplicate tuples are common),
/// ~25% are deletes of previously inserted tuples, and every ~7th
/// event is a cold AUDIT record.
fn skewed_stream(events: usize, seed: u64) -> Vec<Event> {
    let mut rng = Rng(seed | 1);
    let mut live: Vec<Tuple> = Vec::new();
    let mut out = Vec::with_capacity(events);
    for i in 0..events {
        if i % 7 == 3 {
            let id = rng.below(50) as i64;
            let qty = rng.below(100) as i64;
            out.push(Event::insert("AUDIT", tuple![id, qty]));
            continue;
        }
        if rng.below(4) == 0 && !live.is_empty() {
            let victim = live.swap_remove(rng.below(live.len() as u64) as usize);
            out.push(Event::delete("BOOK", victim));
            continue;
        }
        let id = if rng.below(5) < 4 {
            rng.below(4) as i64 // hot keys 0..4
        } else {
            rng.below(4000) as i64 // long tail
        };
        let price = rng.below(40) as i64;
        let volume = (1 + rng.below(9)) as i64;
        let t = tuple![id, price, volume];
        live.push(t.clone());
        out.push(Event::insert("BOOK", t));
    }
    out
}

fn assert_bit_exact(a: &[ViewSnapshot], b: &[ViewSnapshot], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: view count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name, "{context}");
        assert_eq!(x.rows, y.rows, "{context}: {} rows diverged", x.name);
        assert_eq!(
            x.events_processed, y.events_processed,
            "{context}: {} event counters diverged",
            x.name
        );
    }
}

#[test]
fn sharded_hot_relation_is_bit_exact_vs_sequential_at_every_worker_count() {
    let stream = skewed_stream(4_000, 0x5eed);

    let sequential = build_server(None);
    for chunk in stream.chunks(97) {
        sequential.apply_batch(chunk).unwrap();
    }
    let expected = sequential.snapshot_all();

    for workers in [2usize, 4, 8] {
        let server = build_server(Some(workers));
        let mut dispatcher = ShardedDispatcher::new(server, workers);
        // Always spawn: single-core CI runners would otherwise inline
        // every batch and test nothing about cross-thread execution.
        dispatcher.set_force_spawn(true);
        let mut deliveries = 0usize;
        for chunk in stream.chunks(97) {
            deliveries += dispatcher.apply_batch(chunk).unwrap();
        }
        let counted: usize = dispatcher
            .server()
            .snapshot_all()
            .iter()
            .map(|s| s.events_processed as usize)
            .sum();
        assert_eq!(deliveries, counted, "workers={workers}");
        assert_bit_exact(
            &expected,
            &dispatcher.server().snapshot_all(),
            &format!("workers={workers}"),
        );
        let report = dispatcher.report();
        assert!(
            report.parallel_batches > 0,
            "workers={workers}: batches must split, got {report:?}"
        );
        assert!(
            report.range_jobs > 0,
            "workers={workers}: the hot relation must fan out by key range, got {report:?}"
        );
    }
}

#[test]
fn sharded_server_applied_sequentially_still_matches() {
    // Sharding correctness must not depend on the dispatcher at all:
    // a range-sharded server fed one event at a time routes each event
    // to its range replica and merges on read.
    let stream = skewed_stream(1_500, 0xabcdef);
    let sequential = build_server(None);
    let sharded = build_server(Some(4));
    for event in &stream {
        sequential.apply(event).unwrap();
        sharded.apply(event).unwrap();
    }
    assert_bit_exact(
        &sequential.snapshot_all(),
        &sharded.snapshot_all(),
        "eventwise",
    );
    // Merged per-map reads agree with the sequential server's totals.
    let a = sequential.store_report();
    let b = sharded.store_report();
    assert_eq!(a.maps.len(), b.maps.len(), "store map count");
}

#[test]
fn cross_relation_join_views_are_rejected() {
    let mut server = ViewServer::new(&catalog());
    server
        .register(
            "hot_sum",
            "select ID, sum(PRICE * VOLUME) from BOOK group by ID",
        )
        .unwrap();
    server
        .register(
            "joined",
            "select b.ID, sum(b.PRICE * a.QTY) from BOOK b, AUDIT a \
             where b.ID = a.ID group by b.ID",
        )
        .unwrap();
    // The join view's program has no partition key for BOOK (its maps
    // are read by AUDIT's triggers), so sharding must be refused even
    // though hot_sum alone would qualify.
    assert!(server.enable_range_sharding("BOOK", 4).is_err());
    assert_eq!(server.range_sharding("BOOK"), None);
}

#[test]
fn unknown_relations_and_degenerate_configs_are_rejected() {
    let mut server = ViewServer::new(&catalog());
    server
        .register(
            "hot_sum",
            "select ID, sum(PRICE * VOLUME) from BOOK group by ID",
        )
        .unwrap();
    assert!(server.enable_range_sharding("NOPE", 4).is_err());
    assert!(server.enable_range_sharding("BOOK", 0).is_err());
    // Double-sharding the same relation is an error, not a resize.
    server.enable_range_sharding("BOOK", 4).unwrap();
    assert!(server.enable_range_sharding("BOOK", 8).is_err());
}

#[test]
fn views_registered_after_sharding_grow_the_frame_tables() {
    // A later registration widens the store's slot space; cached range
    // frames must be rebuilt so routed writes still resolve.
    let mut server = ViewServer::new(&catalog());
    server
        .register(
            "hot_sum",
            "select ID, sum(PRICE * VOLUME) from BOOK group by ID",
        )
        .unwrap();
    server.enable_range_sharding("BOOK", 4).unwrap();
    server
        .register("audit_total", "select ID, sum(QTY) from AUDIT group by ID")
        .unwrap();
    let server = Arc::new(server);
    let stream = skewed_stream(800, 0x77);
    server.apply_batch(&stream).unwrap();

    let reference = {
        let mut s = ViewServer::new(&catalog());
        s.register(
            "hot_sum",
            "select ID, sum(PRICE * VOLUME) from BOOK group by ID",
        )
        .unwrap();
        s.register("audit_total", "select ID, sum(QTY) from AUDIT group by ID")
            .unwrap();
        Arc::new(s)
    };
    reference.apply_batch(&stream).unwrap();
    assert_bit_exact(
        &reference.snapshot_all(),
        &server.snapshot_all(),
        "late registration",
    );
}
