//! End-to-end loopback integration of the network data plane.
//!
//! The contract under test: **the wire changes nothing**. A portfolio
//! served by a standalone `dbtoasterd`-style [`NetServer`] over TCP —
//! registered over the wire, fed a randomized mixed order-book stream,
//! snapshotted over the wire — must be **bit-exactly** equal (float bit
//! patterns included) to the same portfolio maintained in-process by
//! sequential `ViewServer::apply_batch` over the same stream. The same
//! holds for an archived CSV stream replayed through a [`SocketSource`]
//! into both `run_source` paths.

use std::net::TcpListener;

use dbtoaster::net::{FeedWriter, NetClient, NetConfig, NetServer, SocketSource};
use dbtoaster::prelude::*;
use dbtoaster::server::{to_csv_string, CsvReplaySource};
use dbtoaster::workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, SOBI, VWAP_COMPONENTS,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The standing queries every test registers (≥ 2 views, mixed scalar /
/// grouped, BIDS-only and BIDS⋈ASKS shapes).
fn portfolio() -> Vec<(&'static str, &'static str)> {
    vec![
        ("vwap", VWAP_COMPONENTS),
        ("market_maker", MARKET_MAKER),
        ("sobi", SOBI),
    ]
}

/// A randomized mixed order-book message stream (inserts, modifies,
/// withdrawals on both books), deterministic per seed.
fn orderbook_stream(messages: usize, seed: u64) -> UpdateStream {
    OrderBookGenerator::new(OrderBookConfig {
        messages,
        book_depth: 200,
        brokers: 7,
        seed,
        ..Default::default()
    })
    .generate()
}

/// The in-process reference: sequential `apply_batch` over the stream.
fn reference_server(stream: &UpdateStream, batch: usize) -> ViewServer {
    let mut server = ViewServer::new(&orderbook_catalog());
    for (name, sql) in portfolio() {
        server.register(name, sql).unwrap();
    }
    for chunk in stream.events.chunks(batch) {
        server.apply_batch(chunk).unwrap();
    }
    server
}

fn assert_bit_exact(wire: &[ViewSnapshot], reference: &[ViewSnapshot]) {
    assert_eq!(wire.len(), reference.len(), "view count diverged");
    for (w, r) in wire.iter().zip(reference) {
        // ViewSnapshot's PartialEq compares names, columns, rows and
        // counters; Value's Float equality is IEEE equality and floats
        // travel as bit patterns, so this is the bit-exact check.
        assert_eq!(w, r, "view '{}' diverged across the wire", r.name);
        assert!(!w.rows.is_empty(), "view '{}' is trivially empty", w.name);
    }
}

/// The acceptance path: a client registers the views over the wire,
/// streams a randomized order-book batch stream through the server's
/// feed plane (decoded by a `SocketSource` into the bounded ingest
/// queue), and `snapshot_all` over the wire equals the in-process
/// sequential reference exactly.
#[test]
fn feed_plane_end_to_end_is_bit_exact() {
    let stream = orderbook_stream(4_000, 0xfeed);
    let server = NetServer::bind(&orderbook_catalog(), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for (name, sql) in portfolio() {
        client.register(name, sql).unwrap();
    }

    // Randomized batch sizes: the wire framing must not matter.
    let mut rng = SmallRng::seed_from_u64(7);
    let mut feeder = FeedWriter::connect(server.local_addr()).unwrap();
    let mut at = 0usize;
    while at < stream.len() {
        let take = rng.gen_range(1..=97usize).min(stream.len() - at);
        feeder.send(&stream.events[at..at + take]).unwrap();
        at += take;
    }
    let report = feeder.finish_and_ack().unwrap();
    assert_eq!(report.events, stream.len());

    let over_wire = client.snapshot_all().unwrap();
    let reference = reference_server(&stream, 256);
    assert_bit_exact(&over_wire, &reference.snapshot_all());

    // The dispatcher behind the ingest queue really ran.
    let stats = client.stats().unwrap();
    assert!(stats.running);
    assert_eq!(stats.events, stream.len() as u64);
    assert!(stats.workers >= 1);
    assert_eq!(stats.views.len(), 3);

    client.shutdown_server().unwrap();
    server.wait();
}

/// The request/response plane: `apply_batch` round trips instead of a
/// feed, same bit-exactness contract.
#[test]
fn request_plane_apply_batch_is_bit_exact() {
    let stream = orderbook_stream(1_200, 0xca11);
    let server = NetServer::bind(&orderbook_catalog(), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for (name, sql) in portfolio() {
        client.register(name, sql).unwrap();
    }
    let mut wire_deliveries = 0usize;
    for chunk in stream.events.chunks(64) {
        wire_deliveries += client.apply_batch(chunk).unwrap();
    }

    let reference = reference_server(&stream, 64);
    let mut reference_deliveries = 0usize;
    for snap in reference.snapshot_all() {
        reference_deliveries += snap.events_processed as usize;
    }
    assert_eq!(wire_deliveries, reference_deliveries);
    assert_bit_exact(&client.snapshot_all().unwrap(), &reference.snapshot_all());
}

/// Satellite: an archived CSV stream replayed over a socket. The chain
/// `CsvReplaySource → FeedWriter → loopback TCP → SocketSource →
/// run_source` must agree bit-exactly with `apply_batch` of the same
/// archive parsed directly — through both the plain `ViewServer` path
/// and the `ShardedDispatcher` path.
#[test]
fn csv_archive_through_socket_source_round_trips_bit_exactly() {
    let stream = orderbook_stream(2_000, 0xc57);
    let archive = to_csv_string(&stream).expect("order-book streams are archivable");
    let catalog = orderbook_catalog();

    // Direct reference: parse the archive, apply sequentially.
    let direct = {
        let mut source = CsvReplaySource::from_string("archive.csv", archive.clone(), &catalog);
        let parsed = source.drain(512).unwrap();
        assert_eq!(parsed.len(), stream.len());
        let mut server = ViewServer::new(&catalog);
        for (name, sql) in portfolio() {
            server.register(name, sql).unwrap();
        }
        server.apply_batch(&parsed.events).unwrap();
        server
    };

    for use_dispatcher in [false, true] {
        // Feeder: replays the archive over loopback TCP, batch by batch.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let feeder = {
            let archive = archive.clone();
            let catalog = catalog.clone();
            std::thread::spawn(move || {
                let mut csv = CsvReplaySource::from_string("archive.csv", archive, &catalog);
                let mut writer = FeedWriter::connect(addr).unwrap();
                while let Some(batch) = csv.next_batch(173).unwrap() {
                    writer.send(&batch).unwrap();
                }
                writer.finish().unwrap();
            })
        };

        let mut server = ViewServer::new(&catalog);
        for (name, sql) in portfolio() {
            server.register(name, sql).unwrap();
        }
        let (stream, _) = listener.accept().unwrap();
        let mut source = SocketSource::from_stream("csv-over-tcp", stream, 8).unwrap();
        let report = if use_dispatcher {
            let dispatcher = ShardedDispatcher::new_auto(std::sync::Arc::new(server));
            let report = dispatcher.run_source(&mut source, 256).unwrap();
            assert_bit_exact(&dispatcher.server().snapshot_all(), &direct.snapshot_all());
            report
        } else {
            let report = server.run_source(&mut source, 256).unwrap();
            assert_bit_exact(&server.snapshot_all(), &direct.snapshot_all());
            report
        };
        assert_eq!(report.events, 2_000);
        feeder.join().unwrap();
    }
}

/// Late registration over the wire is refused once ingestion begins,
/// with the typed error intact; unknown views fail typed too.
#[test]
fn wire_errors_stay_typed_end_to_end() {
    let server = NetServer::bind(&orderbook_catalog(), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.register("vwap", VWAP_COMPONENTS).unwrap();

    match client.register("bad", "select wat from NOPE") {
        Err(dbtoaster::common::Error::Schema(_)) | Err(dbtoaster::common::Error::Analysis(_)) => {}
        other => panic!("bad SQL must fail typed over the wire: {other:?}"),
    }

    let stream = orderbook_stream(10, 1);
    client.apply_batch(&stream.events).unwrap();
    match client.register("late", VWAP_COMPONENTS) {
        Err(dbtoaster::common::Error::Runtime(m)) => assert!(m.contains("frozen"), "{m}"),
        other => panic!("late registration must fail typed: {other:?}"),
    }
    match client.snapshot("ghost") {
        Err(dbtoaster::common::Error::Runtime(m)) => assert!(m.contains("unknown"), "{m}"),
        other => panic!("unknown view must fail typed: {other:?}"),
    }
}
