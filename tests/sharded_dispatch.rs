//! Parallel-ingestion equivalence: the same randomized mixed stream
//! flows through (a) a sequential shared-store `ViewServer`, applied
//! batch by batch on one thread, and (b) a [`ShardedDispatcher`] with a
//! worker pool, which partitions every batch by relation-group overlap
//! and runs independent partitions concurrently. The portfolio mixes
//! order-book and warehouse views, so batches genuinely split: the
//! order-book relations (BIDS/ASKS, tied together by two-relation
//! views) form one partition and the SSB relations another. Final
//! snapshots must be *exactly* equal — same rows, same per-view event
//! counters — for every worker count.
//!
//! The release-only stress test drives one dispatcher from many OS
//! threads with overlapping group sets. Incremental maintenance is
//! exact, so however the batches interleave, every view must end at the
//! result of its query over the final database.

use std::sync::Arc;

use dbtoaster::compiler::CompileOptions;
use dbtoaster::prelude::*;
use dbtoaster::workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, SOBI, VWAP_COMPONENTS,
    VWAP_NESTED,
};
use dbtoaster::workloads::tpch::{
    ssb_catalog, transform_to_ssb, TpchConfig, TpchData, SSB_REVENUE_BY_YEAR,
};
use dbtoaster::workloads::GeneratorSource;

/// One catalog covering both workloads (relation names are disjoint).
fn shared_catalog() -> Catalog {
    let mut catalog = orderbook_catalog();
    for schema in ssb_catalog().relations() {
        catalog.add(schema.clone());
    }
    catalog
}

/// The portfolio: full, first-order and nested compilations mixed, so
/// the sharded path exercises shared `BASE_*` relation groups, private
/// self-join copies and `Replace` re-evaluation — everything the
/// sequential path runs.
fn portfolio() -> Vec<(&'static str, &'static str, CompileOptions)> {
    vec![
        ("vwap", VWAP_COMPONENTS, CompileOptions::full()),
        ("market_maker", MARKET_MAKER, CompileOptions::full()),
        ("sobi_fo", SOBI, CompileOptions::first_order()),
        ("mm_fo", MARKET_MAKER, CompileOptions::first_order()),
        ("vwap_nested", VWAP_NESTED, CompileOptions::full()),
        ("ssb_revenue", SSB_REVENUE_BY_YEAR, CompileOptions::full()),
    ]
}

/// The randomized mixed stream: order-book messages interleaved with
/// warehouse loading records (both generators are seeded, so the test
/// is deterministic while the event mix is arbitrary inserts/deletes).
fn mixed_stream(messages: usize, orders: usize) -> UpdateStream {
    let orderbook = OrderBookGenerator::new(OrderBookConfig {
        messages,
        book_depth: 120,
        ..Default::default()
    })
    .generate();
    let warehouse = transform_to_ssb(&TpchData::generate(&TpchConfig {
        orders,
        ..Default::default()
    }));
    GeneratorSource::interleave("mixed", [orderbook, warehouse])
        .drain(1 << 20)
        .unwrap()
}

fn build_server(catalog: &Catalog) -> Arc<ViewServer> {
    let mut server = ViewServer::new(catalog);
    for (name, sql, options) in portfolio() {
        server.register_with(name, sql, &options).unwrap();
    }
    Arc::new(server)
}

/// A dispatcher that always spawns its configured workers: the
/// equivalence claims here are about cross-thread execution, which a
/// single-core CI runner would otherwise short-circuit to the inline
/// sequential path.
fn spawning_dispatcher(server: Arc<ViewServer>, workers: usize) -> ShardedDispatcher {
    let mut dispatcher = ShardedDispatcher::new(server, workers);
    dispatcher.set_force_spawn(true);
    dispatcher
}

fn assert_snapshots_equal(a: &[ViewSnapshot], b: &[ViewSnapshot], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: view count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name, "{context}");
        assert_eq!(x.columns, y.columns, "{context}: {}", x.name);
        assert_eq!(x.rows, y.rows, "{context}: {} rows diverged", x.name);
        assert_eq!(
            x.events_processed, y.events_processed,
            "{context}: {} event counters diverged",
            x.name
        );
    }
}

/// Like [`assert_snapshots_equal`], but float aggregates compare within
/// relative epsilon: when batches interleave in arbitrary order, float
/// addition order differs, and IEEE addition is not associative — the
/// sums agree to ~1e-12 relative, not bit-for-bit. (The deterministic
/// sharded-vs-sequential tests above do assert bit-exact equality:
/// there, every view absorbs its events in identical order.)
fn assert_snapshots_close(a: &[ViewSnapshot], b: &[ViewSnapshot], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: view count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name, "{context}");
        assert_eq!(
            x.events_processed, y.events_processed,
            "{context}: {} event counters diverged",
            x.name
        );
        assert_eq!(x.rows.len(), y.rows.len(), "{context}: {} rows", x.name);
        for (rx, ry) in x.rows.iter().zip(&y.rows) {
            assert_eq!(rx.key, ry.key, "{context}: {} keys", x.name);
            assert_eq!(rx.values.len(), ry.values.len());
            for (vx, vy) in rx.values.iter().zip(&ry.values) {
                match (vx, vy) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        let scale = fx.abs().max(fy.abs()).max(1.0);
                        assert!(
                            (fx - fy).abs() <= 1e-9 * scale,
                            "{context}: {} float diverged beyond rounding: {fx} vs {fy}",
                            x.name
                        );
                    }
                    _ => assert_eq!(vx, vy, "{context}: {} value diverged", x.name),
                }
            }
        }
    }
}

#[test]
fn sharded_dispatcher_matches_sequential_apply_batch_exactly() {
    let catalog = shared_catalog();
    let stream = mixed_stream(600, 110);

    let sequential = build_server(&catalog);
    for chunk in stream.events.chunks(89) {
        sequential.apply_batch(chunk).unwrap();
    }
    let expected = sequential.snapshot_all();

    for workers in [2usize, 4, 8] {
        let dispatcher = spawning_dispatcher(build_server(&catalog), workers);
        // The order-book relations are tied into one partition (two
        // two-relation views) and the SSB relations into another.
        assert!(
            dispatcher.partitions() >= 2,
            "portfolio must split for the test to exercise parallel paths"
        );
        let mut deliveries = 0usize;
        for chunk in stream.events.chunks(89) {
            deliveries += dispatcher.apply_batch(chunk).unwrap();
        }
        // Cross-check deliveries against the per-view counters (the sum
        // over views of absorbed events IS the delivery count).
        let counted: usize = dispatcher
            .server()
            .snapshot_all()
            .iter()
            .map(|s| s.events_processed as usize)
            .sum();
        assert_eq!(deliveries, counted, "workers={workers}");
        assert_snapshots_equal(
            &expected,
            &dispatcher.server().snapshot_all(),
            &format!("workers={workers}"),
        );
        let report = dispatcher.report();
        assert!(
            report.parallel_batches > 0,
            "workers={workers}: mixed chunks must hit the pool, got {report:?}"
        );
    }
}

#[test]
fn sharded_run_source_matches_sequential_run_source() {
    let catalog = shared_catalog();

    let sequential = build_server(&catalog);
    let mut source = GeneratorSource::new("seq", mixed_stream(400, 70));
    let seq_report = sequential.run_source(&mut source, 64).unwrap();

    let dispatcher = spawning_dispatcher(build_server(&catalog), 4);
    let mut source = GeneratorSource::new("shard", mixed_stream(400, 70));
    let shard_report = dispatcher.run_source(&mut source, 64).unwrap();

    assert_eq!(seq_report.events, shard_report.events);
    assert_eq!(seq_report.deliveries, shard_report.deliveries);
    assert_snapshots_equal(
        &sequential.snapshot_all(),
        &dispatcher.server().snapshot_all(),
        "run_source",
    );
}

/// Stress: many OS threads drive one dispatcher with *overlapping*
/// group sets (every thread feeds all relations), interleaved with
/// direct sequential `apply_batch` calls and concurrent snapshot
/// readers. Batches serialize on the group locks in some order; since
/// incremental maintenance is exact and each view's final state depends
/// only on the multiset of events it absorbed, the end state must equal
/// a single-threaded reference ingesting the same events (float
/// aggregates modulo addition-order rounding). Runs in
/// release only (`cargo test --release`); the debug build is too slow
/// to make the contention interesting.
#[test]
#[cfg_attr(debug_assertions, ignore = "stress test is release-only")]
fn concurrent_overlapping_feeders_converge_to_the_sequential_result() {
    const FEEDERS: usize = 6;
    let catalog = shared_catalog();
    let streams: Vec<UpdateStream> = (0..FEEDERS)
        .map(|i| mixed_stream(260 + 17 * i, 40 + 7 * i))
        .collect();

    // Reference: one server absorbs every feeder's stream sequentially.
    let reference = build_server(&catalog);
    for stream in &streams {
        reference.apply_batch(&stream.events).unwrap();
    }

    // Deletions in one feeder's stream cancel inserts from the *same*
    // stream (the generators are self-contained books), so the merged
    // multiset equals the concatenation and the reference above is the
    // ground truth whatever the interleaving.
    let dispatcher = Arc::new(spawning_dispatcher(build_server(&catalog), 4));
    std::thread::scope(|scope| {
        for (i, stream) in streams.iter().enumerate() {
            let dispatcher = Arc::clone(&dispatcher);
            scope.spawn(move || {
                for chunk in stream.events.chunks(31 + 13 * i) {
                    if i % 2 == 0 {
                        dispatcher.apply_batch(chunk).unwrap();
                    } else {
                        // Odd feeders bypass the pool: direct sequential
                        // batches racing the sharded ones.
                        dispatcher.server().apply_batch(chunk).unwrap();
                    }
                }
            });
        }
        // Concurrent snapshot readers: every cut must be internally
        // consistent (a view pair over the same relations agrees on
        // event counts — here the two full-compilation BIDS+ASKS views).
        let dispatcher = Arc::clone(&dispatcher);
        scope.spawn(move || {
            for _ in 0..25 {
                let snap = dispatcher.server().snapshot_all();
                let mm = snap.iter().find(|s| s.name == "market_maker").unwrap();
                let mm_fo = snap.iter().find(|s| s.name == "mm_fo").unwrap();
                assert_eq!(
                    mm.events_processed, mm_fo.events_processed,
                    "snapshot caught a half-applied batch"
                );
            }
        });
    });

    assert_snapshots_close(
        &reference.snapshot_all(),
        &dispatcher.server().snapshot_all(),
        "stress",
    );
}
