//! Randomized property tests for the ordered/cumulative map index.
//!
//! A `MapStorage` with an ordered index registered on one key position
//! is driven through long mixed streams — inserts, point updates via
//! positive and negative deltas, `set`, deletions down to empty and
//! `clear` — and after every step a batch of random range queries
//! compares the O(log P) index probe (`range_sum`) against the naive
//! O(P) primary-storage scan (`range_sum_scan`). Key domains are kept
//! deliberately small so duplicate ordered keys across groups and
//! repeated insert/delete cycles on the same key are the common case,
//! not the exception. An independent `HashMap` model additionally
//! checks the primary storage itself, so a bug that corrupted both the
//! index and the scan identically would still be caught.

use std::collections::HashMap;

use dbtoaster::calculus::CmpOp;
use dbtoaster::prelude::*;
use dbtoaster::runtime::MapStorage;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const OPS: [CmpOp; 6] = [
    CmpOp::Lt,
    CmpOp::LtEq,
    CmpOp::Gt,
    CmpOp::GtEq,
    CmpOp::Eq,
    CmpOp::NotEq,
];

/// Probe the index and the scan for a random (group, op, bound) triple;
/// the probe must be available (the index is registered) and agree with
/// the scan exactly (integer values).
fn check_queries(map: &MapStorage, rng: &mut SmallRng, queries: usize) {
    for _ in 0..queries {
        let group = tuple![rng.gen_range(0..4i64)];
        let op = OPS[rng.gen_range(0..OPS.len())];
        let bound = Value::Int(rng.gen_range(-2..28i64));
        let probe = map
            .range_sum(1, &group, op, &bound)
            .expect("ordered index registered, probe must be available");
        let scan = map.range_sum_scan(1, &[0], &group, op, &bound);
        assert_eq!(
            probe, scan,
            "index probe diverged from scan oracle: group={group:?} {op:?} {bound:?}"
        );
    }
}

#[test]
fn ordered_index_matches_scan_oracle_under_mixed_int_stream() {
    let mut rng = SmallRng::seed_from_u64(0xD817);
    let mut map = MapStorage::new(2);
    let mut model: HashMap<(i64, i64), i64> = HashMap::new();

    // Populate before registering: the registration must backfill the
    // index from live entries.
    for _ in 0..40 {
        let g = rng.gen_range(0..4i64);
        let k = rng.gen_range(0..25i64);
        let d = rng.gen_range(1..4i64);
        map.add(tuple![g, k], Value::Int(d));
        *model.entry((g, k)).or_insert(0) += d;
    }
    map.register_ordered(1);
    assert!(map.has_ordered(1));
    check_queries(&map, &mut rng, 50);

    for round in 0..2_000 {
        let g = rng.gen_range(0..4i64);
        let k = rng.gen_range(0..25i64);
        match rng.gen_range(0..10) {
            // Mostly deltas, negative as often as positive: keys cycle
            // through zero (entry dropped) and back.
            0..=6 => {
                let d = rng.gen_range(-3..=3i64);
                map.add(tuple![g, k], Value::Int(d));
                let slot = model.entry((g, k)).or_insert(0);
                *slot += d;
                if *slot == 0 {
                    model.remove(&(g, k));
                }
            }
            // Point overwrite.
            7..=8 => {
                let v = rng.gen_range(-5..=5i64);
                map.set(tuple![g, k], Value::Int(v));
                if v == 0 {
                    model.remove(&(g, k));
                } else {
                    model.insert((g, k), v);
                }
            }
            // Rare full clear.
            _ => {
                if rng.gen_range(0..40) == 0 {
                    map.clear();
                    model.clear();
                }
            }
        }
        check_queries(&map, &mut rng, 4);
        if round % 250 == 0 {
            // Primary storage against the independent model.
            assert_eq!(map.len(), model.len());
            for (&(g, k), &v) in &model {
                assert_eq!(map.get(&tuple![g, k]), Value::Int(v));
            }
        }
    }

    // Tear every surviving entry down to empty through negative deltas;
    // the index must follow the primary storage all the way.
    let live: Vec<(Tuple, Value)> = map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    for (key, value) in live {
        let neg = match value {
            Value::Int(v) => Value::Int(-v),
            other => panic!("unexpected value {other:?}"),
        };
        map.add(key, neg);
        check_queries(&map, &mut rng, 2);
    }
    assert!(map.is_empty());
    for op in OPS {
        assert_eq!(
            map.range_sum(1, &tuple![1i64], op, &Value::Int(10)),
            Some(Value::Int(0)),
            "empty map must probe to zero"
        );
    }
}

#[test]
fn ordered_index_matches_scan_oracle_under_float_values() {
    let mut rng = SmallRng::seed_from_u64(0xF10A7);
    let mut map = MapStorage::new(1);
    map.register_ordered(0);
    let mut live: Vec<(i64, f64)> = Vec::new();

    for _ in 0..1_500 {
        if !live.is_empty() && rng.gen_bool(0.45) {
            // Delete a live contribution exactly (the deletion-heavy
            // path the ulp-residue re-anchor keeps exact).
            let i = rng.gen_range(0..live.len());
            let (k, v) = live.swap_remove(i);
            map.add(tuple![k], Value::Float(-v));
        } else {
            let k = rng.gen_range(0..30i64);
            let v = (rng.gen_range(-400..400i64) as f64) / 16.0;
            if v != 0.0 {
                map.add(tuple![k], Value::Float(v));
                live.push((k, v));
            }
        }
        // Index probe vs scan oracle: both sum the same finite set of
        // leaves, in different orders, so compare with a tolerance
        // scaled to the magnitude involved.
        let op = OPS[rng.gen_range(0..OPS.len())];
        let bound = Value::Int(rng.gen_range(-1..31i64));
        let probe = match map.range_sum(0, &Tuple::empty(), op, &bound) {
            Some(Value::Float(f)) => f,
            Some(Value::Int(i)) => i as f64,
            other => panic!("unexpected probe result {other:?}"),
        };
        let scan = match map.range_sum_scan(0, &[], &Tuple::empty(), op, &bound) {
            Value::Float(f) => f,
            Value::Int(i) => i as f64,
            other => panic!("unexpected scan result {other:?}"),
        };
        let magnitude: f64 = live.iter().map(|(_, v)| v.abs()).sum::<f64>().max(1.0);
        assert!(
            (probe - scan).abs() <= magnitude * 1e-9,
            "float probe {probe} vs scan {scan} (magnitude {magnitude})"
        );
    }

    // Full teardown: retracting every insertion must leave exact zeros,
    // not ulp residue.
    for (k, v) in live.drain(..) {
        map.add(tuple![k], Value::Float(-v));
    }
    assert!(map.is_empty(), "every insertion retracted");
    assert_eq!(
        map.range_sum(0, &Tuple::empty(), CmpOp::GtEq, &Value::Int(0)),
        Some(Value::Int(0))
    );
}
