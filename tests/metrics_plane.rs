//! End-to-end integration of the observability plane.
//!
//! The contract under test: **metrics tell the truth**. A [`NetServer`]
//! fed a randomized order-book stream through the feed plane, with
//! latency recording enabled and a Prometheus endpoint attached, must
//! scrape counters that agree *bit-exactly* with a sequential
//! [`ViewServer`] reference over the same stream — per-view event
//! counts, feed totals, per-event histogram sample counts — and latency
//! sums must grow monotonically across scrapes. The wire `stats` frame
//! must carry the same histogram summaries the registry holds, and the
//! slow-event ring must surface over the `debug` request.

use std::io::{Read, Write};
use std::net::TcpStream;

use dbtoaster::net::{FeedWriter, NetClient, NetConfig, NetServer};
use dbtoaster::prelude::*;
use dbtoaster::telemetry::MetricsHttpServer;
use dbtoaster::workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, SOBI, VWAP_COMPONENTS,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn portfolio() -> Vec<(&'static str, &'static str)> {
    vec![
        ("vwap", VWAP_COMPONENTS),
        ("market_maker", MARKET_MAKER),
        ("sobi", SOBI),
    ]
}

fn orderbook_stream(messages: usize, seed: u64) -> UpdateStream {
    OrderBookGenerator::new(OrderBookConfig {
        messages,
        book_depth: 200,
        brokers: 7,
        seed,
        ..Default::default()
    })
    .generate()
}

/// Minimal HTTP GET against the metrics endpoint; returns the body.
fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("well-formed HTTP response");
    assert!(head.starts_with("HTTP/1.1 200"), "scrape failed: {head}");
    assert!(head.contains("text/plain"), "wrong content type in: {head}");
    body.to_string()
}

/// The value of `name` (exact label block included) in a scrape, parsed
/// as f64 — Prometheus text renders everything as a number.
fn sample(body: &str, series: &str) -> f64 {
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix(series) {
            if let Some(value) = rest.split_whitespace().next_back() {
                if rest.starts_with(' ') || rest.starts_with('\t') {
                    return value
                        .parse()
                        .unwrap_or_else(|_| panic!("unparseable sample for {series}: {line}"));
                }
            }
        }
    }
    panic!("series {series} not found in scrape:\n{body}");
}

#[test]
fn scraped_counters_match_the_sequential_reference() {
    let stream = orderbook_stream(3_000, 0x0b5e);
    let config = NetConfig {
        // Threshold 0 captures every event, so the debug dump is
        // deterministically non-empty.
        slow_event_us: Some(0),
        ..NetConfig::default()
    };
    let server = NetServer::bind(&orderbook_catalog(), "127.0.0.1:0", config).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for (name, sql) in portfolio() {
        client.register(name, sql).unwrap();
    }
    server.set_metrics_enabled(true);
    let http = MetricsHttpServer::bind(
        "127.0.0.1:0",
        server.metrics(),
        Some(server.store_metrics_refresher()),
    )
    .unwrap();

    // Feed the first half with randomized batch sizes, scrape, feed the
    // rest, scrape again: counters must be exact at both cuts and the
    // latency sums monotone between them.
    let half = stream.len() / 2;
    let mut rng = SmallRng::seed_from_u64(42);
    let mut feed = |events: &[Event]| {
        let mut feeder = FeedWriter::connect(server.local_addr()).unwrap();
        let mut at = 0usize;
        while at < events.len() {
            let take = rng.gen_range(1..=113usize).min(events.len() - at);
            feeder.send(&events[at..at + take]).unwrap();
            at += take;
        }
        let report = feeder.finish_and_ack().unwrap();
        assert_eq!(report.events, events.len());
    };
    feed(&stream.events[..half]);
    let first = scrape(http.addr());
    feed(&stream.events[half..]);
    let second = scrape(http.addr());

    // Bit-exact per-view event counts against the sequential reference.
    let mut reference = ViewServer::new(&orderbook_catalog());
    for (name, sql) in portfolio() {
        reference.register(name, sql).unwrap();
    }
    for chunk in stream.events.chunks(256) {
        reference.apply_batch(chunk).unwrap();
    }
    for snap in reference.snapshot_all() {
        let series = format!("dbt_view_events_total{{view=\"{}\"}}", snap.name);
        assert_eq!(
            sample(&second, &series),
            snap.events_processed as f64,
            "scraped {series} diverged from the sequential reference"
        );
    }

    // Feed-plane totals are exact, and every event was latency-sampled.
    assert_eq!(
        sample(&second, "dbt_feed_events_total"),
        stream.len() as f64
    );
    assert_eq!(
        sample(&second, "dbt_apply_event_seconds_count"),
        stream.len() as f64
    );
    assert_eq!(sample(&second, "dbt_ingest_queue_depth"), 0.0);
    assert!(sample(&second, "dbt_ingest_wait_seconds_count") >= 1.0);

    // Latency accounting is monotone across scrapes.
    for series in [
        "dbt_apply_event_seconds_sum",
        "dbt_apply_event_seconds_count",
        "dbt_apply_batch_seconds_count",
        "dbt_feed_batches_total",
    ] {
        let (a, b) = (sample(&first, series), sample(&second, series));
        assert!(a > 0.0, "{series} empty at the first cut");
        assert!(b > a, "{series} did not grow: {a} -> {b}");
    }

    // The apply-latency histogram carries cumulative buckets ending in
    // +Inf, and the store gauges were refreshed by the prepare hook.
    assert!(second.contains("dbt_apply_event_seconds_bucket{le=\"+Inf\"}"));
    assert!(sample(&second, "dbt_store_bytes") > 0.0);
    assert!(
        second.contains("dbt_stage_nanos_total"),
        "per-stage engine cost missing from scrape"
    );

    // The wire stats frame carries the registry's histogram summaries.
    let stats = client.stats().unwrap();
    assert!(stats.running);
    assert!(stats.workers >= 1, "autotuned worker count not surfaced");
    let apply = stats
        .histograms
        .iter()
        .find(|h| h.name == "dbt_apply_event_seconds")
        .expect("stats frame lacks the apply-latency histogram");
    assert_eq!(apply.count, stream.len() as u64);
    assert!(apply.p50 <= apply.p95 && apply.p95 <= apply.p99 && apply.p99 <= apply.max);

    // The slow ring (threshold 0) captured events and dumps over the
    // wire, most recent retained.
    let slow = client.debug_slow_events().unwrap();
    assert!(!slow.is_empty(), "slow ring empty despite threshold 0");
    assert!(slow.windows(2).all(|w| w[0].seq < w[1].seq));

    client.shutdown_server().unwrap();
    server.wait();
}

/// Metrics default to off: a server never asked to record latency
/// serves zero-count histograms, while event counters still count.
#[test]
fn latency_recording_is_opt_in() {
    let stream = orderbook_stream(200, 7);
    let server =
        NetServer::bind(&orderbook_catalog(), "127.0.0.1:0", NetConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for (name, sql) in portfolio() {
        client.register(name, sql).unwrap();
    }
    client.apply_batch(&stream.events).unwrap();

    let stats = client.stats().unwrap();
    let apply = stats
        .histograms
        .iter()
        .find(|h| h.name == "dbt_apply_event_seconds")
        .expect("histogram families register even when disabled");
    assert_eq!(apply.count, 0, "disabled histograms must stay empty");
    let total: u64 = stats.views.iter().map(|v| v.events_processed).sum();
    assert!(total > 0, "event counters are always on");
}
