//! End-to-end integration of the multi-query view server: a portfolio of
//! standing views (the paper's Figure-2 query, order-book VWAP, a
//! per-broker market-maker signal and an SSB warehouse view) maintained
//! over ONE mixed event stream replayed through the pluggable
//! `EventSource` path, with every view's answer checked against the
//! reference interpreter in `exec` and dispatch checked via per-view
//! event counters.

use dbtoaster::calculus::translate_query;
use dbtoaster::exec::{evaluate_query, Database};
use dbtoaster::prelude::*;
use dbtoaster::server::{to_csv_string, CsvReplaySource};
use dbtoaster::sql::{analyze, parse_query};
use dbtoaster::workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, VWAP_COMPONENTS,
};
use dbtoaster::workloads::tpch::{
    ssb_catalog, transform_to_ssb, TpchConfig, TpchData, SSB_REVENUE_BY_YEAR,
};
use dbtoaster::workloads::GeneratorSource;

const FIGURE2: &str = "select sum(A*D) from R, S, T where R.B = S.B and S.C = T.C";

/// One catalog covering all three workloads (relation names are
/// disjoint, so the portfolio shares a single stream namespace).
fn shared_catalog() -> Catalog {
    let mut catalog = Catalog::new()
        .with(Schema::new(
            "R",
            vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
        ))
        .with(Schema::new(
            "S",
            vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
        ))
        .with(Schema::new(
            "T",
            vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
        ));
    for schema in orderbook_catalog().relations() {
        catalog.add(schema.clone());
    }
    for schema in ssb_catalog().relations() {
        catalog.add(schema.clone());
    }
    catalog
}

fn figure2_stream() -> UpdateStream {
    let mut stream = UpdateStream::new();
    for i in 0..40i64 {
        stream.push(Event::insert("R", tuple![i % 7, i % 3]));
        stream.push(Event::insert("S", tuple![i % 3, i % 5]));
        stream.push(Event::insert("T", tuple![i % 5, i]));
        if i % 4 == 0 {
            stream.push(Event::delete("R", tuple![i % 7, i % 3]));
        }
    }
    stream
}

/// The mixed update stream: order-book messages, warehouse loading
/// records and Figure-2 deltas arriving through one pipe.
fn mixed_source() -> GeneratorSource {
    let orderbook = OrderBookGenerator::new(OrderBookConfig {
        messages: 600,
        book_depth: 150,
        ..Default::default()
    })
    .generate();
    let warehouse = transform_to_ssb(&TpchData::generate(&TpchConfig {
        orders: 150,
        ..Default::default()
    }));
    GeneratorSource::interleave("mixed", [figure2_stream(), orderbook, warehouse])
}

fn registered_views() -> Vec<(&'static str, &'static str)> {
    vec![
        ("figure2", FIGURE2),
        ("vwap", VWAP_COMPONENTS),
        ("market_maker", MARKET_MAKER),
        ("ssb_revenue", SSB_REVENUE_BY_YEAR),
    ]
}

/// Evaluate one view's SQL from scratch with the reference interpreter.
fn oracle_result(sql: &str, catalog: &Catalog, db: &Database) -> Vec<(Tuple, Vec<Value>)> {
    let qc = translate_query(&analyze(&parse_query(sql).unwrap(), catalog).unwrap(), "Q").unwrap();
    let mut rows = evaluate_query(&qc, db).unwrap();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

fn assert_rows_close(name: &str, got: &[ResultRow], oracle: &[(Tuple, Vec<Value>)]) {
    assert_eq!(got.len(), oracle.len(), "{name}: row count diverged");
    for (g, (ok, ov)) in got.iter().zip(oracle) {
        assert_eq!(&g.key, ok, "{name}: group keys diverged");
        assert_eq!(g.values.len(), ov.len(), "{name}: column count diverged");
        for (gv, ev) in g.values.iter().zip(ov) {
            // Aggregates accumulate in different orders in the two
            // engines, so floats get a relative tolerance.
            let (g, e) = (gv.as_f64(), ev.as_f64());
            let scale = g.abs().max(e.abs()).max(1.0);
            assert!((g - e).abs() / scale < 1e-9, "{name}: {gv} vs {ev}");
        }
    }
}

#[test]
fn a_view_portfolio_over_one_replayed_stream_matches_the_interpreter() {
    let catalog = shared_catalog();
    let mut server = ViewServer::new(&catalog);
    for (name, sql) in registered_views() {
        server.register(name, sql).unwrap();
    }

    // Replay the mixed stream through the EventSource path (batched).
    let mut source = mixed_source();
    let report = server.run_source(&mut source, 256).unwrap();
    assert!(report.events > 1_500, "mixed stream should be substantial");
    assert_eq!(report.batches, report.events.div_ceil(256));

    // Reference: load the same events into the interpreter's database
    // and re-evaluate each view from scratch.
    let mut db = Database::new();
    let mut by_relation: Vec<(String, u64)> = Vec::new();
    for event in &mixed_source().drain(1 << 20).unwrap() {
        db.apply(event);
        match by_relation.iter_mut().find(|(r, _)| r == &event.relation) {
            Some((_, n)) => *n += 1,
            None => by_relation.push((event.relation.clone(), 1)),
        }
    }

    for (name, sql) in registered_views() {
        let oracle = oracle_result(sql, &catalog, &db);
        let got = server.result(name).unwrap();
        assert!(!got.is_empty(), "{name} should have results");
        assert_rows_close(name, &got, &oracle);
    }

    // Dispatch: each view absorbed exactly the events of the relations
    // its triggers reference — nothing more.
    let events_of = |rels: &[&str]| -> u64 {
        by_relation
            .iter()
            .filter(|(r, _)| rels.contains(&r.as_str()))
            .map(|(_, n)| n)
            .sum()
    };
    assert_eq!(
        server.events_processed("figure2").unwrap(),
        events_of(&["R", "S", "T"])
    );
    assert_eq!(
        server.events_processed("vwap").unwrap(),
        events_of(&["BIDS"])
    );
    assert_eq!(
        server.events_processed("market_maker").unwrap(),
        events_of(&["BIDS", "ASKS"])
    );
    assert_eq!(
        server.events_processed("ssb_revenue").unwrap(),
        events_of(&["DATES", "LINEORDER"])
    );
    // The mixed stream genuinely exercises partial routing.
    assert!(server.events_processed("vwap").unwrap() > 0);
    assert!(
        server.events_processed("vwap").unwrap() < report.events as u64,
        "vwap must not see the whole stream"
    );
}

#[test]
fn batched_and_per_event_ingestion_agree_on_the_mixed_stream() {
    let catalog = shared_catalog();
    let mut batched = ViewServer::new(&catalog);
    let mut per_event = ViewServer::new(&catalog);
    for (name, sql) in registered_views() {
        batched.register(name, sql).unwrap();
        per_event.register(name, sql).unwrap();
    }

    let stream = mixed_source().drain(1 << 20).unwrap();
    for event in &stream {
        per_event.apply(event).unwrap();
    }
    for chunk in stream.events.chunks(113) {
        batched.apply_batch(chunk).unwrap();
    }

    for (name, _) in registered_views() {
        assert_eq!(
            per_event.result(name).unwrap(),
            batched.result(name).unwrap(),
            "{name} diverged between ingestion paths"
        );
        assert_eq!(
            per_event.events_processed(name).unwrap(),
            batched.events_processed(name).unwrap()
        );
    }
}

#[test]
fn archived_csv_replay_reproduces_the_live_results() {
    let catalog = shared_catalog();
    let mut live = ViewServer::new(&catalog);
    let mut replayed = ViewServer::new(&catalog);
    for (name, sql) in registered_views() {
        live.register(name, sql).unwrap();
        replayed.register(name, sql).unwrap();
    }

    // Live ingestion, then archive the stream and replay the archive.
    let stream = mixed_source().drain(1 << 20).unwrap();
    for chunk in stream.events.chunks(512) {
        live.apply_batch(chunk).unwrap();
    }
    let archive = to_csv_string(&stream).unwrap();
    let mut source = CsvReplaySource::from_string("mixed.csv", archive, &catalog);
    let report = replayed.run_source(&mut source, 512).unwrap();

    assert_eq!(report.events, stream.len());
    let live_snap = live.snapshot_all();
    let replay_snap = replayed.snapshot_all();
    assert_eq!(live_snap.len(), replay_snap.len());
    for (a, b) in live_snap.iter().zip(&replay_snap) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.events_processed, b.events_processed, "{}", a.name);
        assert_eq!(a.rows.len(), b.rows.len(), "{}", a.name);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.key, rb.key, "{}", a.name);
            for (va, vb) in ra.values.iter().zip(&rb.values) {
                let (x, y) = (va.as_f64(), vb.as_f64());
                let scale = x.abs().max(y.abs()).max(1.0);
                assert!((x - y).abs() / scale < 1e-12, "{}: {va} vs {vb}", a.name);
            }
        }
    }
}
