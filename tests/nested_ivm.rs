//! Nested-aggregate incremental maintenance: randomized equivalence of
//! the materialization hierarchy against two independent references.
//!
//! Every nested query below is compiled twice — through the default
//! **hierarchy** (inner aggregates extracted into delta-maintained child
//! maps, the outer map kept exact by a staged retract/rebuild bracket,
//! zero `Replace` statements) and through the legacy **re-evaluation**
//! oracle mode (`CompileOptions::nested_replace()`) — and both are
//! checked against the `exec` interpreter re-evaluating the SQL from
//! scratch over the live database. All data is integer-valued, so
//! arithmetic is exact in every engine and the comparisons are
//! **bit-exact** (`assert_eq!` on `Value`s), not tolerance-based.
//!
//! The streams are randomized mixed inserts and deletes of live rows
//! (seeded, so failures reproduce). The portfolio also carries the flat
//! self-join shape from PR 2 (pre-event map reads on the update path) to
//! keep that regression covered next to the staged schedule, and the
//! release-mode test drives the same portfolio through a
//! `ShardedDispatcher` worker pool.

use dbtoaster::calculus::translate_query;
use dbtoaster::compiler::{compile_sql, CompileOptions, StatementKind};
use dbtoaster::exec::{evaluate_query, Database};
use dbtoaster::prelude::*;
use dbtoaster::sql::{analyze, parse_query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Integer order book + order flow: exact arithmetic end to end.
fn catalog() -> Catalog {
    Catalog::new()
        .with(Schema::new(
            "BOOK",
            vec![
                ("PRICE", ColumnType::Int),
                ("VOLUME", ColumnType::Int),
                ("BROKER", ColumnType::Int),
            ],
        ))
        .with(Schema::new(
            "ORD",
            vec![
                ("PRICE", ColumnType::Int),
                ("VOLUME", ColumnType::Int),
                ("BROKER", ColumnType::Int),
            ],
        ))
}

/// Correlated inequality subquery (the nested-VWAP shape, integerized).
const Q_VWAP: &str = "select sum(b1.PRICE * b1.VOLUME) from BOOK b1 \
     where (select sum(b3.VOLUME) from BOOK b3) > \
           4 * (select sum(b2.VOLUME) from BOOK b2 where b2.PRICE > b1.PRICE)";

/// Uncorrelated scalar subquery.
const Q_UNCORR: &str = "select sum(b1.PRICE * b1.VOLUME) from BOOK b1 \
     where b1.PRICE * 4 > (select sum(b2.VOLUME) from BOOK b2)";

/// Cross-relation EXISTS with equality correlation.
const Q_EXISTS: &str = "select count(*) from BOOK b \
     where exists (select 1 from ORD c where c.PRICE = b.PRICE)";

/// Grouped view over a correlated subquery on another relation.
const Q_GROUP: &str = "select b.BROKER, sum(b.VOLUME) from BOOK b \
     where (select sum(c.VOLUME) from ORD c where c.BROKER = b.BROKER) > 20 \
     group by b.BROKER";

/// Depth-2 nesting: a subquery whose own predicate holds a subquery.
const Q_DEEP: &str = "select sum(b.VOLUME) from BOOK b \
     where b.PRICE > (select sum(c.VOLUME) from ORD c \
                      where c.PRICE > (select count(*) from BOOK))";

/// Flat self-join (the PR 2 pre-event-read regression shape).
const Q_SELFJOIN: &str = "select sum(b1.VOLUME * b2.VOLUME) from BOOK b1, BOOK b2 \
     where b1.PRICE = b2.PRICE";

fn nested_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        ("q_vwap", Q_VWAP),
        ("q_uncorr", Q_UNCORR),
        ("q_exists", Q_EXISTS),
        ("q_group", Q_GROUP),
        ("q_deep", Q_DEEP),
    ]
}

/// A randomized mixed stream over BOOK and ORD: inserts of fresh rows
/// and deletes of currently-live rows, bounded price/volume domains so
/// correlation keys genuinely collide.
fn random_stream(seed: u64, events: usize) -> Vec<Event> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live: Vec<(&'static str, Tuple)> = Vec::new();
    let mut out = Vec::with_capacity(events);
    for _ in 0..events {
        let delete = !live.is_empty() && rng.gen_bool(0.35);
        if delete {
            let i = rng.gen_range(0..live.len());
            let (rel, tuple) = live.swap_remove(i);
            out.push(Event::delete(rel, tuple));
        } else {
            let rel = if rng.gen_bool(0.6) { "BOOK" } else { "ORD" };
            let tuple = tuple![
                rng.gen_range(1i64..40),
                rng.gen_range(1i64..20),
                rng.gen_range(0i64..6)
            ];
            live.push((rel, tuple.clone()));
            out.push(Event::insert(rel, tuple));
        }
    }
    out
}

/// Re-evaluate a query from scratch with the reference interpreter.
fn oracle(sql: &str, catalog: &Catalog, db: &Database) -> Vec<(Tuple, Vec<Value>)> {
    let qc = translate_query(&analyze(&parse_query(sql).unwrap(), catalog).unwrap(), "Q").unwrap();
    let mut rows = evaluate_query(&qc, db).unwrap();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

fn assert_rows_exact(name: &str, at: usize, got: &[ResultRow], want: &[(Tuple, Vec<Value>)]) {
    assert_eq!(
        got.len(),
        want.len(),
        "{name}@{at}: row count {} vs oracle {}",
        got.len(),
        want.len()
    );
    for (g, (key, values)) in got.iter().zip(want) {
        assert_eq!(&g.key, key, "{name}@{at}: group key diverged");
        assert_eq!(
            &g.values, values,
            "{name}@{at}: values diverged (bit-exact)"
        );
    }
}

#[test]
fn hierarchy_matches_interpreter_and_replace_oracle_bit_exactly() {
    let catalog = catalog();
    let mut hierarchy: Vec<(&str, Engine)> = Vec::new();
    let mut replace: Vec<(&str, Engine)> = Vec::new();
    for (name, sql) in nested_queries() {
        let h = compile_sql(sql, &catalog, &CompileOptions::full()).unwrap();
        assert!(
            h.triggers
                .iter()
                .flat_map(|t| &t.statements)
                .all(|s| s.kind == StatementKind::Update),
            "{name}: hierarchy compilation must emit zero Replace statements"
        );
        hierarchy.push((name, Engine::new(&h).unwrap()));
        let r = compile_sql(sql, &catalog, &CompileOptions::nested_replace()).unwrap();
        assert!(
            r.triggers
                .iter()
                .flat_map(|t| &t.statements)
                .any(|s| s.kind == StatementKind::Replace),
            "{name}: the oracle mode must actually re-evaluate"
        );
        replace.push((name, Engine::new(&r).unwrap()));
    }
    // The flat self-join rides along in the same suite (hierarchy is a
    // no-op for it; the delta path and its pre-event reads must stay
    // intact next to the staged schedule).
    let sj = compile_sql(Q_SELFJOIN, &catalog, &CompileOptions::full()).unwrap();
    hierarchy.push(("q_selfjoin", Engine::new(&sj).unwrap()));
    replace.push(("q_selfjoin", Engine::new(&sj).unwrap()));

    let mut db = Database::new();
    let stream = random_stream(0xD817, 360);
    for (at, event) in stream.iter().enumerate() {
        db.apply(event);
        for (_, engine) in hierarchy.iter_mut().chain(replace.iter_mut()) {
            engine.on_event(event).unwrap();
        }
        // Checkpoints keep the interpreter cost bounded; the final event
        // is always checked.
        if at % 60 != 59 && at + 1 != stream.len() {
            continue;
        }
        for ((name, h), (_, r)) in hierarchy.iter().zip(&replace) {
            let sql = nested_queries()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, sql)| sql)
                .unwrap_or(Q_SELFJOIN);
            let want = oracle(sql, &catalog, &db);
            assert_rows_exact(name, at, &h.result(), &want);
            assert_rows_exact(&format!("{name}(replace)"), at, &r.result(), &want);
        }
    }
}

#[test]
fn deleting_every_row_returns_every_view_to_empty() {
    // Deletion-heavy edge case: build up, then tear down to the empty
    // database; the retract/rebuild bracket must land on exact zero (no
    // residual entries — integer arithmetic cancels exactly).
    let catalog = catalog();
    let mut engines: Vec<(&str, Engine)> = nested_queries()
        .into_iter()
        .map(|(name, sql)| {
            let p = compile_sql(sql, &catalog, &CompileOptions::full()).unwrap();
            (name, Engine::new(&p).unwrap())
        })
        .collect();
    let mut rng = SmallRng::seed_from_u64(7);
    let mut live: Vec<(&'static str, Tuple)> = Vec::new();
    for _ in 0..120 {
        let rel = if rng.gen_bool(0.5) { "BOOK" } else { "ORD" };
        let tuple = tuple![
            rng.gen_range(1i64..15),
            rng.gen_range(1i64..10),
            rng.gen_range(0i64..4)
        ];
        live.push((rel, tuple.clone()));
        for (_, e) in &mut engines {
            e.on_event(&Event::insert(rel, tuple.clone())).unwrap();
        }
    }
    while let Some((rel, tuple)) = live.pop() {
        for (_, e) in &mut engines {
            e.on_event(&Event::delete(rel, tuple.clone())).unwrap();
        }
    }
    let db = Database::new(); // empty reference
    for (name, engine) in &engines {
        let sql = nested_queries()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, sql)| sql)
            .unwrap();
        let want = oracle(sql, &catalog, &db);
        assert_rows_exact(name, usize::MAX, &engine.result(), &want);
    }
}

#[test]
fn shared_store_materializes_hierarchy_children_once_across_nested_views() {
    // Two nested views differing only in a constant share every child
    // map (the constant lives in the outer comparison); the store must
    // materialize each inner aggregate once, and both views must still
    // answer exactly like private engines.
    let catalog = catalog();
    let q_vwap_2 = Q_VWAP.replace("4 *", "2 *");
    let mut server = ViewServer::new(&catalog);
    server.register("vwap4", Q_VWAP).unwrap();
    server.register("vwap2", &q_vwap_2).unwrap();

    let report = server.store_report();
    let shared_children: Vec<_> = report
        .maps
        .iter()
        .filter(|m| {
            !m.is_base_relation
                && m.aliases.iter().any(|(v, _)| v == "vwap4")
                && m.aliases.iter().any(|(v, _)| v == "vwap2")
        })
        .collect();
    assert!(
        shared_children.len() >= 3,
        "expected the inner-aggregate maps to be shared: {report:#?}"
    );
    assert!(shared_children.iter().all(|m| m.sharers == 2));
    assert!(shared_children.iter().all(|m| m.maintainer == "vwap4"));

    let stream = random_stream(0xBEEF, 300);
    server.apply_batch(&stream).unwrap();
    assert!(
        server.store_report().dedup_skipped_statements > 0,
        "vwap2's statements over shared children must be skipped"
    );

    for (name, sql) in [("vwap4", Q_VWAP), ("vwap2", q_vwap_2.as_str())] {
        let program = compile_sql(sql, &catalog, &CompileOptions::full()).unwrap();
        let mut engine = Engine::new(&program).unwrap();
        for event in &stream {
            engine.on_event(event).unwrap();
        }
        assert_eq!(
            server.result(name).unwrap(),
            engine.result(),
            "{name} diverged from its private engine"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "equivalence stress is release-only")]
fn sharded_dispatch_agrees_with_sequential_on_nested_portfolio() {
    // The staged schedule must survive the worker pool: a portfolio of
    // nested, grouped-nested, EXISTS and flat self-join views over two
    // relations, randomized mixed stream, sharded vs sequential —
    // snapshots exactly equal at every worker count.
    let catalog = catalog();
    let portfolio: Vec<(&str, &str)> = nested_queries()
        .into_iter()
        .chain([("q_selfjoin", Q_SELFJOIN)])
        .collect();
    let build = |catalog: &Catalog| {
        let mut server = ViewServer::new(catalog);
        for (name, sql) in &portfolio {
            server.register(name, sql).unwrap();
        }
        server
    };
    let stream = random_stream(0xFEED5, 4_000);

    let sequential = build(&catalog);
    for chunk in stream.chunks(97) {
        sequential.apply_batch(chunk).unwrap();
    }
    let reference = sequential.snapshot_all();

    for workers in [2usize, 4] {
        let dispatcher = ShardedDispatcher::new(std::sync::Arc::new(build(&catalog)), workers);
        for chunk in stream.chunks(97) {
            dispatcher.apply_batch(chunk).unwrap();
        }
        let snapshots = dispatcher.server().snapshot_all();
        assert_eq!(
            snapshots, reference,
            "sharded({workers}) diverged from sequential"
        );
    }
}
