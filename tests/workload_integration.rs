//! End-to-end integration of the workload generators with the compiled
//! engine and the baselines: the financial and warehouse-loading
//! scenarios run to completion and the compiled engine's answers match
//! the baselines on a prefix of the stream.

use dbtoaster::baselines::{sorted_result, StandingQueryEngine, StreamEngine};
use dbtoaster::prelude::*;
use dbtoaster::workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, SOBI, VWAP_COMPONENTS,
    VWAP_NESTED,
};
use dbtoaster::workloads::tpch::{
    ssb_catalog, transform_to_ssb, TpchConfig, TpchData, SSB_Q41, SSB_REVENUE_BY_YEAR,
};

#[test]
fn orderbook_queries_run_over_the_generated_stream() {
    let cat = orderbook_catalog();
    let stream = OrderBookGenerator::new(OrderBookConfig {
        messages: 3_000,
        book_depth: 400,
        ..Default::default()
    })
    .generate();

    let mut vwap = dbtoaster::StandingQuery::compile(VWAP_COMPONENTS, &cat).unwrap();
    let mut sobi = dbtoaster::StandingQuery::compile(SOBI, &cat).unwrap();
    let mut maker = dbtoaster::StandingQuery::compile(MARKET_MAKER, &cat).unwrap();
    for e in &stream {
        vwap.on_event(e).unwrap();
        sobi.on_event(e).unwrap();
        maker.on_event(e).unwrap();
    }
    let row = &vwap.result()[0];
    assert!(
        row.values[0].as_f64() > 0.0,
        "price-volume mass must be positive"
    );
    assert!(row.values[1].as_f64() > 0.0, "volume must be positive");
    // VWAP lands inside the generator's price band.
    let vwap_value = row.values[0].as_f64() / row.values[1].as_f64();
    assert!(
        (90.0..=110.0).contains(&vwap_value),
        "VWAP {vwap_value} outside the band"
    );
    assert!(!maker.result().is_empty());
}

#[test]
fn orderbook_results_match_the_stream_baseline() {
    let cat = orderbook_catalog();
    let stream = OrderBookGenerator::new(OrderBookConfig {
        messages: 800,
        book_depth: 200,
        ..Default::default()
    })
    .generate();
    for sql in [SOBI, MARKET_MAKER] {
        let mut compiled = dbtoaster::StandingQuery::compile(sql, &cat).unwrap();
        let mut baseline = StreamEngine::new(sql, &cat).unwrap();
        for e in &stream {
            compiled.on_event(e).unwrap();
            baseline.on_event(e).unwrap();
        }
        let compiled_rows: Vec<_> = compiled
            .result()
            .into_iter()
            .map(|r| (r.key, r.values))
            .collect();
        let expected = sorted_result(baseline.result());
        let got = sorted_result(compiled_rows);
        // Floating-point aggregates are accumulated in different orders by
        // the two engines, so compare with a relative tolerance.
        assert_eq!(got.len(), expected.len(), "{sql}");
        for ((gk, gv), (ek, ev)) in got.iter().zip(&expected) {
            assert_eq!(gk, ek, "{sql}");
            for (g, e) in gv.iter().zip(ev) {
                let (g, e) = (g.as_f64(), e.as_f64());
                let scale = g.abs().max(e.abs()).max(1.0);
                assert!((g - e).abs() / scale < 1e-9, "{sql}: {g} vs {e}");
            }
        }
    }
}

#[test]
fn nested_vwap_matches_the_reference_interpreter() {
    use dbtoaster::calculus::translate_query;
    use dbtoaster::exec::{evaluate_query, Database};
    use dbtoaster::sql::{analyze, parse_query};

    let cat = orderbook_catalog();
    let stream = OrderBookGenerator::new(OrderBookConfig {
        messages: 120,
        book_depth: 60,
        ..Default::default()
    })
    .generate();
    let mut compiled = dbtoaster::StandingQuery::compile(VWAP_NESTED, &cat).unwrap();
    let qc = translate_query(
        &analyze(&parse_query(VWAP_NESTED).unwrap(), &cat).unwrap(),
        "Q",
    )
    .unwrap();
    let mut db = Database::new();
    for e in &stream {
        compiled.on_event(e).unwrap();
        db.apply(e);
    }
    let oracle = evaluate_query(&qc, &db).unwrap()[0].1[0].clone();
    let got = compiled.scalar();
    assert!(
        (got.as_f64() - oracle.as_f64()).abs() < 1e-6,
        "nested VWAP diverged: {got} vs {oracle}"
    );
}

#[test]
fn warehouse_loading_maintains_ssb_q41() {
    let cat = ssb_catalog();
    let data = TpchData::generate(&TpchConfig {
        orders: 400,
        ..Default::default()
    });
    let stream = transform_to_ssb(&data);

    let mut q41 = dbtoaster::StandingQuery::compile(SSB_Q41, &cat).unwrap();
    let mut revenue = dbtoaster::StandingQuery::compile(SSB_REVENUE_BY_YEAR, &cat).unwrap();
    q41.process(&stream).unwrap();
    revenue.process(&stream).unwrap();

    assert!(!q41.result().is_empty());
    // Groups are (year, AMERICA-region nation): years within the generated
    // range, nations from the AMERICA region.
    for row in q41.result() {
        let year = row.values[0].as_i64();
        assert!((1993..=2000).contains(&year));
        assert!(row.values[2].as_f64() > 0.0);
    }
    // Revenue per year is positive for every generated year.
    assert_eq!(revenue.result().len(), 5 * 4 / 4); // one row per generated year
}

#[test]
fn standalone_server_handles_the_financial_workload() {
    let cat = orderbook_catalog();
    let stream = OrderBookGenerator::new(OrderBookConfig {
        messages: 1_000,
        book_depth: 200,
        ..Default::default()
    })
    .generate();
    let program = dbtoaster::compiler::compile_sql(
        VWAP_COMPONENTS,
        &cat,
        &dbtoaster::compiler::CompileOptions::full(),
    )
    .unwrap();
    let server = StandaloneServer::start(&program, 256).unwrap();
    let total = stream.len() as u64;
    server.send_all(stream);
    while server.events_processed() < total {
        std::thread::yield_now();
    }
    let rows = server.result();
    assert!(rows[0].values[1].as_f64() > 0.0);
    server.shutdown();
}
