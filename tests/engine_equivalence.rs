//! Property-based equivalence: on random update streams, the compiled
//! DBToaster engine, the depth-limited variant, every baseline engine and
//! the brute-force interpreter all report the same standing-query result.
//!
//! This is the workspace's main end-to-end correctness argument: the
//! recursive compiler may only ever change *how fast* the answer is
//! maintained, never the answer itself.

use proptest::prelude::*;

use dbtoaster::baselines::{
    sorted_result, DbtoasterEngine, FirstOrderIvmEngine, NaiveReevalEngine, StandingQueryEngine,
    StreamEngine,
};
use dbtoaster::prelude::*;

fn catalog() -> Catalog {
    Catalog::new()
        .with(Schema::new(
            "R",
            vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
        ))
        .with(Schema::new(
            "S",
            vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
        ))
        .with(Schema::new(
            "T",
            vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
        ))
}

/// A random event on R, S or T with small value domains (so joins and
/// deletions of existing tuples actually happen).
fn arb_event(live: std::rc::Rc<std::cell::RefCell<Vec<Event>>>) -> impl Strategy<Value = Event> {
    (0..3usize, 0..8i64, 0..4i64, any::<bool>(), 0..10usize).prop_map(
        move |(rel, x, y, del, pick)| {
            let relation = ["R", "S", "T"][rel];
            let mut live = live.borrow_mut();
            if del && !live.is_empty() {
                // Delete a previously inserted tuple (events stay meaningful).
                let e = live[pick % live.len()].clone();
                live.retain(|x| x != &e);
                Event::delete(e.relation, e.tuple)
            } else {
                let event = Event::insert(relation, tuple![x, y]);
                live.push(event.clone());
                event
            }
        },
    )
}

fn event_stream(len: usize) -> impl Strategy<Value = Vec<Event>> {
    let live = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    proptest::collection::vec(arb_event(live), 1..len)
}

const QUERIES: [&str; 4] = [
    "select sum(A*D) from R, S, T where R.B = S.B and S.C = T.C",
    "select count(*) from R, S where R.B = S.B",
    "select B, sum(A), count(*) from R group by B",
    "select sum(A * C) from R, S where R.B = S.B and A > 2",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_engines_agree_on_random_streams(events in event_stream(60), qi in 0..QUERIES.len()) {
        let sql = QUERIES[qi];
        let cat = catalog();
        let mut engines: Vec<Box<dyn StandingQueryEngine>> = vec![
            Box::new(DbtoasterEngine::new(sql, &cat).unwrap()),
            Box::new(DbtoasterEngine::with_depth(sql, &cat, 1).unwrap()),
            Box::new(NaiveReevalEngine::new(sql, &cat).unwrap()),
            Box::new(FirstOrderIvmEngine::new(sql, &cat).unwrap()),
            Box::new(StreamEngine::new(sql, &cat).unwrap()),
        ];
        for event in &events {
            for engine in engines.iter_mut() {
                engine.on_event(event).unwrap();
            }
        }
        let reference = sorted_result(engines[0].result());
        for engine in &engines[1..] {
            prop_assert_eq!(
                &reference,
                &sorted_result(engine.result()),
                "engine {} diverged on {}",
                engine.name(),
                sql
            );
        }
    }

    #[test]
    fn deleting_everything_returns_to_the_empty_result(inserts in proptest::collection::vec((0..3usize, 0..6i64, 0..4i64), 1..40)) {
        let cat = catalog();
        let sql = "select B, sum(A) from R group by B";
        let mut q = dbtoaster::StandingQuery::compile(sql, &cat).unwrap();
        let events: Vec<Event> = inserts
            .iter()
            .map(|(r, x, y)| Event::insert(["R", "S", "T"][*r], tuple![*x, *y]))
            .collect();
        for e in &events {
            q.on_event(e).unwrap();
        }
        for e in events.iter().rev() {
            q.on_event(&Event::delete(e.relation.clone(), e.tuple.clone())).unwrap();
        }
        prop_assert!(q.result().is_empty(), "result not empty: {:?}", q.result());
    }

    #[test]
    fn insert_delete_pairs_are_a_noop(pairs in proptest::collection::vec((0..8i64, 0..4i64), 1..30)) {
        let cat = catalog();
        let sql = "select sum(A*D) from R, S, T where R.B = S.B and S.C = T.C";
        let mut q = dbtoaster::StandingQuery::compile(sql, &cat).unwrap();
        // Load some stable background state.
        q.insert("S", tuple![1i64, 2i64]).unwrap();
        q.insert("T", tuple![2i64, 5i64]).unwrap();
        q.insert("R", tuple![4i64, 1i64]).unwrap();
        let baseline = q.scalar();
        for (a, b) in pairs {
            q.insert("R", tuple![a, b]).unwrap();
            q.delete("R", tuple![a, b]).unwrap();
        }
        prop_assert_eq!(q.scalar(), baseline);
    }
}
