//! E1 — golden test for the paper's Figure 2.
//!
//! The recursive compilation of `select sum(A*D) from R, S, T where
//! R.B=S.B and S.C=T.C` must produce exactly the structure of the
//! paper's Figure 2 / Section 3 listing: the result map `q`, the
//! auxiliary maps `qD[b]`, `qA[b]`, `qD[c]`, `qA[c]`, the shared count
//! map `q1[b,c]`, and the handler statements that update them.

use dbtoaster::compiler::StatementKind;
use dbtoaster::prelude::*;

fn catalog() -> Catalog {
    Catalog::new()
        .with(Schema::new(
            "R",
            vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
        ))
        .with(Schema::new(
            "S",
            vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
        ))
        .with(Schema::new(
            "T",
            vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
        ))
}

const SQL: &str = "select sum(A*D) from R, S, T where R.B = S.B and S.C = T.C";

#[test]
fn figure2_map_inventory_matches_the_paper() {
    let q = dbtoaster::StandingQuery::compile(SQL, &catalog()).unwrap();
    let program = q.program();

    // Six maps in total, as in the paper (q, qD[b], qA[b], qD[c], qA[c],
    // q1[b,c]) — sharing means no more are created.
    assert_eq!(program.maps.len(), 6, "{}", program.pretty());

    // One scalar result map.
    let scalar_maps: Vec<_> = program.maps.iter().filter(|m| m.keys.is_empty()).collect();
    assert_eq!(scalar_maps.len(), 1);
    assert_eq!(scalar_maps[0].name, "Q");

    // Four single-key maps (qA[b], qD[b], qA[c], qD[c]).
    assert_eq!(program.maps.iter().filter(|m| m.keys.len() == 1).count(), 4);

    // One two-key count map over S only (q1[b, c]).
    let q1: Vec<_> = program.maps.iter().filter(|m| m.keys.len() == 2).collect();
    assert_eq!(q1.len(), 1);
    assert_eq!(
        q1[0].definition.relations().into_iter().collect::<Vec<_>>(),
        vec!["S"]
    );

    // Map definitions partition by the relations they summarize:
    // one map over {S, T}, one over {R, S}, one over {R}, one over {T}.
    let rel_sets: Vec<String> = program
        .maps
        .iter()
        .map(|m| {
            m.definition
                .relations()
                .into_iter()
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    assert!(rel_sets.contains(&"S,T".to_string()));
    assert!(rel_sets.contains(&"R,S".to_string()));
    assert!(rel_sets.contains(&"R".to_string()));
    assert!(rel_sets.contains(&"T".to_string()));
}

#[test]
fn figure2_handlers_have_the_papers_statement_structure() {
    let q = dbtoaster::StandingQuery::compile(SQL, &catalog()).unwrap();
    let program = q.program();

    // Six handlers: {R, S, T} x {insert, delete}.
    assert_eq!(program.triggers.len(), 6);

    // on_insert_R: q += a * qD[b]; qA[b] += a; foreach c: qA[c] += a * q1[b,c]
    let on_r = program.trigger("R", EventKind::Insert).unwrap();
    assert_eq!(on_r.statements.len(), 3, "{on_r}");
    assert!(on_r.statements.iter().any(|s| s.target == "Q"));
    // The q update uses exactly one map lookup (no joins, no scans).
    let q_stmt = on_r.statements.iter().find(|s| s.target == "Q").unwrap();
    assert_eq!(q_stmt.update.map_refs().len(), 1);
    assert!(!q_stmt.update.has_relations());

    // on_insert_S eliminates the join entirely: q += qA[b] * qD[c].
    let on_s = program.trigger("S", EventKind::Insert).unwrap();
    let q_stmt = on_s.statements.iter().find(|s| s.target == "Q").unwrap();
    assert_eq!(q_stmt.update.map_refs().len(), 2, "{q_stmt}");
    assert!(!q_stmt.update.has_relations());
    // ... and maintains q1[b, c] += 1.
    assert_eq!(on_s.statements.len(), 4, "{on_s}");

    // Insert and delete handlers are symmetric (sum has an inverse).
    for rel in ["R", "S", "T"] {
        let ins = program.trigger(rel, EventKind::Insert).unwrap();
        let del = program.trigger(rel, EventKind::Delete).unwrap();
        assert_eq!(ins.statements.len(), del.statements.len());
        for s in ins.statements.iter().chain(&del.statements) {
            assert_eq!(s.kind, StatementKind::Update);
        }
    }

    // Total statements: 3 (R) + 4 (S) + 3 (T), doubled for deletes.
    assert_eq!(program.statement_count(), 20);
}

#[test]
fn figure2_generated_source_mirrors_the_papers_listing() {
    let q = dbtoaster::StandingQuery::compile(SQL, &catalog()).unwrap();
    let src = q.generated_source();
    for handler in [
        "on_insert_R",
        "on_insert_S",
        "on_insert_T",
        "on_delete_R",
        "on_delete_S",
        "on_delete_T",
    ] {
        assert!(src.contains(handler), "missing handler {handler}");
    }
    // The result update is straight-line code over map entries.
    assert!(src.contains(".entry(vec![]).or_insert(0.0) +="));
}

#[test]
fn figure2_runtime_matches_a_brute_force_oracle() {
    use dbtoaster::calculus::translate_query;
    use dbtoaster::exec::{evaluate_query, Database};
    use dbtoaster::sql::{analyze, parse_query};

    let cat = catalog();
    let mut q = dbtoaster::StandingQuery::compile(SQL, &cat).unwrap();
    let qc = translate_query(&analyze(&parse_query(SQL).unwrap(), &cat).unwrap(), "Q").unwrap();
    let mut db = Database::new();

    let events = vec![
        Event::insert("S", tuple![1i64, 10i64]),
        Event::insert("R", tuple![5i64, 1i64]),
        Event::insert("T", tuple![10i64, 7i64]),
        Event::insert("R", tuple![2i64, 1i64]),
        Event::delete("R", tuple![5i64, 1i64]),
        Event::insert("T", tuple![10i64, 3i64]),
        Event::insert("S", tuple![2i64, 10i64]),
        Event::delete("T", tuple![10i64, 7i64]),
    ];
    for e in events {
        q.on_event(&e).unwrap();
        db.apply(&e);
        let oracle = evaluate_query(&qc, &db).unwrap()[0].1[0].clone();
        assert_eq!(q.scalar(), oracle, "diverged after {e:?}");
    }
}
