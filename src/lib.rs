//! # DBToaster (Rust reproduction)
//!
//! A SQL compiler for high-performance delta processing in main-memory
//! databases: standing aggregate queries are *recursively* compiled into
//! trigger programs — one short handler per (relation, insert/delete)
//! event — over in-memory map data structures, so that each update is
//! absorbed by a few hash-map operations instead of a query re-run.
//!
//! This crate is the facade over the workspace:
//!
//! * [`common`] — values, tuples, schemas, the update-stream event model,
//! * [`sql`] — lexer, parser, analyzer for the supported SQL fragment,
//! * [`calculus`] — the map algebra (ring expressions, delta rules,
//!   simplification),
//! * [`compiler`] — the recursive delta compiler and the Rust code
//!   generator,
//! * [`runtime`] — map storage, the statement VM, the embedded-mode
//!   [`Engine`] and the standalone server,
//! * [`server`] — the multi-query view server: N standing views over one
//!   catalog, relation-based event dispatch, batched ingestion, sharded
//!   parallel dispatch over a worker pool and pluggable stream sources,
//! * [`net`] — the network data plane: the binary wire protocol, the
//!   standalone `dbtoasterd` server, socket-backed stream sources
//!   (`SocketSource`/`FeedWriter`) and the blocking `NetClient`,
//! * [`telemetry`] — dependency-free metrics: atomic counters and
//!   gauges, lock-free log2 latency histograms, a Prometheus-text HTTP
//!   endpoint and the slow-event ring — the observability plane every
//!   layer above records into,
//! * [`exec`] — the reference interpreter used by baselines and tests,
//! * [`baselines`] — the bakeoff baseline engines,
//! * [`workloads`] — order-book and TPC-H/SSB workload generators and
//!   their `EventSource` adapters.
//!
//! ## Quickstart
//!
//! ```
//! use dbtoaster::prelude::*;
//!
//! // 1. Declare the streamed relations.
//! let catalog = Catalog::new()
//!     .with(Schema::new("R", vec![("A", ColumnType::Int), ("B", ColumnType::Int)]))
//!     .with(Schema::new("S", vec![("B", ColumnType::Int), ("C", ColumnType::Int)]))
//!     .with(Schema::new("T", vec![("C", ColumnType::Int), ("D", ColumnType::Int)]));
//!
//! // 2. Compile the standing query (the paper's running example).
//! let query = "select sum(A*D) from R, S, T where R.B = S.B and S.C = T.C";
//! let mut engine = StandingQuery::compile(query, &catalog).unwrap();
//!
//! // 3. Feed deltas; the result is maintained incrementally.
//! engine.insert("R", tuple![2i64, 1i64]).unwrap();
//! engine.insert("S", tuple![1i64, 3i64]).unwrap();
//! engine.insert("T", tuple![3i64, 10i64]).unwrap();
//! assert_eq!(engine.scalar(), Value::Int(20));
//! engine.delete("R", tuple![2i64, 1i64]).unwrap();
//! assert_eq!(engine.scalar(), Value::Int(0));
//! ```
//!
//! ## Serving many views from one stream
//!
//! The [`ViewServer`](server::ViewServer) maintains a portfolio of
//! standing queries over one catalog, with materialized maps
//! **deduplicated across views** (shared `BASE_*` maps and
//! alpha-equivalent sub-aggregates are stored and written once, by one
//! maintainer view). Events are routed only to the views whose triggers
//! reference the event's relation, and ingestion is batched: the
//! affected map-group locks are taken once per batch. Any
//! [`EventSource`] can feed it — below, an archived CSV stream.
//!
//! ```
//! use dbtoaster::prelude::*;
//! use dbtoaster::server::CsvReplaySource;
//!
//! let catalog = Catalog::new()
//!     .with(Schema::new("R", vec![("A", ColumnType::Int), ("B", ColumnType::Int)]))
//!     .with(Schema::new("S", vec![("B", ColumnType::Int), ("C", ColumnType::Int)]));
//!
//! let mut server = ViewServer::new(&catalog);
//! server.register("totals", "select sum(A) from R").unwrap();
//! server.register("joined", "select count(*) from R, S where R.B = S.B").unwrap();
//!
//! let archive = "R,insert,2,1\nS,insert,1,5\nR,insert,3,1\nR,delete,2,1\n";
//! let mut source = CsvReplaySource::from_string("archive.csv", archive, &catalog);
//! let report = server.run_source(&mut source, 1024).unwrap();
//!
//! assert_eq!(report.events, 4);
//! assert_eq!(server.scalar("totals").unwrap(), Value::Int(3));
//! assert_eq!(server.scalar("joined").unwrap(), Value::Int(1));
//! // S events never touch the R-only view:
//! assert_eq!(server.events_processed("totals").unwrap(), 3);
//! ```

pub use dbtoaster_baselines as baselines;
pub use dbtoaster_calculus as calculus;
pub use dbtoaster_common as common;
pub use dbtoaster_compiler as compiler;
pub use dbtoaster_exec as exec;
pub use dbtoaster_net as net;
pub use dbtoaster_runtime as runtime;
pub use dbtoaster_server as server;
pub use dbtoaster_sql as sql;
pub use dbtoaster_telemetry as telemetry;
pub use dbtoaster_workloads as workloads;

use dbtoaster_common::{Catalog, Event, Result, Tuple, UpdateStream, Value};
use dbtoaster_compiler::{CompileOptions, TriggerProgram};
use dbtoaster_runtime::{Engine, ProfileReport, ResultRow};

/// Everything a typical embedding application needs.
pub mod prelude {
    pub use crate::StandingQuery;
    pub use dbtoaster_common::{
        tuple, Catalog, ColumnType, Event, EventBatch, EventKind, EventSource, Schema,
        StreamSource, Tuple, UpdateStream, Value,
    };
    pub use dbtoaster_compiler::{CompileOptions, TriggerProgram};
    pub use dbtoaster_runtime::{Engine, ResultRow, StandaloneServer};
    pub use dbtoaster_server::{
        ApplyCtx, DispatchReport, IngestReport, ShardedDispatcher, StoreMapReport, StoreReport,
        ViewId, ViewServer, ViewSnapshot,
    };
}

/// A compiled standing query with its embedded-mode engine — the
/// high-level API of the library.
pub struct StandingQuery {
    program: TriggerProgram,
    engine: Engine,
}

impl StandingQuery {
    /// Compile a SQL query with full recursive compilation.
    pub fn compile(sql: &str, catalog: &Catalog) -> Result<StandingQuery> {
        StandingQuery::compile_with(sql, catalog, &CompileOptions::full())
    }

    /// Compile with explicit options (e.g. depth-limited compilation).
    pub fn compile_with(
        sql: &str,
        catalog: &Catalog,
        options: &CompileOptions,
    ) -> Result<StandingQuery> {
        let program = dbtoaster_compiler::compile_sql(sql, catalog, options)?;
        let engine = Engine::new(&program)?;
        Ok(StandingQuery { program, engine })
    }

    /// The compiled trigger program (maps, handlers, statements).
    pub fn program(&self) -> &TriggerProgram {
        &self.program
    }

    /// The generated Rust event-handler source (the analog of the paper's
    /// C++ emission).
    pub fn generated_source(&self) -> String {
        dbtoaster_compiler::codegen::generate_rust(&self.program)
    }

    /// Apply one event.
    pub fn on_event(&mut self, event: &Event) -> Result<()> {
        self.engine.on_event(event)
    }

    /// Insert a tuple into a base relation.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<()> {
        self.engine.on_event(&Event::insert(relation, tuple))
    }

    /// Delete a tuple from a base relation.
    pub fn delete(&mut self, relation: &str, tuple: Tuple) -> Result<()> {
        self.engine.on_event(&Event::delete(relation, tuple))
    }

    /// Apply every event of a stream.
    pub fn process(&mut self, stream: &UpdateStream) -> Result<()> {
        self.engine.process(stream)
    }

    /// The current result rows.
    pub fn result(&self) -> Vec<ResultRow> {
        self.engine.result()
    }

    /// Output column names in `SELECT` order.
    pub fn column_names(&self) -> Vec<String> {
        self.engine.column_names()
    }

    /// The single value of a scalar query.
    pub fn scalar(&self) -> Value {
        self.engine.scalar_result()
    }

    /// Read-only snapshot of an internal map (ad-hoc query interface).
    pub fn map_snapshot(&self, name: &str) -> Option<Vec<(Tuple, Value)>> {
        self.engine.map_snapshot(name)
    }

    /// Profiling statistics.
    pub fn profile(&self) -> ProfileReport {
        self.engine.profile()
    }

    /// Direct access to the underlying engine (tracing, memory, ...).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Direct read access to the underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use dbtoaster_common::tuple;

    #[test]
    fn facade_compiles_and_maintains_a_grouped_query() {
        let catalog = Catalog::new().with(Schema::new(
            "ORDERS",
            vec![("CUST", ColumnType::Int), ("AMOUNT", ColumnType::Float)],
        ));
        let mut q = crate::StandingQuery::compile(
            "select CUST, sum(AMOUNT), count(*) from ORDERS group by CUST",
            &catalog,
        )
        .unwrap();
        q.insert("ORDERS", tuple![1i64, 10.0f64]).unwrap();
        q.insert("ORDERS", tuple![1i64, 5.0f64]).unwrap();
        q.insert("ORDERS", tuple![2i64, 7.5f64]).unwrap();
        let rows = q.result();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].values[1], Value::Float(15.0));
        assert_eq!(q.column_names().len(), 3);
        assert!(q.generated_source().contains("on_insert_ORDERS"));
        assert!(q.profile().statement_count > 0);
    }
}
