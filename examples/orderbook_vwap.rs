//! Financial application: maintain VWAP and order-book signals over a
//! synthetic TotalView-like message stream (the paper's algorithmic
//! trading scenario).
//!
//! ```text
//! cargo run --release --example orderbook_vwap [messages]
//! ```

use dbtoaster::workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, SOBI, VWAP_COMPONENTS,
};

fn main() {
    let messages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let catalog = orderbook_catalog();
    let stream = OrderBookGenerator::new(OrderBookConfig {
        messages,
        book_depth: messages / 5,
        ..Default::default()
    })
    .generate();
    println!(
        "order book stream: {} messages {:?}",
        stream.len(),
        stream.counts_by_relation()
    );

    // VWAP: maintain numerator and denominator, divide on read.
    let mut vwap = dbtoaster::StandingQuery::compile(VWAP_COMPONENTS, &catalog).unwrap();
    // SOBI-style signal and per-broker market-maker imbalance.
    let mut sobi = dbtoaster::StandingQuery::compile(SOBI, &catalog).unwrap();
    let mut market_maker = dbtoaster::StandingQuery::compile(MARKET_MAKER, &catalog).unwrap();

    let started = std::time::Instant::now();
    for event in &stream {
        vwap.on_event(event).unwrap();
        sobi.on_event(event).unwrap();
        market_maker.on_event(event).unwrap();
    }
    let elapsed = started.elapsed();

    let row = &vwap.result()[0];
    let (pv, volume) = (row.values[0].as_f64(), row.values[1].as_f64());
    println!(
        "\nafter {} events ({elapsed:?}, {:.0} events/sec across 3 standing queries):",
        stream.len(),
        stream.len() as f64 / elapsed.as_secs_f64()
    );
    println!("  VWAP                = {:.4}", pv / volume.max(1.0));
    println!("  SOBI signal         = {}", sobi.scalar());
    println!(
        "  market-maker groups = {} brokers",
        market_maker.result().len()
    );
    for row in market_maker.result().iter().take(5) {
        println!(
            "    broker {:>3} imbalance {}",
            row.values[0], row.values[1]
        );
    }

    println!(
        "\ncompiled state (VWAP query): {:.1} KiB across {} maps",
        vwap.profile().total_bytes as f64 / 1024.0,
        vwap.profile().per_map.len()
    );
}
