//! The multi-query view server: an order-book VWAP view, a per-broker
//! market-maker view, an SSB warehouse view and the paper's Figure-2
//! query, all maintained live from ONE replayed mixed stream.
//!
//! ```text
//! cargo run --example multi_view_server
//! ```

use dbtoaster::prelude::*;
use dbtoaster::workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, SOBI, VWAP_COMPONENTS,
};
use dbtoaster::workloads::tpch::{
    ssb_catalog, transform_to_ssb, TpchConfig, TpchData, SSB_REVENUE_BY_YEAR,
};
use dbtoaster::workloads::GeneratorSource;

fn main() {
    // One catalog spanning all three workloads.
    let mut catalog = Catalog::new()
        .with(Schema::new(
            "R",
            vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
        ))
        .with(Schema::new(
            "S",
            vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
        ))
        .with(Schema::new(
            "T",
            vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
        ));
    for schema in orderbook_catalog().relations() {
        catalog.add(schema.clone());
    }
    for schema in ssb_catalog().relations() {
        catalog.add(schema.clone());
    }

    // The view portfolio.
    let mut server = ViewServer::new(&catalog);
    server
        .register("vwap_components", VWAP_COMPONENTS)
        .expect("vwap compiles");
    server
        .register("market_maker", MARKET_MAKER)
        .expect("market maker compiles");
    server
        .register("ssb_revenue", SSB_REVENUE_BY_YEAR)
        .expect("ssb revenue compiles");
    server
        .register(
            "figure2",
            "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C",
        )
        .expect("figure2 compiles");
    // Two depth-limited views: their statements evaluate against
    // BASE_BIDS / BASE_ASKS multiplicity maps, which the shared store
    // materializes once and maintains through one view.
    server
        .register_with("sobi_fo", SOBI, &CompileOptions::first_order())
        .expect("first-order SOBI compiles");
    server
        .register_with("mm_fo", MARKET_MAKER, &CompileOptions::first_order())
        .expect("first-order market maker compiles");

    println!("registered views:");
    for name in server.view_names() {
        let program = server.program(name).unwrap();
        println!(
            "  {:<16} {:>2} maps, {:>2} triggers   <- {}",
            name,
            program.maps.len(),
            program.triggers.len(),
            server
                .program(name)
                .unwrap()
                .triggers
                .iter()
                .map(|t| t.relation.clone())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
                .join("/")
        );
    }
    println!("\ndispatch index (relation -> interested views):");
    for relation in server.dispatched_relations() {
        println!(
            "  {:<10} -> {}",
            relation,
            server.interested_views(relation).join(", ")
        );
    }

    // One mixed stream: order-book messages, warehouse loading records
    // and Figure-2 deltas, round-robin interleaved.
    let orderbook = OrderBookGenerator::new(OrderBookConfig {
        messages: 5_000,
        book_depth: 1_000,
        ..Default::default()
    })
    .generate();
    let warehouse = transform_to_ssb(&TpchData::generate(&TpchConfig {
        orders: 500,
        ..Default::default()
    }));
    let mut figure2 = UpdateStream::new();
    for i in 0..200i64 {
        figure2.push(Event::insert("R", tuple![i % 9, i % 4]));
        figure2.push(Event::insert("S", tuple![i % 4, i % 6]));
        figure2.push(Event::insert("T", tuple![i % 6, i]));
    }
    let mut source = GeneratorSource::interleave("mixed", [orderbook, warehouse, figure2]);

    let started = std::time::Instant::now();
    let report = server
        .run_source(&mut source, 512)
        .expect("stream replays cleanly");
    let elapsed = started.elapsed();
    println!(
        "\nreplayed {} events in {} batches ({} view deliveries) in {:?} ({:.0} events/s)",
        report.events,
        report.batches,
        report.deliveries,
        elapsed,
        report.events as f64 / elapsed.as_secs_f64()
    );

    println!("\nconsistent snapshot of every view:");
    for snapshot in server.snapshot_all() {
        println!(
            "  {} ({} events absorbed), columns [{}]:",
            snapshot.name,
            snapshot.events_processed,
            snapshot.columns.join(", ")
        );
        for row in snapshot.rows.iter().take(4) {
            let rendered: Vec<String> = row.values.iter().map(|v| v.to_string()).collect();
            println!("    {}", rendered.join(" | "));
        }
        if snapshot.rows.len() > 4 {
            println!("    ... {} more rows", snapshot.rows.len() - 4);
        }
    }

    // The dividend of dispatch + per-view profiles.
    println!("\nper-view profile:");
    for (name, profile) in server.profiles() {
        println!(
            "  {:<16} {:>7} events  {:>3} statements  {:>9} bytes of maps",
            name, profile.events_processed, profile.statement_count, profile.total_bytes
        );
    }

    // The shared map store: maps deduplicated across the portfolio.
    let store = server.store_report();
    println!("\nshared map store:");
    for m in store.maps.iter().filter(|m| m.sharers > 1) {
        println!(
            "  {:<16} shared by {} views (maintainer {}) — {} entries",
            m.aliases[0].1, m.sharers, m.maintainer, m.entries
        );
    }
    println!(
        "  {} maps, {} shared; {} bytes stored vs {} unshared; {} statement runs skipped",
        store.maps.len(),
        store.shared_slots,
        store.total_bytes,
        store.bytes_if_unshared,
        store.dedup_skipped_statements
    );
}
