//! Quickstart: compile the paper's running example and feed it deltas.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dbtoaster::prelude::*;

fn main() {
    // The three-relation schema of the paper's Section 3 example.
    let catalog = Catalog::new()
        .with(Schema::new(
            "R",
            vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
        ))
        .with(Schema::new(
            "S",
            vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
        ))
        .with(Schema::new(
            "T",
            vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
        ));

    let sql = "select sum(A*D) from R, S, T where R.B = S.B and S.C = T.C";
    let mut query = dbtoaster::StandingQuery::compile(sql, &catalog).expect("compiles");

    println!("standing query: {sql}\n");
    println!("maps maintained by the compiled trigger program:");
    for map in &query.program().maps {
        println!(
            "  {}[{}] := {}",
            map.name,
            map.keys.join(", "),
            map.definition
        );
    }

    println!("\nstreaming deltas:");
    let events = [
        Event::insert("R", tuple![5i64, 1i64]),
        Event::insert("S", tuple![1i64, 2i64]),
        Event::insert("T", tuple![2i64, 10i64]),
        Event::insert("R", tuple![3i64, 1i64]),
        Event::delete("R", tuple![5i64, 1i64]),
    ];
    for event in events {
        query.on_event(&event).unwrap();
        println!(
            "  {:<6} {} {:<12} -> sum(A*D) = {}",
            event.kind.label(),
            event.relation,
            event.tuple.to_string(),
            query.scalar()
        );
    }

    println!("\nper-map state after the stream:");
    for (name, entries, bytes) in query.profile().per_map {
        println!("  {name:<12} {entries:>4} entries, {bytes:>6} bytes");
    }
}
