//! The network data plane in one file: a `dbtoasterd`-style server in
//! this process, a client registering two standing views over the wire,
//! a feeder streaming order-book messages, and bit-exact snapshots read
//! back over TCP.
//!
//! ```text
//! cargo run --example net_quickstart
//! ```
//!
//! In production the server half is the `dbtoasterd` binary:
//!
//! ```text
//! dbtoasterd --listen 127.0.0.1:9090 \
//!   --schema "BIDS(T FLOAT, ID INT, BROKER_ID INT, VOLUME FLOAT, PRICE FLOAT)" \
//!   --schema "ASKS(T FLOAT, ID INT, BROKER_ID INT, VOLUME FLOAT, PRICE FLOAT)"
//! ```

use dbtoaster::net::{FeedWriter, NetClient, NetConfig, NetServer};
use dbtoaster::workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, VWAP_COMPONENTS,
};

fn main() {
    // 1. The server process: bind an ephemeral loopback port.
    let server = NetServer::bind(&orderbook_catalog(), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    println!("dbtoasterd-style server on {addr}");

    // 2. A client registers standing queries over the wire.
    let mut client = NetClient::connect(addr).expect("connect");
    client.register("vwap", VWAP_COMPONENTS).expect("register");
    client
        .register("market_maker", MARKET_MAKER)
        .expect("register");

    // 3. A feeder streams a live order-book feed (10k messages) and
    //    waits for the end-of-feed acknowledgement — the barrier after
    //    which snapshots see everything.
    let stream = OrderBookGenerator::new(OrderBookConfig {
        messages: 10_000,
        ..Default::default()
    })
    .generate();
    let mut feeder = FeedWriter::connect(addr).expect("feed connect");
    for chunk in stream.events.chunks(512) {
        feeder.send(chunk).expect("feed");
    }
    let report = feeder.finish_and_ack().expect("ack");
    println!(
        "fed {} events in {} wire batches ({} view deliveries)",
        report.events, report.batches, report.deliveries
    );

    // 4. Consistent snapshots over the wire.
    for snap in client.snapshot_all().expect("snapshot_all") {
        println!(
            "view '{}' ({} events): {} row(s)",
            snap.name,
            snap.events_processed,
            snap.rows.len()
        );
        for row in snap.rows.iter().take(3) {
            println!("    {:?} -> {:?}", row.key, row.values);
        }
    }
    let stats = client.stats().expect("stats");
    println!(
        "dispatcher: {} workers over {} partition(s), {} batches ingested",
        stats.workers, stats.partitions, stats.batches
    );

    client.shutdown_server().expect("shutdown");
    server.wait();
    println!("server shut down cleanly");
}
