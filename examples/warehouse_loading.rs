//! Data-warehouse loading: maintain SSB Q4.1 while the star schema loads
//! from a TPC-H-shaped source (the paper's second demo scenario).
//!
//! ```text
//! cargo run --release --example warehouse_loading [scale_percent]
//! ```

use dbtoaster::workloads::tpch::{ssb_catalog, transform_to_ssb, TpchConfig, TpchData, SSB_Q41};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .map(|p: f64| p / 100.0)
        .unwrap_or(0.05);

    let catalog = ssb_catalog();
    let data = TpchData::generate(&TpchConfig::at_scale(scale));
    let stream = transform_to_ssb(&data);
    println!(
        "warehouse loading stream at scale {scale}: {} events ({} lineorder facts)",
        stream.len(),
        data.lineitems.len()
    );

    let mut query = dbtoaster::StandingQuery::compile(SSB_Q41, &catalog).unwrap();
    let started = std::time::Instant::now();
    query.process(&stream).unwrap();
    let elapsed = started.elapsed();

    println!(
        "loaded + maintained SSB Q4.1 in {elapsed:?} ({:.0} tuples/sec)\n",
        stream.len() as f64 / elapsed.as_secs_f64()
    );
    println!("{:<8} {:<12} {:>14}", "D_YEAR", "C_NATION", "PROFIT");
    for row in query.result() {
        println!(
            "{:<8} {:<12} {:>14.1}",
            row.values[0],
            row.values[1].to_string(),
            row.values[2].as_f64()
        );
    }
    println!(
        "\ncompiled state: {:.1} KiB across {} maps (no intermediate join is materialized)",
        query.profile().total_bytes as f64 / 1024.0,
        query.profile().per_map.len()
    );
}
