//! Reproduction of the paper's Figure 2: the recursive compilation of
//! `select sum(A*D) from R, S, T where R.B = S.B and S.C = T.C`.
//!
//! Prints the table of (event, delta statement, maps used, map
//! definition) produced by recursive compilation, followed by the
//! generated Rust handlers (the analog of the C++ listing in Section 3).
//!
//! ```text
//! cargo run --example figure2
//! ```

use dbtoaster::prelude::*;

fn main() {
    let catalog = Catalog::new()
        .with(Schema::new(
            "R",
            vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
        ))
        .with(Schema::new(
            "S",
            vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
        ))
        .with(Schema::new(
            "T",
            vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
        ));
    let sql = "select sum(A*D) from R, S, T where R.B = S.B and S.C = T.C";
    let query = dbtoaster::StandingQuery::compile(sql, &catalog).expect("compiles");
    let program = query.program();

    println!("== Figure 2: maps created by recursive compilation ==");
    for map in &program.maps {
        println!(
            "  {:<10} [{}] := {}",
            map.name,
            map.keys.join(", "),
            map.definition
        );
    }

    println!("\n== Figure 2: event handlers (delta statements) ==");
    for trigger in &program.triggers {
        println!("{trigger}");
    }

    println!("== generated Rust source (paper: generated C++) ==\n");
    println!("{}", query.generated_source());

    println!(
        "statements: {}, calculus code size: {}",
        program.statement_count(),
        program.code_size()
    );
}
