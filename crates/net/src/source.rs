//! Socket-backed streaming: [`SocketSource`] (the server side of a live
//! feed) and [`FeedWriter`] (the feeder side).
//!
//! A `SocketSource` adapts one feed connection to the workspace-wide
//! [`EventSource`] trait, so the existing ingestion paths —
//! [`ViewServer::run_source`], [`ShardedDispatcher::run_source`] and the
//! `dbtoasterd` ingest queue — consume live network feeds exactly like
//! archived streams. It is deliberately tokio-free: a dedicated reader
//! thread decodes frames in a poll loop and hands finished batches
//! through a **bounded** queue.
//!
//! Back-pressure is inherent at every hop: when the consumer falls
//! behind, the queue fills, the reader thread blocks on `send`, stops
//! reading the socket, the kernel receive buffer fills, the TCP window
//! closes, and the *feeder's* writes block — the stream slows to the
//! consumer's pace with no unbounded buffering anywhere.
//!
//! End-of-stream is graceful: the feeder closes its write half
//! ([`FeedWriter::finish`]); the reader sees EOF exactly at a frame
//! boundary, the queue drains, and `next_batch` returns `Ok(None)` — the
//! same contract every other [`EventSource`] honors. A mid-frame EOF or
//! malformed frame instead surfaces as one typed error after the batches
//! that preceded it.
//!
//! [`ViewServer::run_source`]: dbtoaster_server::ViewServer::run_source
//! [`ShardedDispatcher::run_source`]: dbtoaster_server::ShardedDispatcher::run_source

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc::{Receiver, SyncSender};
use std::thread::JoinHandle;

use dbtoaster_common::{Error, Event, EventBatch, EventSource, Result};
use dbtoaster_server::IngestReport;

use crate::wire::{self, Message, Response};

/// Default bound of the decoded-batch queue between the reader thread
/// and the consumer.
pub const DEFAULT_SOURCE_QUEUE_DEPTH: usize = 16;

/// What the reader thread hands over: decoded batches, then at most one
/// terminal error (a clean EOF just closes the channel).
type Handoff = Result<EventBatch>;

/// An [`EventSource`] over a live socket feed.
pub struct SocketSource {
    name: String,
    rx: Receiver<Handoff>,
    /// Events of an oversized network batch not yet handed out
    /// (`next_batch` honors the consumer's `max_events`, whatever the
    /// feeder's framing was).
    leftover: VecDeque<Event>,
    exhausted: bool,
    /// Reaped on drop when already finished; a reader blocked on a
    /// silent socket is detached instead (it exits on the next frame,
    /// EOF, or failed enqueue) so dropping a source never hangs.
    reader: Option<JoinHandle<()>>,
}

impl SocketSource {
    /// Wrap an accepted (or connected) TCP stream.
    pub fn from_stream(
        name: impl Into<String>,
        stream: TcpStream,
        queue_depth: usize,
    ) -> Result<SocketSource> {
        SocketSource::from_reader(name, BufReader::new(stream), queue_depth)
    }

    /// Connect to a remote feed and stream from it.
    pub fn connect(
        name: impl Into<String>,
        addr: impl ToSocketAddrs,
        queue_depth: usize,
    ) -> Result<SocketSource> {
        let stream =
            TcpStream::connect(addr).map_err(|e| Error::Io(format!("feed connect failed: {e}")))?;
        SocketSource::from_stream(name, stream, queue_depth)
    }

    /// Wrap any readable byte stream of batch frames. This is how a
    /// server hands a half-consumed connection to the source (the first
    /// frame identified the connection as a feed), and how tests drive
    /// the poll loop without sockets.
    pub fn from_reader<R: Read + Send + 'static>(
        name: impl Into<String>,
        mut reader: R,
        queue_depth: usize,
    ) -> Result<SocketSource> {
        let name = name.into();
        let (tx, rx) = std::sync::mpsc::sync_channel::<Handoff>(queue_depth.max(1));
        let thread_name = format!("dbtoaster-feed-{name}");
        let reader = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || feed_poll_loop(&mut reader, &tx))
            // Thread exhaustion is exactly the regime a loaded server
            // hits; fail typed so the feeder hears an error, not a
            // reset.
            .map_err(|e| Error::Io(format!("spawn feed reader thread: {e}")))?;
        Ok(SocketSource {
            name,
            rx,
            leftover: VecDeque::new(),
            exhausted: false,
            reader: Some(reader),
        })
    }

    /// Take up to `max_events` events out of the leftover buffer.
    fn take_leftover(&mut self, max_events: usize) -> EventBatch {
        let take = max_events.max(1).min(self.leftover.len());
        self.leftover.drain(..take).collect()
    }
}

/// The reader half: decode frames until EOF or error, pushing batches
/// into the bounded queue (blocking there is the back-pressure).
fn feed_poll_loop(reader: &mut impl Read, tx: &SyncSender<Handoff>) {
    let mut buf = Vec::new();
    loop {
        let outcome = match wire::read_frame(reader, &mut buf) {
            Ok(false) => return, // clean EOF: drop tx, consumer sees None
            Ok(true) => match wire::decode_message(&buf) {
                Ok(Message::Batch(batch)) => Ok(batch),
                Ok(other) => Err(Error::Wire(format!(
                    "unexpected {} frame on a feed connection",
                    message_kind(&other)
                ))),
                Err(e) => Err(e),
            },
            Err(e) => Err(e),
        };
        let is_err = outcome.is_err();
        // An empty batch frame is legal but carries nothing to enqueue.
        if matches!(&outcome, Ok(b) if b.is_empty()) {
            continue;
        }
        if tx.send(outcome).is_err() || is_err {
            // Receiver dropped (source discarded) or terminal error:
            // either way the feed is over.
            return;
        }
    }
}

fn message_kind(msg: &Message) -> &'static str {
    match msg {
        Message::Batch(_) => "batch",
        Message::Request(_) => "request",
    }
}

impl EventSource for SocketSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_batch(&mut self, max_events: usize) -> Result<Option<EventBatch>> {
        if !self.leftover.is_empty() {
            return Ok(Some(self.take_leftover(max_events)));
        }
        if self.exhausted {
            return Ok(None);
        }
        match self.rx.recv() {
            Ok(Ok(batch)) => {
                if batch.len() <= max_events.max(1) {
                    Ok(Some(batch))
                } else {
                    self.leftover.extend(batch);
                    Ok(Some(self.take_leftover(max_events)))
                }
            }
            Ok(Err(e)) => {
                self.exhausted = true;
                Err(e)
            }
            // Sender dropped after a clean EOF.
            Err(_) => {
                self.exhausted = true;
                Ok(None)
            }
        }
    }
}

impl Drop for SocketSource {
    fn drop(&mut self) {
        // Disconnect the queue so a reader blocked on `send` (full
        // queue) exits immediately.
        let (_tx, dummy) = std::sync::mpsc::sync_channel(1);
        drop(std::mem::replace(&mut self.rx, dummy));
        // Reap the thread if it is already done; a reader blocked on a
        // silent socket is detached rather than awaited, so dropping a
        // source never hangs the consumer.
        if let Some(handle) = self.reader.take() {
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
    }
}

/// The feeder side of the feed plane: frames event batches onto a TCP
/// stream. Create one, [`send`](FeedWriter::send) batches, then either
/// [`finish`](FeedWriter::finish) (close the write half — the peer's
/// `SocketSource` sees a graceful EOF) or
/// [`finish_and_ack`](FeedWriter::finish_and_ack) (additionally wait for
/// the server's [`Response::FeedAck`] — the barrier that makes a
/// subsequent snapshot observe every event of this feed).
pub struct FeedWriter {
    writer: BufWriter<TcpStream>,
    batches: usize,
    events: usize,
}

impl FeedWriter {
    /// Connect to a server's listen address as a feeder.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<FeedWriter> {
        let stream =
            TcpStream::connect(addr).map_err(|e| Error::Io(format!("feed connect failed: {e}")))?;
        Ok(FeedWriter::from_stream(stream))
    }

    /// Feed over an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> FeedWriter {
        let _ = stream.set_nodelay(true);
        FeedWriter {
            writer: BufWriter::new(stream),
            batches: 0,
            events: 0,
        }
    }

    /// Frame and send one batch (order-preserving; an empty slice is a
    /// no-op).
    pub fn send(&mut self, events: &[Event]) -> Result<()> {
        if events.is_empty() {
            return Ok(());
        }
        wire::write_frame(&mut self.writer, &wire::encode_batch(events))?;
        self.batches += 1;
        self.events += events.len();
        Ok(())
    }

    /// Batches and events sent so far.
    pub fn sent(&self) -> (usize, usize) {
        (self.batches, self.events)
    }

    /// Flush and close the write half: the peer sees a graceful EOF
    /// after the last batch.
    pub fn finish(self) -> Result<()> {
        self.close().map(|_| ())
    }

    /// Flush, close the write half, then block for the server's
    /// [`Response::FeedAck`] — returned once every event of this feed
    /// has been applied, so snapshots taken afterwards observe all of
    /// it.
    pub fn finish_and_ack(self) -> Result<IngestReport> {
        let stream = self.close()?;
        let mut reader = BufReader::new(stream);
        let mut buf = Vec::new();
        if !wire::read_frame(&mut reader, &mut buf)? {
            return Err(Error::Io(
                "feed peer closed without acknowledging the stream".into(),
            ));
        }
        match wire::decode_response(&buf)? {
            Response::FeedAck(report) => Ok(report),
            Response::Error(e) => Err(e),
            other => Err(Error::Wire(format!("expected a feed ack, got {other:?}"))),
        }
    }

    fn close(mut self) -> Result<TcpStream> {
        self.writer
            .flush()
            .map_err(|e| Error::Io(format!("feed flush failed: {e}")))?;
        let stream = self
            .writer
            .into_inner()
            .map_err(|e| Error::Io(format!("feed flush failed: {e}")))?;
        stream
            .shutdown(std::net::Shutdown::Write)
            .map_err(|e| Error::Io(format!("feed shutdown failed: {e}")))?;
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::tuple;
    use std::net::TcpListener;

    fn events(n: i64) -> Vec<Event> {
        (0..n)
            .map(|i| Event::insert("R", tuple![i, i % 5]))
            .collect()
    }

    /// An in-memory frame stream: the poll loop works over any reader.
    fn framed(batches: &[&[Event]]) -> Vec<u8> {
        let mut wire_bytes = Vec::new();
        for batch in batches {
            wire::write_frame(&mut wire_bytes, &wire::encode_batch(batch)).unwrap();
        }
        wire_bytes
    }

    #[test]
    fn replays_everything_in_order_and_honors_max_events() {
        let all = events(10);
        let bytes = framed(&[&all[..4], &all[4..9], &all[9..]]);
        let mut source = SocketSource::from_reader("unit", std::io::Cursor::new(bytes), 4).unwrap();
        let mut seen = Vec::new();
        while let Some(batch) = source.next_batch(3).unwrap() {
            assert!(!batch.is_empty() && batch.len() <= 3);
            seen.extend(batch.events);
        }
        assert_eq!(seen, all);
        assert!(source.next_batch(3).unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn empty_batches_are_skipped_and_eof_is_graceful() {
        let all = events(2);
        let bytes = framed(&[&[], &all[..], &[]]);
        let mut source = SocketSource::from_reader("unit", std::io::Cursor::new(bytes), 4).unwrap();
        let batch = source.next_batch(100).unwrap().unwrap();
        assert_eq!(batch.events, all);
        assert!(source.next_batch(100).unwrap().is_none());
    }

    #[test]
    fn mid_frame_eof_surfaces_after_preceding_batches() {
        let all = events(4);
        let mut bytes = framed(&[&all[..2]]);
        let mut partial = framed(&[&all[2..]]);
        partial.truncate(partial.len() - 3); // cut inside the 2nd frame
        bytes.extend_from_slice(&partial);
        let mut source = SocketSource::from_reader("unit", std::io::Cursor::new(bytes), 4).unwrap();
        assert_eq!(source.next_batch(100).unwrap().unwrap().len(), 2);
        match source.next_batch(100) {
            Err(Error::Wire(m)) => assert!(m.contains("truncated"), "{m}"),
            other => panic!("expected a truncation error, got {other:?}"),
        }
        assert!(source.next_batch(100).unwrap().is_none(), "terminal");
    }

    #[test]
    fn request_frames_on_a_feed_are_rejected() {
        let mut bytes = Vec::new();
        wire::write_frame(&mut bytes, &wire::encode_stats()).unwrap();
        let mut source = SocketSource::from_reader("unit", std::io::Cursor::new(bytes), 4).unwrap();
        match source.next_batch(10) {
            Err(Error::Wire(m)) => assert!(m.contains("feed"), "{m}"),
            other => panic!("expected a wire error, got {other:?}"),
        }
    }

    /// A reader that yields framed batches forever — for the
    /// back-pressure test below.
    struct Endless {
        frame: Vec<u8>,
        at: usize,
        produced: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }
    impl Read for Endless {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.at == self.frame.len() {
                self.at = 0;
                self.produced
                    .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
            let n = out.len().min(self.frame.len() - self.at);
            out[..n].copy_from_slice(&self.frame[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    #[test]
    fn bounded_queue_applies_backpressure_to_the_reader() {
        let produced = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut frame = Vec::new();
        wire::write_frame(&mut frame, &wire::encode_batch(&events(1))).unwrap();
        let endless = Endless {
            frame,
            at: 0,
            produced: std::sync::Arc::clone(&produced),
        };
        let mut source = SocketSource::from_reader("unit", endless, 2).unwrap();
        // Let the reader run without consuming: it can buffer at most
        // queue_depth batches plus the one blocked in `send`.
        std::thread::sleep(std::time::Duration::from_millis(60));
        let stalled = produced.load(std::sync::atomic::Ordering::SeqCst);
        assert!(stalled <= 2 + 2, "reader ran ahead of the queue: {stalled}");
        // Consuming resumes it.
        for _ in 0..8 {
            assert!(source.next_batch(1).unwrap().is_some());
        }
        assert!(produced.load(std::sync::atomic::Ordering::SeqCst) >= stalled);
        // Dropping the source must not hang even though the feed is
        // endless (the Drop impl unblocks and joins the reader).
    }

    #[test]
    fn feed_writer_round_trips_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let all = events(25);
        let feeder = {
            let all = all.clone();
            std::thread::spawn(move || {
                let mut w = FeedWriter::connect(addr).unwrap();
                for chunk in all.chunks(7) {
                    w.send(chunk).unwrap();
                }
                assert_eq!(w.sent(), (4, 25));
                w.finish().unwrap();
            })
        };
        let (stream, _) = listener.accept().unwrap();
        let mut source = SocketSource::from_stream("loopback", stream, 4).unwrap();
        let drained = source.drain(8).unwrap();
        assert_eq!(drained.events, all);
        feeder.join().unwrap();
    }
}
