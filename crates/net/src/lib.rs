//! The network data plane: the paper's "network interface" operating
//! mode.
//!
//! The paper's standalone runtime "accept[s] input over a network
//! interface or archived stream"; until this crate, the reproduction
//! only had the archived half. This crate turns the embedded library
//! into a deployable process:
//!
//! * [`wire`] — a compact length-prefixed binary format for
//!   `Value`/`Tuple`/`Event`/`EventBatch` plus request/response frames
//!   (`register`, `apply_batch`, `snapshot`, `snapshot_all`, `stats`,
//!   `shutdown`) and feed-plane batch frames. Floats travel as IEEE bit
//!   patterns, so snapshots are **bit-exact** across the wire; decoding
//!   is total (typed [`Error::Wire`] on malformed input, never a
//!   panic).
//! * [`NetServer`] / the `dbtoasterd` binary — a tokio-free standalone
//!   server: a std-thread accept loop feeds a **bounded MPSC ingest
//!   queue** that drains through a
//!   [`ShardedDispatcher`](dbtoaster_server::ShardedDispatcher) (worker
//!   count autotuned), while snapshots are served concurrently from the
//!   shared map store's group locks — one consistent cut, never behind
//!   the ingest queue.
//! * [`SocketSource`] — an [`EventSource`](dbtoaster_common::EventSource)
//!   over a `TcpStream` (poll loop + bounded queue, graceful EOF,
//!   inherent back-pressure), so `run_source` paths ingest live feeds
//!   exactly like archives. [`FeedWriter`] is the matching feeder side.
//! * [`NetClient`] — a small blocking client used by examples, tests
//!   and the loopback benchmark.
//!
//! Error variants: transport problems surface as
//! [`Error::Io`](dbtoaster_common::Error::Io), malformed frames as
//! [`Error::Wire`](dbtoaster_common::Error::Wire); server-side failures
//! round-trip with their original category.
//!
//! [`Error::Wire`]: dbtoaster_common::Error::Wire

pub mod client;
pub mod server;
pub mod source;
pub mod wire;

pub use client::NetClient;
pub use server::{NetConfig, NetServer};
pub use source::{FeedWriter, SocketSource, DEFAULT_SOURCE_QUEUE_DEPTH};
pub use wire::{
    AuditReport, HistogramStat, Message, Request, Response, ServerStats, ViewStat, MAX_FRAME_LEN,
};

use dbtoaster_common::{ColumnType, Error, Result, Schema};

/// Parse a `dbtoasterd --schema` relation spec:
/// `NAME(COL TYPE, COL TYPE, ...)`, e.g.
/// `BIDS(T FLOAT, ID INT, BROKER_ID INT, VOLUME FLOAT, PRICE FLOAT)`.
///
/// Types: `INT`/`INTEGER`, `FLOAT`/`DOUBLE`, `VARCHAR`/`STRING`/`TEXT`,
/// `BOOLEAN`/`BOOL`, `DATE`. Names are upper-cased like everything else
/// in the catalog.
pub fn parse_schema_spec(spec: &str) -> Result<Schema> {
    let err = |msg: String| Error::Schema(format!("bad schema spec '{spec}': {msg}"));
    let spec_trim = spec.trim();
    let open = spec_trim
        .find('(')
        .ok_or_else(|| err("expected NAME(COL TYPE, ...)".into()))?;
    let close = spec_trim
        .rfind(')')
        .filter(|&c| c > open && spec_trim[c + 1..].trim().is_empty())
        .ok_or_else(|| err("unbalanced parentheses".into()))?;
    let name = spec_trim[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(err(format!("bad relation name '{name}'")));
    }
    let mut columns = Vec::new();
    for part in spec_trim[open + 1..close].split(',') {
        let mut words = part.split_whitespace();
        let (Some(col), Some(ty), None) = (words.next(), words.next(), words.next()) else {
            return Err(err(format!("bad column spec '{}'", part.trim())));
        };
        let ty = match ty.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" => ColumnType::Int,
            "FLOAT" | "DOUBLE" => ColumnType::Float,
            "VARCHAR" | "STRING" | "TEXT" => ColumnType::Str,
            "BOOLEAN" | "BOOL" => ColumnType::Bool,
            "DATE" => ColumnType::Date,
            other => return Err(err(format!("unknown column type '{other}'"))),
        };
        columns.push((col, ty));
    }
    if columns.is_empty() {
        return Err(err("a relation needs at least one column".into()));
    }
    Ok(Schema::new(name, columns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_specs_parse() {
        let s =
            parse_schema_spec("bids(T float, ID int, BROKER_ID INT, VOLUME double, PRICE FLOAT)")
                .unwrap();
        assert_eq!(s.name, "BIDS");
        assert_eq!(s.arity(), 5);
        assert_eq!(s.columns[0].ty, ColumnType::Float);
        assert_eq!(s.columns[1].ty, ColumnType::Int);

        let s = parse_schema_spec("TRADES(SYM VARCHAR, OK BOOLEAN, DAY DATE)").unwrap();
        assert_eq!(s.columns[2].ty, ColumnType::Date);
    }

    #[test]
    fn bad_schema_specs_fail_typed() {
        for bad in [
            "",
            "R",
            "R()",
            "R(A)",
            "R(A INT",
            "R(A INT) extra",
            "R(A BLOB)",
            "R(A INT B INT)",
            "R!(A INT)",
        ] {
            match parse_schema_spec(bad) {
                Err(Error::Schema(_)) => {}
                other => panic!("{bad:?} should fail with a schema error, got {other:?}"),
            }
        }
    }
}
