//! The length-prefixed binary wire format of the network data plane.
//!
//! A connection carries a sequence of **frames**. Each frame is a
//! little-endian `u32` payload length followed by exactly that many
//! payload bytes; the first payload byte is a **tag** identifying the
//! message, the rest is the tag-specific body. Frames are
//! self-delimiting, so a reader never needs look-ahead, and the length
//! prefix is bounded by [`MAX_FRAME_LEN`] so a hostile peer cannot make
//! a server allocate unbounded memory.
//!
//! Two planes share the format:
//!
//! * the **request/response plane** ([`Request`] / [`Response`]): a
//!   client sends one request frame and reads one response frame —
//!   `register`, `apply_batch`, `snapshot`, `snapshot_all`, `stats`,
//!   `shutdown`, `debug`;
//! * the **feed plane** ([`Message::Batch`]): a feeder streams naked
//!   event-batch frames and closes its write half; the server answers
//!   with one [`Response::FeedAck`] after the last event is applied.
//!
//! All integers are little-endian and fixed-width. Floats travel as
//! their IEEE-754 bit pattern ([`f64::to_bits`]), so values — NaNs
//! included — survive the wire **bit-exactly**: a snapshot fetched over
//! the network compares equal to one taken in-process.
//!
//! Decoding is total: every malformed input — truncated frame, unknown
//! tag, oversized length, count pointing past the buffer, invalid UTF-8
//! — returns [`Error::Wire`]; nothing in this module panics on remote
//! data.

use std::io::{Read, Write};

use dbtoaster_common::{Error, Event, EventBatch, EventKind, Result, Tuple, Value};
use dbtoaster_runtime::ResultRow;
use dbtoaster_server::{AuditMismatch, IngestReport, ViewSnapshot};
use dbtoaster_telemetry::{SlowEvent, TraceSpan};

/// Upper bound on a frame payload (64 MiB). Large enough for any
/// realistic snapshot or batch, small enough that a corrupt or hostile
/// length prefix cannot drive allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

// ---------------------------------------------------------------------
// tags
// ---------------------------------------------------------------------

const TAG_REGISTER: u8 = 0x01;
const TAG_APPLY_BATCH: u8 = 0x02;
const TAG_SNAPSHOT: u8 = 0x03;
const TAG_SNAPSHOT_ALL: u8 = 0x04;
const TAG_STATS: u8 = 0x05;
const TAG_SHUTDOWN: u8 = 0x06;
const TAG_DEBUG: u8 = 0x07;
const TAG_DEBUG_TRACE: u8 = 0x08;
const TAG_DEBUG_AUDIT: u8 = 0x09;
/// Feed-plane frame: a naked event batch, no per-frame response.
const TAG_BATCH: u8 = 0x10;

const TAG_REGISTERED: u8 = 0x81;
const TAG_APPLIED: u8 = 0x82;
const TAG_SNAPSHOT_REPLY: u8 = 0x83;
const TAG_SNAPSHOTS_REPLY: u8 = 0x84;
const TAG_STATS_REPLY: u8 = 0x85;
const TAG_SHUTTING_DOWN: u8 = 0x86;
const TAG_FEED_ACK: u8 = 0x87;
const TAG_SLOW_EVENTS: u8 = 0x88;
const TAG_TRACE_SPANS: u8 = 0x89;
const TAG_AUDIT_REPORT: u8 = 0x8A;
const TAG_ERROR: u8 = 0xEE;

const VAL_INT: u8 = 0;
const VAL_FLOAT: u8 = 1;
const VAL_STR: u8 = 2;
const VAL_BOOL: u8 = 3;
const VAL_DATE: u8 = 4;
const VAL_NULL: u8 = 5;

// ---------------------------------------------------------------------
// messages
// ---------------------------------------------------------------------

/// A request frame of the request/response plane.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a standing query under a unique name.
    Register { name: String, sql: String },
    /// Apply a batch of events; the reply carries the delivery count.
    ApplyBatch(EventBatch),
    /// Fetch one view's consistent snapshot by name.
    Snapshot(String),
    /// Fetch a consistent cut of every view.
    SnapshotAll,
    /// Fetch server/dispatcher counters.
    Stats,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
    /// Dump the slow-event ring (empty unless the server runs with a
    /// `--slow-event-us` threshold).
    Debug,
    /// Dump the trace recorder's span ring (empty unless the server
    /// runs with `--trace-sample`).
    DebugTrace,
    /// Dump the shadow auditor's counters and mismatch ring (all
    /// zeros unless the server runs with `--audit-sample`).
    DebugAudit,
}

/// Anything a server may legally receive on an accepted connection:
/// a request, or a feed-plane batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    Request(Request),
    Batch(EventBatch),
}

/// Per-view counters inside [`ServerStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewStat {
    pub name: String,
    pub events_processed: u64,
}

/// One latency/size distribution summary inside [`ServerStats`] — a
/// snapshot of a registry histogram at stats time. Values are in the
/// histogram's native unit (nanoseconds for `*_seconds` families,
/// plain counts otherwise); quantiles interpolate linearly inside the
/// log2 bucket the rank lands in, clamped to the observed maximum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramStat {
    /// Metric family name, e.g. `dbt_apply_event_seconds`.
    pub name: String,
    /// Label pairs distinguishing series within a family.
    pub labels: Vec<(String, String)>,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

/// Server-side counters served by [`Request::Stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Registered views, in registration order.
    pub views: Vec<ViewStat>,
    /// False while the server still accepts registrations; true once
    /// ingestion has started and the dispatcher is built.
    pub running: bool,
    /// Dispatcher worker-pool size (0 until running).
    pub workers: u64,
    /// Independent portfolio partitions (0 until running).
    pub partitions: u64,
    /// Batches accepted by the dispatcher.
    pub batches: u64,
    /// Events accepted by the dispatcher.
    pub events: u64,
    /// Batches that ran on the worker pool.
    pub parallel_batches: u64,
    /// Batches applied inline.
    pub sequential_batches: u64,
    /// Pool jobs across all parallel batches.
    pub jobs: u64,
    /// Bound of the ingest queue (frames admitted but not yet applied).
    pub queue_depth: u64,
    /// Histogram summaries from the server's metrics registry (empty
    /// while metrics are disabled — recording is opt-in).
    pub histograms: Vec<HistogramStat>,
}

/// The shadow auditor's state served by [`Request::DebugAudit`]:
/// sampling configuration, lifetime counters, and the retained
/// mismatch records.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Whether auditing is switched on.
    pub enabled: bool,
    /// One event in `sample_one_in` is audited.
    pub sample_one_in: u64,
    /// Audits completed.
    pub checks: u64,
    /// Mismatches found (chain + replay).
    pub mismatches: u64,
    /// Sampled audits dropped because the worker fell behind.
    pub dropped: u64,
    /// The bounded mismatch ring, oldest first.
    pub entries: Vec<AuditMismatch>,
}

/// A response frame of the request/response plane.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Register`]: the view's registration index.
    Registered { view: u64 },
    /// Reply to [`Request::ApplyBatch`]: total deliveries.
    Applied { deliveries: u64 },
    /// Reply to [`Request::Snapshot`].
    Snapshot(ViewSnapshot),
    /// Reply to [`Request::SnapshotAll`].
    Snapshots(Vec<ViewSnapshot>),
    /// Reply to [`Request::Stats`].
    Stats(ServerStats),
    /// Reply to [`Request::Shutdown`].
    ShuttingDown,
    /// End-of-feed summary: what the server ingested from this feed.
    FeedAck(IngestReport),
    /// Reply to [`Request::Debug`]: the slow-event ring, oldest first.
    SlowEvents(Vec<SlowEvent>),
    /// Reply to [`Request::DebugTrace`]: the recorded spans, by start
    /// time.
    TraceSpans(Vec<TraceSpan>),
    /// Reply to [`Request::DebugAudit`]: the auditor's counters and
    /// mismatch ring.
    AuditReport(AuditReport),
    /// Any request that failed, with the typed error it failed with.
    Error(Error),
}

// ---------------------------------------------------------------------
// frame I/O
// ---------------------------------------------------------------------

/// Write one frame (length prefix + payload).
///
/// The encode side enforces the same bounds the decode side does: an
/// empty or over-[`MAX_FRAME_LEN`] payload is refused with a typed
/// error *before* any bytes hit the stream, so a too-large message
/// (e.g. a snapshot of an enormous portfolio) fails loudly on the
/// sender instead of desyncing the peer — and the `u32` length prefix
/// can never wrap.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.is_empty() {
        return Err(Error::Wire("refusing to write an empty frame".into()));
    }
    if payload.len() > MAX_FRAME_LEN {
        return Err(Error::Wire(format!(
            "refusing to write an oversized frame: {} bytes exceeds the \
             {MAX_FRAME_LEN}-byte limit",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())
        .and_then(|_| w.write_all(payload))
        .map_err(|e| Error::Io(format!("frame write failed: {e}")))
}

/// Read one frame's payload into `buf` (cleared first).
///
/// Returns `Ok(false)` on a clean end-of-stream (EOF exactly at a frame
/// boundary — how a feeder signals completion), `Ok(true)` when a full
/// payload was read, [`Error::Wire`] on a truncated or oversized frame
/// and [`Error::Io`] on transport failure.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<bool> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(false),
            Ok(0) => {
                return Err(Error::Wire(format!(
                    "truncated frame header: {got} of 4 bytes"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::Io(format!("frame header read failed: {e}"))),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 {
        return Err(Error::Wire("empty frame (a payload needs a tag)".into()));
    }
    if len > MAX_FRAME_LEN {
        return Err(Error::Wire(format!(
            "oversized frame: {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Error::Wire(format!("truncated frame: expected {len} payload bytes"))
        } else {
            Error::Io(format!("frame payload read failed: {e}"))
        }
    })?;
    Ok(true)
}

// ---------------------------------------------------------------------
// primitive encoding
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            buf.push(VAL_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(VAL_FLOAT);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(VAL_STR);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.push(VAL_BOOL);
            buf.push(*b as u8);
        }
        Value::Date(d) => {
            buf.push(VAL_DATE);
            buf.extend_from_slice(&d.to_le_bytes());
        }
        Value::Null => buf.push(VAL_NULL),
    }
}

fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_u32(buf, t.arity() as u32);
    for v in t.iter() {
        put_value(buf, v);
    }
}

fn put_event(buf: &mut Vec<u8>, e: &Event) {
    buf.push(match e.kind {
        EventKind::Insert => 0,
        EventKind::Delete => 1,
    });
    put_str(buf, &e.relation);
    put_tuple(buf, &e.tuple);
}

fn put_events(buf: &mut Vec<u8>, events: &[Event]) {
    put_u32(buf, events.len() as u32);
    for e in events {
        put_event(buf, e);
    }
}

fn put_snapshot(buf: &mut Vec<u8>, s: &ViewSnapshot) {
    put_str(buf, &s.name);
    put_u32(buf, s.columns.len() as u32);
    for c in &s.columns {
        put_str(buf, c);
    }
    put_u32(buf, s.rows.len() as u32);
    for row in &s.rows {
        put_tuple(buf, &row.key);
        put_u32(buf, row.values.len() as u32);
        for v in &row.values {
            put_value(buf, v);
        }
    }
    put_u64(buf, s.events_processed);
}

fn error_tag(e: &Error) -> u8 {
    match e {
        Error::Parse(_) => 0,
        Error::Analysis(_) => 1,
        Error::Schema(_) => 2,
        Error::Unsupported(_) => 3,
        Error::Compile(_) => 4,
        Error::Runtime(_) => 5,
        Error::Wire(_) => 6,
        Error::Io(_) => 7,
    }
}

fn error_message(e: &Error) -> &str {
    match e {
        Error::Parse(m)
        | Error::Analysis(m)
        | Error::Schema(m)
        | Error::Unsupported(m)
        | Error::Compile(m)
        | Error::Runtime(m)
        | Error::Wire(m)
        | Error::Io(m) => m,
    }
}

fn error_from_tag(tag: u8, message: String) -> Result<Error> {
    Ok(match tag {
        0 => Error::Parse(message),
        1 => Error::Analysis(message),
        2 => Error::Schema(message),
        3 => Error::Unsupported(message),
        4 => Error::Compile(message),
        5 => Error::Runtime(message),
        6 => Error::Wire(message),
        7 => Error::Io(message),
        other => return Err(Error::Wire(format!("unknown error category {other}"))),
    })
}

// ---------------------------------------------------------------------
// payload builders
// ---------------------------------------------------------------------

/// Encode a [`Request::Register`] payload.
pub fn encode_register(name: &str, sql: &str) -> Vec<u8> {
    let mut buf = vec![TAG_REGISTER];
    put_str(&mut buf, name);
    put_str(&mut buf, sql);
    buf
}

/// Encode a [`Request::ApplyBatch`] payload from an event slice
/// (zero-copy over the caller's events).
pub fn encode_apply_batch(events: &[Event]) -> Vec<u8> {
    let mut buf = vec![TAG_APPLY_BATCH];
    put_events(&mut buf, events);
    buf
}

/// Encode a [`Request::Snapshot`] payload.
pub fn encode_snapshot(name: &str) -> Vec<u8> {
    let mut buf = vec![TAG_SNAPSHOT];
    put_str(&mut buf, name);
    buf
}

/// Encode a [`Request::SnapshotAll`] payload.
pub fn encode_snapshot_all() -> Vec<u8> {
    vec![TAG_SNAPSHOT_ALL]
}

/// Encode a [`Request::Stats`] payload.
pub fn encode_stats() -> Vec<u8> {
    vec![TAG_STATS]
}

/// Encode a [`Request::Shutdown`] payload.
pub fn encode_shutdown() -> Vec<u8> {
    vec![TAG_SHUTDOWN]
}

/// Encode a [`Request::Debug`] payload.
pub fn encode_debug() -> Vec<u8> {
    vec![TAG_DEBUG]
}

/// Encode a [`Request::DebugTrace`] payload.
pub fn encode_debug_trace() -> Vec<u8> {
    vec![TAG_DEBUG_TRACE]
}

/// Encode a [`Request::DebugAudit`] payload.
pub fn encode_debug_audit() -> Vec<u8> {
    vec![TAG_DEBUG_AUDIT]
}

/// Encode a feed-plane batch payload ([`Message::Batch`]).
pub fn encode_batch(events: &[Event]) -> Vec<u8> {
    let mut buf = vec![TAG_BATCH];
    put_events(&mut buf, events);
    buf
}

/// Encode a [`Response`] payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    match resp {
        Response::Registered { view } => {
            buf.push(TAG_REGISTERED);
            put_u64(&mut buf, *view);
        }
        Response::Applied { deliveries } => {
            buf.push(TAG_APPLIED);
            put_u64(&mut buf, *deliveries);
        }
        Response::Snapshot(s) => {
            buf.push(TAG_SNAPSHOT_REPLY);
            put_snapshot(&mut buf, s);
        }
        Response::Snapshots(all) => {
            buf.push(TAG_SNAPSHOTS_REPLY);
            put_u32(&mut buf, all.len() as u32);
            for s in all {
                put_snapshot(&mut buf, s);
            }
        }
        Response::Stats(stats) => {
            buf.push(TAG_STATS_REPLY);
            put_u32(&mut buf, stats.views.len() as u32);
            for v in &stats.views {
                put_str(&mut buf, &v.name);
                put_u64(&mut buf, v.events_processed);
            }
            buf.push(stats.running as u8);
            for n in [
                stats.workers,
                stats.partitions,
                stats.batches,
                stats.events,
                stats.parallel_batches,
                stats.sequential_batches,
                stats.jobs,
                stats.queue_depth,
            ] {
                put_u64(&mut buf, n);
            }
            put_u32(&mut buf, stats.histograms.len() as u32);
            for h in &stats.histograms {
                put_str(&mut buf, &h.name);
                put_u32(&mut buf, h.labels.len() as u32);
                for (k, v) in &h.labels {
                    put_str(&mut buf, k);
                    put_str(&mut buf, v);
                }
                for n in [h.count, h.sum, h.max, h.p50, h.p95, h.p99] {
                    put_u64(&mut buf, n);
                }
            }
        }
        Response::ShuttingDown => buf.push(TAG_SHUTTING_DOWN),
        Response::FeedAck(report) => {
            buf.push(TAG_FEED_ACK);
            put_u64(&mut buf, report.batches as u64);
            put_u64(&mut buf, report.events as u64);
            put_u64(&mut buf, report.deliveries as u64);
        }
        Response::SlowEvents(events) => {
            buf.push(TAG_SLOW_EVENTS);
            put_u32(&mut buf, events.len() as u32);
            for e in events {
                put_u64(&mut buf, e.seq);
                put_str(&mut buf, &e.relation);
                buf.push(e.is_delete as u8);
                put_u64(&mut buf, e.micros);
                put_str(&mut buf, &e.payload);
            }
        }
        Response::TraceSpans(spans) => {
            buf.push(TAG_TRACE_SPANS);
            put_u32(&mut buf, spans.len() as u32);
            for s in spans {
                put_u64(&mut buf, s.seq);
                put_str(&mut buf, &s.layer);
                put_str(&mut buf, &s.detail);
                put_u64(&mut buf, s.start_ns);
                put_u64(&mut buf, s.dur_ns);
                put_u64(&mut buf, s.tid);
            }
        }
        Response::AuditReport(report) => {
            buf.push(TAG_AUDIT_REPORT);
            buf.push(report.enabled as u8);
            for n in [
                report.sample_one_in,
                report.checks,
                report.mismatches,
                report.dropped,
            ] {
                put_u64(&mut buf, n);
            }
            put_u32(&mut buf, report.entries.len() as u32);
            for m in &report.entries {
                put_str(&mut buf, &m.view);
                put_u64(&mut buf, m.seq);
                put_str(&mut buf, &m.kind);
                for side in [&m.expected, &m.actual] {
                    put_u32(&mut buf, side.len() as u32);
                    for entry in side {
                        put_str(&mut buf, entry);
                    }
                }
            }
        }
        Response::Error(e) => {
            buf.push(TAG_ERROR);
            buf.push(error_tag(e));
            put_str(&mut buf, error_message(e));
        }
    }
    buf
}

// ---------------------------------------------------------------------
// decoding
// ---------------------------------------------------------------------

/// A bounds-checked cursor over one frame payload.
struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    fn fail(&self, what: &str) -> Error {
        Error::Wire(format!(
            "{what} at byte {} of a {}-byte payload",
            self.pos,
            self.buf.len()
        ))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.fail(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn i64(&mut self, what: &str) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn i32(&mut self, what: &str) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// A `u32` element count, sanity-bounded by the bytes that remain:
    /// every element costs at least `min_bytes`, so a count larger than
    /// `remaining / min_bytes` is corrupt — reject it *before*
    /// allocating.
    fn count(&mut self, min_bytes: usize, what: &str) -> Result<usize> {
        let n = self.u32(what)? as usize;
        if n > self.remaining() / min_bytes.max(1) {
            return Err(self.fail(what));
        }
        Ok(n)
    }

    fn str(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        if len > self.remaining() {
            return Err(self.fail(what));
        }
        String::from_utf8(self.take(len, what)?.to_vec())
            .map_err(|_| Error::Wire(format!("{what}: invalid UTF-8")))
    }

    fn value(&mut self) -> Result<Value> {
        match self.u8("value tag")? {
            VAL_INT => Ok(Value::Int(self.i64("int value")?)),
            VAL_FLOAT => Ok(Value::Float(f64::from_bits(self.u64("float value")?))),
            VAL_STR => Ok(Value::Str(self.str("string value")?)),
            VAL_BOOL => match self.u8("bool value")? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                other => Err(self.fail(&format!("bool value {other}"))),
            },
            VAL_DATE => Ok(Value::Date(self.i32("date value")?)),
            VAL_NULL => Ok(Value::Null),
            other => Err(self.fail(&format!("unknown value tag {other}"))),
        }
    }

    fn tuple(&mut self) -> Result<Tuple> {
        let arity = self.count(1, "tuple arity")?;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(self.value()?);
        }
        Ok(Tuple::new(values))
    }

    fn event(&mut self) -> Result<Event> {
        let kind = match self.u8("event kind")? {
            0 => EventKind::Insert,
            1 => EventKind::Delete,
            other => return Err(self.fail(&format!("unknown event kind {other}"))),
        };
        let relation = self.str("event relation")?;
        let tuple = self.tuple()?;
        Ok(Event {
            relation,
            kind,
            tuple,
        })
    }

    fn batch(&mut self) -> Result<EventBatch> {
        // Smallest event: kind byte + empty relation + empty tuple.
        let n = self.count(9, "batch event count")?;
        let mut batch = EventBatch::with_capacity(n);
        for _ in 0..n {
            batch.push(self.event()?);
        }
        Ok(batch)
    }

    fn snapshot(&mut self) -> Result<ViewSnapshot> {
        let name = self.str("snapshot name")?;
        let column_count = self.count(4, "snapshot column count")?;
        let mut columns = Vec::with_capacity(column_count);
        for _ in 0..column_count {
            columns.push(self.str("snapshot column")?);
        }
        let row_count = self.count(8, "snapshot row count")?;
        let mut rows = Vec::with_capacity(row_count);
        for _ in 0..row_count {
            let key = self.tuple()?;
            let value_count = self.count(1, "row value count")?;
            let mut values = Vec::with_capacity(value_count);
            for _ in 0..value_count {
                values.push(self.value()?);
            }
            rows.push(ResultRow { key, values });
        }
        let events_processed = self.u64("snapshot event count")?;
        Ok(ViewSnapshot {
            name,
            columns,
            rows,
            events_processed,
        })
    }

    /// Every decoder must consume its whole payload — trailing garbage
    /// means the peer and we disagree about the format.
    fn finish<T>(self, value: T) -> Result<T> {
        if self.remaining() != 0 {
            return Err(Error::Wire(format!(
                "{} trailing bytes after a well-formed message",
                self.remaining()
            )));
        }
        Ok(value)
    }
}

/// Decode a payload the server side accepts: a request or a feed batch.
pub fn decode_message(payload: &[u8]) -> Result<Message> {
    let mut d = Decoder::new(payload);
    let msg = match d.u8("message tag")? {
        TAG_REGISTER => Message::Request(Request::Register {
            name: d.str("view name")?,
            sql: d.str("view sql")?,
        }),
        TAG_APPLY_BATCH => Message::Request(Request::ApplyBatch(d.batch()?)),
        TAG_SNAPSHOT => Message::Request(Request::Snapshot(d.str("view name")?)),
        TAG_SNAPSHOT_ALL => Message::Request(Request::SnapshotAll),
        TAG_STATS => Message::Request(Request::Stats),
        TAG_SHUTDOWN => Message::Request(Request::Shutdown),
        TAG_DEBUG => Message::Request(Request::Debug),
        TAG_DEBUG_TRACE => Message::Request(Request::DebugTrace),
        TAG_DEBUG_AUDIT => Message::Request(Request::DebugAudit),
        TAG_BATCH => Message::Batch(d.batch()?),
        other => return Err(Error::Wire(format!("unknown request tag 0x{other:02x}"))),
    };
    d.finish(msg)
}

/// Decode a payload the client side accepts: a response.
pub fn decode_response(payload: &[u8]) -> Result<Response> {
    let mut d = Decoder::new(payload);
    let resp = match d.u8("response tag")? {
        TAG_REGISTERED => Response::Registered {
            view: d.u64("view id")?,
        },
        TAG_APPLIED => Response::Applied {
            deliveries: d.u64("delivery count")?,
        },
        TAG_SNAPSHOT_REPLY => Response::Snapshot(d.snapshot()?),
        TAG_SNAPSHOTS_REPLY => {
            let n = d.count(13, "snapshot count")?;
            let mut all = Vec::with_capacity(n);
            for _ in 0..n {
                all.push(d.snapshot()?);
            }
            Response::Snapshots(all)
        }
        TAG_STATS_REPLY => {
            let view_count = d.count(12, "view stat count")?;
            let mut views = Vec::with_capacity(view_count);
            for _ in 0..view_count {
                views.push(ViewStat {
                    name: d.str("view name")?,
                    events_processed: d.u64("view event count")?,
                });
            }
            let running = match d.u8("running flag")? {
                0 => false,
                1 => true,
                other => return Err(Error::Wire(format!("bad running flag {other}"))),
            };
            let workers = d.u64("workers")?;
            let partitions = d.u64("partitions")?;
            let batches = d.u64("batches")?;
            let events = d.u64("events")?;
            let parallel_batches = d.u64("parallel batches")?;
            let sequential_batches = d.u64("sequential batches")?;
            let jobs = d.u64("jobs")?;
            let queue_depth = d.u64("queue depth")?;
            // Smallest histogram stat: empty name + zero labels + six
            // u64 summary fields.
            let histogram_count = d.count(56, "histogram stat count")?;
            let mut histograms = Vec::with_capacity(histogram_count);
            for _ in 0..histogram_count {
                let name = d.str("histogram name")?;
                let label_count = d.count(8, "histogram label count")?;
                let mut labels = Vec::with_capacity(label_count);
                for _ in 0..label_count {
                    let k = d.str("histogram label key")?;
                    let v = d.str("histogram label value")?;
                    labels.push((k, v));
                }
                histograms.push(HistogramStat {
                    name,
                    labels,
                    count: d.u64("histogram count")?,
                    sum: d.u64("histogram sum")?,
                    max: d.u64("histogram max")?,
                    p50: d.u64("histogram p50")?,
                    p95: d.u64("histogram p95")?,
                    p99: d.u64("histogram p99")?,
                });
            }
            Response::Stats(ServerStats {
                views,
                running,
                workers,
                partitions,
                batches,
                events,
                parallel_batches,
                sequential_batches,
                jobs,
                queue_depth,
                histograms,
            })
        }
        TAG_SHUTTING_DOWN => Response::ShuttingDown,
        TAG_FEED_ACK => Response::FeedAck(IngestReport {
            batches: d.u64("feed batches")? as usize,
            events: d.u64("feed events")? as usize,
            deliveries: d.u64("feed deliveries")? as usize,
        }),
        TAG_SLOW_EVENTS => {
            // Smallest slow event: seq + empty relation + kind byte +
            // micros + empty payload.
            let n = d.count(25, "slow event count")?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let seq = d.u64("slow event seq")?;
                let relation = d.str("slow event relation")?;
                let is_delete = match d.u8("slow event kind")? {
                    0 => false,
                    1 => true,
                    other => return Err(Error::Wire(format!("bad slow event kind {other}"))),
                };
                let micros = d.u64("slow event micros")?;
                let payload = d.str("slow event payload")?;
                events.push(SlowEvent {
                    seq,
                    relation,
                    is_delete,
                    micros,
                    payload,
                });
            }
            Response::SlowEvents(events)
        }
        TAG_TRACE_SPANS => {
            // Smallest span: seq + two empty strings + start + dur + tid.
            let n = d.count(40, "trace span count")?;
            let mut spans = Vec::with_capacity(n);
            for _ in 0..n {
                spans.push(TraceSpan {
                    seq: d.u64("trace span seq")?,
                    layer: d.str("trace span layer")?,
                    detail: d.str("trace span detail")?,
                    start_ns: d.u64("trace span start")?,
                    dur_ns: d.u64("trace span duration")?,
                    tid: d.u64("trace span tid")?,
                });
            }
            Response::TraceSpans(spans)
        }
        TAG_AUDIT_REPORT => {
            let enabled = match d.u8("audit enabled flag")? {
                0 => false,
                1 => true,
                other => return Err(Error::Wire(format!("bad audit enabled flag {other}"))),
            };
            let sample_one_in = d.u64("audit sample rate")?;
            let checks = d.u64("audit check count")?;
            let mismatches = d.u64("audit mismatch count")?;
            let dropped = d.u64("audit dropped count")?;
            // Smallest mismatch: empty view + seq + empty kind + two
            // zero-length entry lists.
            let n = d.count(24, "audit mismatch count")?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let view = d.str("audit mismatch view")?;
                let seq = d.u64("audit mismatch seq")?;
                let kind = d.str("audit mismatch kind")?;
                let mut sides = [Vec::new(), Vec::new()];
                for side in &mut sides {
                    let len = d.count(4, "audit entry count")?;
                    side.reserve(len);
                    for _ in 0..len {
                        side.push(d.str("audit entry")?);
                    }
                }
                let [expected, actual] = sides;
                entries.push(AuditMismatch {
                    view,
                    seq,
                    kind,
                    expected,
                    actual,
                });
            }
            Response::AuditReport(AuditReport {
                enabled,
                sample_one_in,
                checks,
                mismatches,
                dropped,
                entries,
            })
        }
        TAG_ERROR => {
            let tag = d.u8("error category")?;
            let message = d.str("error message")?;
            Response::Error(error_from_tag(tag, message)?)
        }
        other => return Err(Error::Wire(format!("unknown response tag 0x{other:02x}"))),
    };
    d.finish(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::tuple;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::insert("BIDS", tuple![1.5f64, 7i64, 2i64, 100.0f64, 99.25f64]),
            Event::delete("R", tuple![1i64, -9i64]),
            Event::insert(
                "TRADES",
                Tuple::new(vec![
                    Value::str("ACME,\"x\"\nümlaut"),
                    Value::Bool(true),
                    Value::date(2009, 8, 24),
                    Value::Null,
                    Value::Float(f64::NAN),
                ]),
            ),
        ]
    }

    fn sample_snapshot() -> ViewSnapshot {
        ViewSnapshot {
            name: "vwap".into(),
            columns: vec!["PRICE".into(), "SUM".into()],
            rows: vec![
                ResultRow {
                    key: Tuple::empty(),
                    values: vec![Value::Float(-0.0), Value::Int(i64::MIN)],
                },
                ResultRow {
                    key: tuple![3i64, "k"],
                    values: vec![Value::Null],
                },
            ],
            events_processed: u64::MAX,
        }
    }

    fn roundtrip_message(payload: Vec<u8>) -> Message {
        decode_message(&payload).unwrap()
    }

    fn roundtrip_response(resp: &Response) -> Response {
        decode_response(&encode_response(resp)).unwrap()
    }

    #[test]
    fn requests_round_trip() {
        assert_eq!(
            roundtrip_message(encode_register("vwap", "select sum(X) from R")),
            Message::Request(Request::Register {
                name: "vwap".into(),
                sql: "select sum(X) from R".into()
            })
        );
        let events = sample_events();
        match roundtrip_message(encode_apply_batch(&events)) {
            Message::Request(Request::ApplyBatch(batch)) => {
                assert_eq!(batch.events.len(), events.len());
                // NaN compares unequal under ==; Value's PartialEq treats
                // NaN == NaN, so direct equality works.
                assert_eq!(batch.events, events);
            }
            other => panic!("wrong decode: {other:?}"),
        }
        match roundtrip_message(encode_batch(&events)) {
            Message::Batch(batch) => assert_eq!(batch.events, events),
            other => panic!("wrong decode: {other:?}"),
        }
        assert_eq!(
            roundtrip_message(encode_snapshot("vwap")),
            Message::Request(Request::Snapshot("vwap".into()))
        );
        assert_eq!(
            roundtrip_message(encode_snapshot_all()),
            Message::Request(Request::SnapshotAll)
        );
        assert_eq!(
            roundtrip_message(encode_stats()),
            Message::Request(Request::Stats)
        );
        assert_eq!(
            roundtrip_message(encode_shutdown()),
            Message::Request(Request::Shutdown)
        );
        assert_eq!(
            roundtrip_message(encode_debug()),
            Message::Request(Request::Debug)
        );
        assert_eq!(
            roundtrip_message(encode_debug_trace()),
            Message::Request(Request::DebugTrace)
        );
        assert_eq!(
            roundtrip_message(encode_debug_audit()),
            Message::Request(Request::DebugAudit)
        );
    }

    #[test]
    fn float_values_survive_bit_exactly() {
        for bits in [
            0u64,
            f64::NAN.to_bits(),
            (-0.0f64).to_bits(),
            f64::INFINITY.to_bits(),
            0x7ff8_0000_dead_beef, // a payload-carrying NaN
            1.0f64.to_bits(),
        ] {
            let v = Value::Float(f64::from_bits(bits));
            let events = vec![Event::insert("F", Tuple::new(vec![v]))];
            match roundtrip_message(encode_batch(&events)) {
                Message::Batch(b) => match &b.events[0].tuple[0] {
                    Value::Float(f) => assert_eq!(f.to_bits(), bits, "bits changed"),
                    other => panic!("wrong value {other:?}"),
                },
                other => panic!("wrong decode: {other:?}"),
            }
        }
    }

    fn sample_stats() -> ServerStats {
        ServerStats {
            views: vec![
                ViewStat {
                    name: "vwap".into(),
                    events_processed: 10,
                },
                ViewStat {
                    name: "mm".into(),
                    events_processed: 0,
                },
            ],
            running: true,
            workers: 4,
            partitions: 2,
            batches: 100,
            events: 6_400,
            parallel_batches: 90,
            sequential_batches: 10,
            jobs: 180,
            queue_depth: 64,
            histograms: vec![
                HistogramStat {
                    name: "dbt_apply_event_seconds".into(),
                    labels: vec![],
                    count: 6_400,
                    sum: 12_800_000,
                    max: 950_000,
                    p50: 2_048,
                    p95: 16_384,
                    p99: 65_536,
                },
                HistogramStat {
                    name: "dbt_lock_wait_seconds".into(),
                    labels: vec![("mode".into(), "write".into())],
                    count: 100,
                    sum: 50_000,
                    max: 4_000,
                    p50: 512,
                    p95: 1_024,
                    p99: 4_000,
                },
            ],
        }
    }

    fn sample_slow_events() -> Vec<SlowEvent> {
        vec![
            SlowEvent {
                seq: 7,
                relation: "BIDS".into(),
                is_delete: false,
                micros: 1_250,
                payload: "(104.25, 30)".into(),
            },
            SlowEvent {
                seq: 9,
                relation: "ASKS".into(),
                is_delete: true,
                micros: u64::MAX,
                payload: String::new(),
            },
        ]
    }

    fn sample_trace_spans() -> Vec<TraceSpan> {
        vec![
            TraceSpan {
                seq: 42,
                layer: "queue".into(),
                detail: "batch=3".into(),
                start_ns: 1_000,
                dur_ns: 250,
                tid: 17,
            },
            TraceSpan {
                seq: 42,
                layer: "statement".into(),
                detail: "view=vwap stage=0 stmt=1 target=q_BIDS \"quoted\"".into(),
                start_ns: u64::MAX,
                dur_ns: 0,
                tid: 99_999,
            },
        ]
    }

    fn sample_audit_report() -> AuditReport {
        AuditReport {
            enabled: true,
            sample_one_in: 1024,
            checks: 977,
            mismatches: 2,
            dropped: 1,
            entries: vec![
                AuditMismatch {
                    view: "vwap".into(),
                    seq: 4_096,
                    kind: "chain".into(),
                    expected: vec!["q_BIDS[(1)]=7".into(), "... (+3 more)".into()],
                    actual: vec!["q_BIDS[(1)]=8".into()],
                },
                AuditMismatch {
                    view: "mm".into(),
                    seq: u64::MAX,
                    kind: "replay".into(),
                    expected: Vec::new(),
                    actual: vec!["[()] -> (42)".into()],
                },
            ],
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Registered { view: 3 },
            Response::Applied { deliveries: 12 },
            Response::Snapshot(sample_snapshot()),
            Response::Snapshots(vec![sample_snapshot(), sample_snapshot()]),
            Response::Stats(sample_stats()),
            Response::Stats(ServerStats::default()),
            Response::SlowEvents(sample_slow_events()),
            Response::SlowEvents(Vec::new()),
            Response::TraceSpans(sample_trace_spans()),
            Response::TraceSpans(Vec::new()),
            Response::AuditReport(sample_audit_report()),
            Response::AuditReport(AuditReport::default()),
            Response::ShuttingDown,
            Response::FeedAck(IngestReport {
                batches: 5,
                events: 320,
                deliveries: 640,
            }),
            Response::Error(Error::Parse("unexpected ')'".into())),
            Response::Error(Error::Wire("bad tag".into())),
        ] {
            assert_eq!(roundtrip_response(&resp), resp);
        }
    }

    #[test]
    fn frames_round_trip_through_a_byte_stream() {
        let mut wire = Vec::new();
        let payloads = [
            encode_stats(),
            encode_batch(&sample_events()),
            encode_register("a", "select count(*) from R"),
        ];
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut r = std::io::Cursor::new(wire);
        let mut buf = Vec::new();
        for p in &payloads {
            assert!(read_frame(&mut r, &mut buf).unwrap());
            assert_eq!(&buf, p);
        }
        assert!(!read_frame(&mut r, &mut buf).unwrap(), "clean EOF");
    }

    // -----------------------------------------------------------------
    // malformed input: typed errors, never panics
    // -----------------------------------------------------------------

    fn assert_wire_error(result: Result<Message>) {
        match result {
            Err(Error::Wire(_)) => {}
            other => panic!("expected a wire error, got {other:?}"),
        }
    }

    #[test]
    fn empty_unknown_and_trailing_payloads_are_rejected() {
        assert_wire_error(decode_message(&[]));
        assert_wire_error(decode_message(&[0x7f]));
        assert_wire_error(decode_message(&[0xff, 1, 2, 3]));
        // A well-formed message followed by trailing garbage.
        let mut p = encode_snapshot_all();
        p.push(0);
        assert_wire_error(decode_message(&p));
        match decode_response(&[0x01]) {
            Err(Error::Wire(_)) => {}
            other => panic!("unknown response tag must fail typed: {other:?}"),
        }
    }

    #[test]
    fn every_truncation_of_every_message_fails_cleanly() {
        let payloads = [
            encode_register("vwap", "select sum(PRICE*VOLUME), sum(VOLUME) from BIDS"),
            encode_apply_batch(&sample_events()),
            encode_batch(&sample_events()),
            encode_snapshot("vwap"),
        ];
        for payload in &payloads {
            for cut in 0..payload.len() {
                // Decoding any strict prefix must fail with a typed
                // error (empty prefixes included), and must not panic.
                assert_wire_error(decode_message(&payload[..cut]));
            }
        }
        for resp in [
            Response::Snapshots(vec![sample_snapshot()]),
            Response::Stats(sample_stats()),
            Response::SlowEvents(sample_slow_events()),
            Response::TraceSpans(sample_trace_spans()),
            Response::AuditReport(sample_audit_report()),
        ] {
            let payload = encode_response(&resp);
            for cut in 0..payload.len() {
                match decode_response(&payload[..cut]) {
                    Err(Error::Wire(_)) => {}
                    other => panic!("truncated response at {cut}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn random_corruption_never_panics_and_roundtrips_stay_exact() {
        let mut rng = SmallRng::seed_from_u64(0x3173);
        let base = encode_apply_batch(&sample_events());
        for _ in 0..2_000 {
            let mut corrupt = base.clone();
            // Flip 1–4 random bytes.
            for _ in 0..rng.gen_range(1..=4usize) {
                let at = rng.gen_range(0..corrupt.len());
                corrupt[at] = corrupt[at].wrapping_add(rng.gen_range(1..=255usize) as u8);
            }
            // Either decodes to *something* well-formed or fails typed;
            // both are fine, panicking is not.
            match decode_message(&corrupt) {
                Ok(_) | Err(Error::Wire(_)) => {}
                Err(other) => panic!("corruption produced a non-wire error: {other:?}"),
            }
        }
    }

    #[test]
    fn random_garbage_frames_never_panic() {
        let mut rng = SmallRng::seed_from_u64(0xdeadbeef);
        for _ in 0..2_000 {
            let len = rng.gen_range(0..64usize);
            let garbage: Vec<u8> = (0..len)
                .map(|_| rng.gen_range(0..=255usize) as u8)
                .collect();
            let _ = decode_message(&garbage);
            let _ = decode_response(&garbage);
        }
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A batch claiming u32::MAX events in a 9-byte payload: the
        // count bound must reject it before any allocation happens.
        let mut p = vec![TAG_BATCH];
        put_u32(&mut p, u32::MAX);
        p.extend_from_slice(&[0, 0, 0, 0]);
        assert_wire_error(decode_message(&p));

        // A string claiming to be longer than the payload.
        let mut p = vec![TAG_SNAPSHOT];
        put_u32(&mut p, 1_000_000);
        p.extend_from_slice(b"abc");
        assert_wire_error(decode_message(&p));
    }

    #[test]
    fn oversized_and_empty_payloads_are_refused_at_write_time() {
        let mut out = Vec::new();
        match write_frame(&mut out, &[]) {
            Err(Error::Wire(m)) => assert!(m.contains("empty"), "{m}"),
            other => panic!("empty write: {other:?}"),
        }
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        match write_frame(&mut out, &huge) {
            Err(Error::Wire(m)) => assert!(m.contains("oversized"), "{m}"),
            other => panic!("oversized write: {other:?}"),
        }
        assert!(out.is_empty(), "nothing reached the stream");
    }

    #[test]
    fn oversized_and_truncated_frames_are_typed_errors() {
        // Oversized length prefix.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut buf = Vec::new();
        match read_frame(&mut std::io::Cursor::new(&wire), &mut buf) {
            Err(Error::Wire(m)) => assert!(m.contains("oversized"), "{m}"),
            other => panic!("oversized frame: {other:?}"),
        }

        // Zero-length frame.
        let wire = 0u32.to_le_bytes().to_vec();
        match read_frame(&mut std::io::Cursor::new(&wire), &mut buf) {
            Err(Error::Wire(m)) => assert!(m.contains("empty"), "{m}"),
            other => panic!("empty frame: {other:?}"),
        }

        // Truncated header and truncated payload.
        let mut full = Vec::new();
        write_frame(&mut full, &encode_stats()).unwrap();
        for cut in 1..full.len() {
            match read_frame(&mut std::io::Cursor::new(&full[..cut]), &mut buf) {
                Err(Error::Wire(m)) => assert!(m.contains("truncated"), "{m}"),
                other => panic!("truncated frame at {cut}: {other:?}"),
            }
        }
    }
}
