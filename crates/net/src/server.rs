//! The serving core of `dbtoasterd`: a tokio-free standalone network
//! server around a [`ViewServer`].
//!
//! ```text
//!  clients ──TCP──▶ accept loop (std thread per connection)
//!                      │ request plane          │ feed plane
//!                      │ (one frame in,         │ (batch frames until
//!                      │  one frame out)        │  EOF, then one ack)
//!                      ▼                        ▼
//!                 handle_request          SocketSource poll loop
//!                      │  apply_batch           │
//!                      └───────┬────────────────┘
//!                              ▼
//!              bounded MPSC ingest queue (back-pressure)
//!                              ▼
//!               ingest thread → ShardedDispatcher
//!                              ▼
//!              shared map store (group RwLocks)
//!                              ▲
//!        snapshot/stats requests read concurrently (consistent cut)
//! ```
//!
//! Ordering and consistency: every ingested batch — request-plane or
//! feed-plane — funnels through **one** bounded queue drained by **one**
//! ingest thread, so batches apply in admission order and the final
//! state is exactly what a sequential [`ViewServer::apply_batch`] over
//! the same stream computes (the dispatcher's own equivalence guarantee
//! covers the parallel partitions within each batch). Snapshots never
//! enter the queue: they read the shared store's group locks directly,
//! concurrent with ingestion, and observe a consistent cut.
//!
//! Lifecycle: a server starts in the **registering** phase (views may be
//! added locally or over the wire). The first batch **promotes** it to
//! the running phase — the portfolio is frozen, the
//! [`ShardedDispatcher`] is built (worker count autotuned unless
//! configured), and further registrations are refused with a typed
//! error, matching the dispatcher's static partition plan.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use dbtoaster_common::{Catalog, Error, EventBatch, Result};
use dbtoaster_server::{
    AuditHandle, IngestReport, ShardedDispatcher, ViewId, ViewServer, ViewSnapshot,
};
use dbtoaster_telemetry::{
    log_info, log_warn, Counter, Gauge, HealthFn, HealthStatus, Histogram, MetricsRegistry,
    SlowEvent, SlowEventRing, TraceRecorder, TraceSpan, Unit, DEFAULT_SLOW_PAYLOAD_BYTES,
    DEFAULT_SLOW_RING_CAPACITY, LAYER_QUEUE,
};

use crate::source::{SocketSource, DEFAULT_SOURCE_QUEUE_DEPTH};
use crate::wire::{
    self, AuditReport, HistogramStat, Message, Request, Response, ServerStats, ViewStat,
};

/// Tunables of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Dispatcher worker-pool size; `None` autotunes from the machine's
    /// available parallelism and the portfolio's partition count.
    pub workers: Option<usize>,
    /// Bound of the central ingest queue, in batches. Admission blocks
    /// when full — the back-pressure that keeps memory flat when
    /// feeders outrun the dispatcher.
    pub queue_depth: usize,
    /// Maximum events per batch pulled from a feed connection.
    pub feed_batch_size: usize,
    /// Bound of each feed connection's decoded-batch queue.
    pub feed_queue_depth: usize,
    /// Capture events whose apply latency meets this threshold (in
    /// microseconds) in a bounded ring, dumpable via the `debug`
    /// request. `None` disables capture entirely.
    pub slow_event_us: Option<u64>,
    /// Also capture a rendered (bounded) copy of each slow event's
    /// tuple in the ring. Off by default — payloads can carry data.
    pub slow_event_payloads: bool,
    /// Record event-flow trace spans for one in every N admitted
    /// events (`Some(1)` traces everything). Spans cover queue wait,
    /// dispatch, group-lock acquisition, stages and statements, and are
    /// dumpable via the `debug trace` request or `/trace` endpoint.
    /// `None` leaves tracing fully disabled (one relaxed load per span
    /// site).
    pub trace_sample: Option<u64>,
    /// Shadow-audit one in every N events: re-run it through the
    /// interpreter oracle off-thread and compare the view bit-exactly
    /// (`Some(1)` audits everything). Mismatches count into
    /// `dbt_audit_mismatch_total`, land in a bounded ring dumpable via
    /// the `debug audit` request, and fail readiness. `None` leaves
    /// auditing fully disabled (one relaxed load per event).
    pub audit_sample: Option<u64>,
    /// Readiness threshold: `/readyz` reports not-ready while any
    /// relation's feed lag (admitted − applied events) exceeds this.
    pub ready_max_lag: u64,
    /// Readiness threshold: `/readyz` reports not-ready while the
    /// ingest queue holds more than this many batches.
    pub ready_max_queue: u64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            workers: None,
            queue_depth: 64,
            feed_batch_size: 1024,
            feed_queue_depth: DEFAULT_SOURCE_QUEUE_DEPTH,
            slow_event_us: None,
            slow_event_payloads: false,
            trace_sample: None,
            audit_sample: None,
            ready_max_lag: 100_000,
            ready_max_queue: 64,
        }
    }
}

/// Server lifecycle: registration is open until the first batch
/// arrives, then the dispatcher is built and the portfolio is frozen.
enum Phase {
    Registering(Box<ViewServer>),
    Running(Arc<ShardedDispatcher>),
    /// Transient placeholder during promotion; never observable.
    Promoting,
}

/// One unit on the ingest queue.
enum IngestJob {
    Batch {
        batch: EventBatch,
        reply: std::sync::mpsc::Sender<Result<usize>>,
        /// Admission time, taken while metrics are enabled or tracing
        /// is on — the ingest thread turns it into queue-wait latency
        /// (and queue spans) on dequeue.
        admitted: Option<Instant>,
        /// First admission sequence of the batch (event `i` carries
        /// `base_seq + i`), allocated at admission so queue-wait spans
        /// correlate with the dispatch/apply spans downstream.
        base_seq: u64,
    },
    Stop,
}

/// The network layer's own instruments, registered in the portfolio's
/// shared [`MetricsRegistry`]. All label sets are fixed at bind time —
/// per-connection labels would grow without bound, so connection- and
/// feed-level activity aggregates into global counters instead.
struct NetMetrics {
    /// Batches admitted to the ingest queue and not yet applied. Can
    /// momentarily exceed the queue bound: admission increments before
    /// the blocking enqueue, so the excess counts back-pressured
    /// senders.
    queue_depth: Arc<Gauge>,
    /// Admission-to-dequeue latency of ingest jobs.
    queue_wait: Arc<Histogram>,
    /// Connections accepted, either plane.
    connections: Arc<Counter>,
    /// Connections that switched into feed mode.
    feed_connections: Arc<Counter>,
    /// Batch frames ingested from feed connections.
    feed_batches: Arc<Counter>,
    /// Events ingested from feed connections.
    feed_events: Arc<Counter>,
    /// Per stream relation: events admitted to the ingest queue
    /// (`dbt_feed_admitted_events_total{relation}`) and the freshness
    /// lag gauge (`dbt_feed_lag_events{relation}` = admitted − applied),
    /// refreshed by the pre-scrape hook. Label sets are fixed at bind:
    /// one pair per catalog stream relation.
    relation_lag: Vec<(String, Arc<Counter>, Arc<Gauge>)>,
}

impl NetMetrics {
    fn register_in(registry: &MetricsRegistry, catalog: &Catalog) -> NetMetrics {
        let relation_lag = catalog
            .stream_relations()
            .map(|schema| {
                let labels = [("relation", schema.name.as_str())];
                (
                    schema.name.clone(),
                    registry.counter(
                        "dbt_feed_admitted_events_total",
                        "Events admitted to the ingest queue for the relation",
                        &labels,
                    ),
                    registry.gauge(
                        "dbt_feed_lag_events",
                        "Admitted-but-not-yet-applied events of the relation",
                        &labels,
                    ),
                )
            })
            .collect();
        NetMetrics {
            relation_lag,
            queue_depth: registry.gauge(
                "dbt_ingest_queue_depth",
                "Batches admitted to the ingest queue and not yet applied",
                &[],
            ),
            queue_wait: registry.histogram(
                "dbt_ingest_wait_seconds",
                "Time an ingest job spends queued before the ingest thread picks it up",
                &[],
                Unit::Nanos,
            ),
            connections: registry.counter(
                "dbt_net_connections_total",
                "TCP connections accepted (request and feed planes)",
                &[],
            ),
            feed_connections: registry.counter(
                "dbt_feed_connections_total",
                "Connections that switched into feed mode",
                &[],
            ),
            feed_batches: registry.counter(
                "dbt_feed_batches_total",
                "Batch frames ingested from feed connections",
                &[],
            ),
            feed_events: registry.counter(
                "dbt_feed_events_total",
                "Events ingested from feed connections",
                &[],
            ),
        }
    }
}

struct Inner {
    config: NetConfig,
    /// The portfolio's trace recorder (owned by the [`ViewServer`]
    /// inside `phase`, cloned here so admission never takes the phase
    /// lock). Allocates every event's admission sequence.
    trace: Arc<TraceRecorder>,
    addr: SocketAddr,
    phase: Mutex<Phase>,
    /// Mirrors `matches!(phase, Phase::Running(_))` so the hot ingest
    /// path can skip the phase mutex entirely once promoted.
    running: AtomicBool,
    ingest_tx: SyncSender<IngestJob>,
    stopping: AtomicBool,
    /// The portfolio's metrics registry, shared with the [`ViewServer`]
    /// inside `phase` — kept here so scrapes and stats never need the
    /// phase lock.
    registry: Arc<MetricsRegistry>,
    metrics: NetMetrics,
    /// The slow-event ring shared with the [`ViewServer`]'s apply
    /// paths; populated when [`NetConfig::slow_event_us`] is set.
    slow_ring: Option<Arc<SlowEventRing>>,
    /// Read-side handle onto the [`ViewServer`]'s shadow auditor,
    /// cloned at bind so the `debug audit` response and the readiness
    /// probe never take the phase lock.
    audit: AuditHandle,
    /// Last readiness verdict, so flips (ready ⇄ not ready) are logged
    /// exactly once per transition.
    last_ready: AtomicBool,
}

impl Inner {
    /// The running dispatcher, building it (and freezing registration)
    /// on first use.
    fn promote(&self) -> Arc<ShardedDispatcher> {
        let mut phase = self.phase.lock();
        if let Phase::Running(d) = &*phase {
            return Arc::clone(d);
        }
        let Phase::Registering(server) = std::mem::replace(&mut *phase, Phase::Promoting) else {
            unreachable!("Promoting is never left in place");
        };
        let server = Arc::new(*server);
        let dispatcher = Arc::new(match self.config.workers {
            Some(workers) => ShardedDispatcher::new(server, workers),
            None => ShardedDispatcher::new_auto(server),
        });
        *phase = Phase::Running(Arc::clone(&dispatcher));
        self.running.store(true, Ordering::Release);
        dispatcher
    }

    /// The dispatcher if already running.
    fn dispatcher(&self) -> Option<Arc<ShardedDispatcher>> {
        match &*self.phase.lock() {
            Phase::Running(d) => Some(Arc::clone(d)),
            _ => None,
        }
    }

    fn register(&self, name: &str, sql: &str) -> Result<ViewId> {
        match &mut *self.phase.lock() {
            Phase::Registering(server) => server.register(name, sql),
            _ => Err(Error::Runtime(format!(
                "cannot register view '{name}': ingestion has started and the \
                 portfolio is frozen (register every view before the first batch)"
            ))),
        }
    }

    /// Admit one batch: promote if needed, enqueue, wait for the apply
    /// result. Blocking on a full queue is the back-pressure contract.
    /// Once running, admission touches no lock — just the queue.
    fn ingest(&self, batch: EventBatch) -> Result<usize> {
        if self.stopping.load(Ordering::SeqCst) {
            return Err(Error::Runtime("server is shutting down".into()));
        }
        if !self.running.load(Ordering::Acquire) {
            self.promote();
        }
        // Admission stamps: the batch's sequence range (always — it
        // feeds the watermarks) and the per-relation admitted counters
        // behind the lag gauges.
        let base_seq = self.trace.admit(batch.len() as u64);
        for (relation, admitted, _) in &self.metrics.relation_lag {
            let n = batch.iter().filter(|e| &e.relation == relation).count();
            if n > 0 {
                admitted.add(n as u64);
            }
        }
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        self.metrics.queue_depth.add(1);
        let admitted = (self.registry.enabled() || self.trace.is_enabled()).then(Instant::now);
        let sent = self.ingest_tx.send(IngestJob::Batch {
            batch,
            reply: reply_tx,
            admitted,
            base_seq,
        });
        if sent.is_err() {
            self.metrics.queue_depth.sub(1);
            return Err(Error::Runtime("ingest queue is closed".into()));
        }
        reply_rx
            .recv()
            .map_err(|_| Error::Runtime("ingest thread exited before replying".into()))?
    }

    /// A consistent cut of every view, concurrent with ingestion.
    fn snapshot_all(&self) -> Vec<ViewSnapshot> {
        let phase = self.phase.lock();
        match &*phase {
            Phase::Registering(server) => server.snapshot_all(),
            Phase::Running(d) => {
                let d = Arc::clone(d);
                drop(phase);
                d.server().snapshot_all()
            }
            Phase::Promoting => unreachable!("Promoting is never left in place"),
        }
    }

    /// One view's snapshot via the cheap path: only that view's own
    /// map groups are locked and copied, whatever the portfolio size.
    fn snapshot(&self, name: &str) -> Result<ViewSnapshot> {
        let phase = self.phase.lock();
        match &*phase {
            Phase::Registering(server) => server.snapshot(name),
            Phase::Running(d) => {
                let d = Arc::clone(d);
                drop(phase);
                d.server().snapshot(name)
            }
            Phase::Promoting => unreachable!("Promoting is never left in place"),
        }
    }

    fn stats(&self) -> ServerStats {
        fn view_stats(server: &ViewServer) -> Vec<ViewStat> {
            server
                .view_names()
                .iter()
                .map(|name| ViewStat {
                    name: name.to_string(),
                    events_processed: server.events_processed(name).unwrap_or(0),
                })
                .collect()
        }
        let histograms = self.histogram_stats();
        let phase = self.phase.lock();
        match &*phase {
            Phase::Registering(server) => ServerStats {
                views: view_stats(server),
                running: false,
                queue_depth: self.config.queue_depth as u64,
                histograms,
                ..ServerStats::default()
            },
            Phase::Running(d) => {
                let d = Arc::clone(d);
                drop(phase);
                let report = d.report();
                ServerStats {
                    views: view_stats(d.server()),
                    running: true,
                    workers: report.workers,
                    partitions: d.partitions() as u64,
                    batches: report.batches,
                    events: report.events,
                    parallel_batches: report.parallel_batches,
                    sequential_batches: report.sequential_batches,
                    jobs: report.jobs,
                    queue_depth: self.config.queue_depth as u64,
                    histograms,
                }
            }
            Phase::Promoting => unreachable!("Promoting is never left in place"),
        }
    }

    /// Summarize every registry histogram for the `stats` response —
    /// the same series the Prometheus endpoint exposes, in wire form.
    fn histogram_stats(&self) -> Vec<HistogramStat> {
        self.registry
            .histogram_snapshots()
            .into_iter()
            .map(|(name, labels, s)| HistogramStat {
                name,
                labels,
                count: s.count,
                sum: s.sum,
                max: s.max,
                p50: s.p50(),
                p95: s.p95(),
                p99: s.p99(),
            })
            .collect()
    }

    /// The slow-event ring's retained entries, oldest first (empty when
    /// capture is not configured).
    fn slow_events(&self) -> Vec<SlowEvent> {
        self.slow_ring
            .as_ref()
            .map(|ring| ring.dump())
            .unwrap_or_default()
    }

    /// Refresh the registry's store-size gauges from the live store —
    /// the Prometheus endpoint's pre-scrape hook, shared with
    /// `memory_report` so the two can never disagree.
    fn refresh_store_metrics(&self) {
        let phase = self.phase.lock();
        match &*phase {
            Phase::Registering(server) => {
                server.refresh_store_metrics();
                self.refresh_feed_lag(server);
            }
            Phase::Running(d) => {
                let d = Arc::clone(d);
                drop(phase);
                d.server().refresh_store_metrics();
                self.refresh_feed_lag(d.server());
            }
            Phase::Promoting => unreachable!("Promoting is never left in place"),
        }
    }

    /// Stop accepting and drain: set the flag (the polling accept loop
    /// observes it within one [`ACCEPT_POLL`] interval, whatever the
    /// bind address) and stop the ingest thread after the jobs already
    /// admitted.
    fn begin_shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = self.ingest_tx.send(IngestJob::Stop);
    }

    fn handle_request(self: &Arc<Inner>, req: Request) -> Response {
        match req {
            Request::Register { name, sql } => match self.register(&name, &sql) {
                Ok(id) => Response::Registered { view: id.0 as u64 },
                Err(e) => Response::Error(e),
            },
            Request::ApplyBatch(batch) => match self.ingest(batch) {
                Ok(deliveries) => Response::Applied {
                    deliveries: deliveries as u64,
                },
                Err(e) => Response::Error(e),
            },
            Request::Snapshot(name) => match self.snapshot(&name) {
                Ok(s) => Response::Snapshot(s),
                Err(e) => Response::Error(e),
            },
            Request::SnapshotAll => Response::Snapshots(self.snapshot_all()),
            Request::Stats => Response::Stats(self.stats()),
            // Unreachable from handle_connection, which intercepts
            // Shutdown to write the reply *before* stopping the service
            // threads. Any other caller must do the same if it relays
            // the response over a socket the process is about to leave.
            Request::Shutdown => {
                self.begin_shutdown();
                Response::ShuttingDown
            }
            Request::Debug => Response::SlowEvents(self.slow_events()),
            Request::DebugTrace => Response::TraceSpans(self.trace.dump()),
            Request::DebugAudit => Response::AuditReport(self.audit_report()),
        }
    }

    /// Assemble the `debug audit` response from the auditor's handle.
    fn audit_report(&self) -> AuditReport {
        AuditReport {
            enabled: self.audit.is_enabled(),
            sample_one_in: self.audit.sample_one_in(),
            checks: self.audit.checks_total(),
            mismatches: self.audit.mismatch_total(),
            dropped: self.audit.dropped_total(),
            entries: self.audit.mismatches(),
        }
    }

    /// The highest per-relation feed lag (admitted − applied events)
    /// across the catalog, read from the live counters.
    fn max_feed_lag(&self) -> u64 {
        let phase = self.phase.lock();
        let server = match &*phase {
            Phase::Registering(server) => {
                self.refresh_feed_lag(server);
                return self.peak_lag_gauge();
            }
            Phase::Running(d) => Arc::clone(d),
            Phase::Promoting => unreachable!("Promoting is never left in place"),
        };
        drop(phase);
        self.refresh_feed_lag(server.server());
        self.peak_lag_gauge()
    }

    fn peak_lag_gauge(&self) -> u64 {
        self.metrics
            .relation_lag
            .iter()
            .map(|(_, _, lag)| lag.get().max(0) as u64)
            .max()
            .unwrap_or(0)
    }

    /// The readiness verdict behind `/readyz`: the server is ready to
    /// take traffic while the ingest queue is below its threshold,
    /// every relation's feed lag is bounded, and the shadow auditor
    /// has found zero mismatches. A server that cannot trust its own
    /// views, or cannot keep up, should be rotated out of service.
    /// Transitions are logged once per flip.
    fn readiness(&self) -> HealthStatus {
        let mut problems = Vec::new();
        let queue = self.metrics.queue_depth.get().max(0) as u64;
        if queue > self.config.ready_max_queue {
            problems.push(format!(
                "ingest queue depth {queue} exceeds {}",
                self.config.ready_max_queue
            ));
        }
        let lag = self.max_feed_lag();
        if lag > self.config.ready_max_lag {
            problems.push(format!(
                "feed lag {lag} events exceeds {}",
                self.config.ready_max_lag
            ));
        }
        let mismatches = self.audit.mismatch_total();
        if mismatches > 0 {
            problems.push(format!("{mismatches} audit mismatch(es)"));
        }
        let ready = problems.is_empty();
        let detail = if ready {
            "ingest healthy".to_string()
        } else {
            problems.join("; ")
        };
        let was_ready = self.last_ready.swap(ready, Ordering::Relaxed);
        if was_ready != ready {
            if ready {
                log_info("net", "readiness restored", &[]);
            } else {
                log_warn("net", "readiness lost", &[("detail", detail.as_str())]);
            }
        }
        HealthStatus { ready, detail }
    }

    /// Fault-injection passthrough to
    /// [`ViewServer::corrupt_map_entry`], phase-agnostic.
    fn corrupt_map_entry(&self, view: &str, map: &str) -> Result<bool> {
        let phase = self.phase.lock();
        match &*phase {
            Phase::Registering(server) => server.corrupt_map_entry(view, map),
            Phase::Running(d) => {
                let d = Arc::clone(d);
                drop(phase);
                d.server().corrupt_map_entry(view, map)
            }
            Phase::Promoting => unreachable!("Promoting is never left in place"),
        }
    }

    /// Refresh the per-relation feed-lag gauges: admitted (the net
    /// layer's counters) minus applied (the server's relation
    /// counters). Relations without a dispatch plan never apply, so
    /// they report no lag rather than a forever-growing one.
    fn refresh_feed_lag(&self, server: &ViewServer) {
        for (relation, admitted, lag) in &self.metrics.relation_lag {
            let applied = match server.relation_events(relation) {
                Some(n) => n,
                None => continue,
            };
            lag.set(admitted.get().saturating_sub(applied) as i64);
        }
    }
}

fn write_response(writer: &mut BufWriter<TcpStream>, resp: &Response) -> Result<()> {
    wire::write_frame(writer, &wire::encode_response(resp))?;
    writer
        .flush()
        .map_err(|e| Error::Io(format!("response flush failed: {e}")))
}

/// One accepted connection: requests get responses until the peer
/// hangs up; the first batch frame switches the connection into feed
/// mode for the rest of its life.
fn handle_connection(inner: Arc<Inner>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut buf = Vec::new();
    let mut first_frame = true;
    loop {
        match wire::read_frame(&mut reader, &mut buf) {
            Ok(true) => {}
            Ok(false) => {
                // EOF before any frame could be a feeder that had
                // nothing to send but still awaits its ack; answering
                // an already-gone request client is harmless. EOF
                // after request traffic is a clean hang-up.
                if first_frame {
                    let _ =
                        write_response(&mut writer, &Response::FeedAck(IngestReport::default()));
                }
                return;
            }
            Err(e) => {
                // Tell the peer what was malformed, then drop the
                // connection — after a framing error the stream cannot
                // be re-synchronized. The logger's global rate bound
                // keeps a misbehaving peer from flooding stderr.
                log_warn(
                    "net",
                    "dropping connection after a framing error",
                    &[("error", &e.to_string())],
                );
                let _ = write_response(&mut writer, &Response::Error(e));
                return;
            }
        }
        first_frame = false;
        match wire::decode_message(&buf) {
            Ok(Message::Batch(first)) => {
                feed_connection(&inner, first, reader, writer);
                return;
            }
            // Shutdown replies *before* stopping the service threads:
            // once they stop, the process may exit, and the reply must
            // already be in the kernel's send buffer by then.
            Ok(Message::Request(Request::Shutdown)) => {
                let _ = write_response(&mut writer, &Response::ShuttingDown);
                inner.begin_shutdown();
                return;
            }
            Ok(Message::Request(req)) => {
                let resp = inner.handle_request(req);
                if write_response(&mut writer, &resp).is_err() {
                    return;
                }
            }
            Err(e) => {
                log_warn(
                    "net",
                    "dropping connection after an undecodable message",
                    &[("error", &e.to_string())],
                );
                let _ = write_response(&mut writer, &Response::Error(e));
                return;
            }
        }
    }
}

/// Feed mode: pump the connection's remaining batch frames through a
/// [`SocketSource`] into the ingest queue, then acknowledge the whole
/// feed (the barrier that makes a subsequent snapshot observe it all).
fn feed_connection(
    inner: &Arc<Inner>,
    first: EventBatch,
    reader: BufReader<TcpStream>,
    mut writer: BufWriter<TcpStream>,
) {
    inner.metrics.feed_connections.inc();
    let mut report = IngestReport::default();
    let outcome = (|| -> Result<()> {
        // The frame that identified this connection as a feed was
        // already consumed; account for it, then the shared drain loop
        // covers the rest of the stream.
        if !first.is_empty() {
            report.batches += 1;
            report.events += first.len();
            inner.metrics.feed_batches.inc();
            inner.metrics.feed_events.add(first.len() as u64);
            report.deliveries += inner.ingest(first)?;
        }
        let mut source = SocketSource::from_reader("feed", reader, inner.config.feed_queue_depth)?;
        report.absorb(dbtoaster_server::drain_source(
            &mut source,
            inner.config.feed_batch_size,
            |batch| {
                inner.metrics.feed_batches.inc();
                inner.metrics.feed_events.add(batch.len() as u64);
                inner.ingest(batch)
            },
        )?);
        Ok(())
    })();
    let resp = match outcome {
        Ok(()) => Response::FeedAck(report),
        Err(e) => {
            log_warn(
                "net",
                "feed connection failed",
                &[
                    ("error", &e.to_string()),
                    ("batches", &report.batches.to_string()),
                    ("events", &report.events.to_string()),
                ],
            );
            Response::Error(e)
        }
    };
    let _ = write_response(&mut writer, &resp);
}

/// The single ingest thread: drains the bounded queue through the
/// sharded dispatcher, in admission order.
fn ingest_loop(inner: Arc<Inner>, rx: Receiver<IngestJob>) {
    // The dispatcher never changes once Running; resolve it through the
    // phase mutex once, then the drain loop is lock-free.
    let mut dispatcher: Option<Arc<ShardedDispatcher>> = None;
    for job in rx {
        match job {
            IngestJob::Stop => return,
            IngestJob::Batch {
                batch,
                reply,
                admitted,
                base_seq,
            } => {
                inner.metrics.queue_depth.sub(1);
                if let Some(at) = admitted {
                    inner
                        .metrics
                        .queue_wait
                        .record(at.elapsed().as_nanos() as u64);
                    // Queue-wait spans: the admission→dequeue window,
                    // once per sampled event of the batch.
                    let trace = &inner.trace;
                    if trace.is_enabled() {
                        let dur_ns = at.elapsed().as_nanos() as u64;
                        let start_ns = trace.ns_of(at);
                        let tid = TraceRecorder::current_tid();
                        for i in 0..batch.len() as u64 {
                            let seq = base_seq + i;
                            if trace.sampled(seq) {
                                trace.record(TraceSpan {
                                    seq,
                                    layer: LAYER_QUEUE.to_string(),
                                    detail: format!("batch={}", batch.len()),
                                    start_ns,
                                    dur_ns,
                                    tid,
                                });
                            }
                        }
                    }
                }
                if dispatcher.is_none() {
                    dispatcher = inner.dispatcher();
                }
                let result = match &dispatcher {
                    Some(d) => d.apply_batch_at(&batch, base_seq),
                    None => Err(Error::Runtime(
                        "ingest job before promotion (admission bug)".into(),
                    )),
                };
                let _ = reply.send(result);
            }
        }
    }
}

/// The accept loop polls a non-blocking listener so shutdown liveness
/// never depends on the self-poke connection succeeding: even if the
/// poke is filtered or ports are exhausted, the loop observes the
/// `stopping` flag within one poll interval.
const ACCEPT_POLL: std::time::Duration = std::time::Duration::from_millis(5);

fn accept_loop(inner: Arc<Inner>, listener: TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        // Cannot guarantee shutdown liveness without it; serve nothing
        // rather than risk a permanently wedged join.
        return;
    }
    loop {
        if inner.stopping.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            // Transient accept failure (per-connection, e.g.
            // ECONNABORTED): keep serving.
            Err(_) => continue,
        };
        // On some platforms the accepted socket inherits the listener's
        // non-blocking mode; connection handlers expect blocking I/O.
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        // Responses and acks must not sit in Nagle's buffer waiting for
        // a delayed ACK.
        let _ = stream.set_nodelay(true);
        inner.metrics.connections.inc();
        let inner = Arc::clone(&inner);
        let spawned = std::thread::Builder::new()
            .name("dbtoaster-conn".into())
            .spawn(move || handle_connection(inner, stream));
        if spawned.is_err() {
            // Out of threads: drop the connection rather than the
            // server.
            continue;
        }
    }
}

/// A running standalone server: accept loop, bounded ingest queue,
/// sharded dispatch, concurrent snapshots. Binding returns immediately;
/// the handle can register views locally (the `--view` flags of
/// `dbtoasterd`), inspect state, and [`shutdown`](NetServer::shutdown)
/// or [`wait`](NetServer::wait).
pub struct NetServer {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    ingest: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind and start serving `catalog` on `addr` (use port 0 for an
    /// ephemeral port; read it back with
    /// [`local_addr`](NetServer::local_addr)).
    pub fn bind(
        catalog: &Catalog,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> Result<NetServer> {
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::Io(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::Io(format!("local_addr failed: {e}")))?;
        let (ingest_tx, ingest_rx) = std::sync::mpsc::sync_channel(config.queue_depth.max(1));
        let mut server = ViewServer::new(catalog);
        let registry = Arc::clone(server.metrics());
        let metrics = NetMetrics::register_in(&registry, catalog);
        let slow_ring = config.slow_event_us.map(|threshold_us| {
            let mut ring = SlowEventRing::new(threshold_us, DEFAULT_SLOW_RING_CAPACITY);
            if config.slow_event_payloads {
                ring = ring.with_payloads(DEFAULT_SLOW_PAYLOAD_BYTES);
            }
            let ring = Arc::new(ring);
            server.set_slow_event_ring(Arc::clone(&ring));
            ring
        });
        let trace = Arc::clone(server.trace_recorder());
        if let Some(n) = config.trace_sample {
            trace.set_sample_one_in(n);
            trace.set_enabled(true);
        }
        if let Some(n) = config.audit_sample {
            server.auditor().set_sample_one_in(n);
            server.auditor().set_enabled(true);
        }
        let audit = server.auditor().handle();
        let inner = Arc::new(Inner {
            config,
            trace,
            addr,
            phase: Mutex::new(Phase::Registering(Box::new(server))),
            running: AtomicBool::new(false),
            ingest_tx,
            stopping: AtomicBool::new(false),
            registry,
            metrics,
            slow_ring,
            audit,
            last_ready: AtomicBool::new(true),
        });
        let ingest = std::thread::Builder::new()
            .name("dbtoaster-ingest".into())
            .spawn({
                let inner = Arc::clone(&inner);
                move || ingest_loop(inner, ingest_rx)
            })
            .map_err(|e| Error::Io(format!("spawn ingest thread: {e}")))?;
        let accept = match std::thread::Builder::new()
            .name("dbtoaster-accept".into())
            .spawn({
                let inner = Arc::clone(&inner);
                move || accept_loop(inner, listener)
            }) {
            Ok(handle) => handle,
            Err(e) => {
                // Unwind the already-running ingest thread, or it would
                // block on its queue forever (Inner keeps the sender
                // alive).
                let _ = inner.ingest_tx.send(IngestJob::Stop);
                let _ = ingest.join();
                return Err(Error::Io(format!("spawn accept thread: {e}")));
            }
        };
        Ok(NetServer {
            inner,
            accept: Some(accept),
            ingest: Some(ingest),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Register a view from the hosting process (how `dbtoasterd`
    /// applies its `--view` flags). Same freezing rule as wire
    /// registration: only before the first batch.
    pub fn register(&self, name: &str, sql: &str) -> Result<ViewId> {
        self.inner.register(name, sql)
    }

    /// A consistent cut of every view, concurrent with ingestion.
    pub fn snapshot_all(&self) -> Vec<ViewSnapshot> {
        self.inner.snapshot_all()
    }

    /// Server counters (same payload the wire `stats` request serves).
    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }

    /// The metrics registry every layer of this server records into —
    /// hand it to a
    /// [`MetricsHttpServer`](dbtoaster_telemetry::MetricsHttpServer)
    /// to expose a Prometheus endpoint.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.inner.registry)
    }

    /// Turn latency recording on or off. Counters and gauges always
    /// count; this gates only the clock reads behind histograms.
    pub fn set_metrics_enabled(&self, on: bool) {
        self.inner.registry.set_enabled(on);
    }

    /// The slow-event ring's retained entries, oldest first (what the
    /// wire `debug` request serves; empty unless
    /// [`NetConfig::slow_event_us`] is set).
    pub fn slow_events(&self) -> Vec<SlowEvent> {
        self.inner.slow_events()
    }

    /// The event-flow trace recorder shared by every layer of this
    /// server (sampling enabled at bind via
    /// [`NetConfig::trace_sample`]).
    pub fn trace_recorder(&self) -> Arc<TraceRecorder> {
        Arc::clone(&self.inner.trace)
    }

    /// The recorded trace spans, ordered by start time (what the wire
    /// `debug trace` request serves; empty unless tracing is enabled).
    pub fn trace_spans(&self) -> Vec<TraceSpan> {
        self.inner.trace.dump()
    }

    /// A callback that refreshes the registry's store-size gauges from
    /// the live store — pass it to
    /// [`MetricsHttpServer::bind`](dbtoaster_telemetry::MetricsHttpServer::bind)
    /// as the pre-scrape hook so every scrape reflects current map
    /// sizes.
    pub fn store_metrics_refresher(&self) -> Box<dyn Fn() + Send + Sync> {
        let inner = Arc::clone(&self.inner);
        Box::new(move || inner.refresh_store_metrics())
    }

    /// A readiness callback for the `/readyz` endpoint — pass it to
    /// [`MetricsHttpServer::bind_with_planes`]: ready while the ingest
    /// queue and feed lag are below the configured thresholds and the
    /// shadow auditor has found zero mismatches.
    ///
    /// [`MetricsHttpServer::bind_with_planes`]:
    /// dbtoaster_telemetry::MetricsHttpServer::bind_with_planes
    pub fn health_fn(&self) -> HealthFn {
        let inner = Arc::clone(&self.inner);
        Box::new(move || inner.readiness())
    }

    /// The current readiness verdict (what `/readyz` serves).
    pub fn readiness(&self) -> HealthStatus {
        self.inner.readiness()
    }

    /// A read-side handle onto the shadow auditor: counters, the
    /// mismatch ring, and the drain barrier tests use to settle the
    /// audit worker (sampling enabled at bind via
    /// [`NetConfig::audit_sample`]).
    pub fn audit_handle(&self) -> AuditHandle {
        self.inner.audit.clone()
    }

    /// The `debug audit` report (also served over the wire via
    /// [`NetClient::debug_audit`](crate::NetClient::debug_audit)).
    pub fn audit_report(&self) -> AuditReport {
        self.inner.audit_report()
    }

    /// Deliberately corrupt one live map entry of a view — the audit
    /// plane's fault-injection hook, for chaos tests that must prove
    /// the auditor detects real divergence. See
    /// [`ViewServer::corrupt_map_entry`].
    ///
    /// [`ViewServer::corrupt_map_entry`]:
    /// dbtoaster_server::ViewServer::corrupt_map_entry
    pub fn corrupt_map_entry(&self, view: &str, map: &str) -> Result<bool> {
        self.inner.corrupt_map_entry(view, map)
    }

    /// Stop accepting, drain admitted batches, and join the service
    /// threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until the server shuts down (a wire `shutdown` request or
    /// process signal) — the `dbtoasterd` main loop.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.ingest.take() {
            let _ = handle.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.inner.begin_shutdown();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.ingest.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::NetClient;
    use crate::source::FeedWriter;
    use dbtoaster_common::{tuple, ColumnType, Event, Schema};

    fn rs_catalog() -> Catalog {
        Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
    }

    fn spawn_server() -> NetServer {
        NetServer::bind(&rs_catalog(), "127.0.0.1:0", NetConfig::default()).unwrap()
    }

    #[test]
    fn requests_round_trip_against_a_live_server() {
        let server = spawn_server();
        let mut client = NetClient::connect(server.local_addr()).unwrap();

        let a = client.register("totals", "select sum(A) from R").unwrap();
        let b = client
            .register("joined", "select count(*) from R, S where R.B = S.B")
            .unwrap();
        assert_eq!((a.0, b.0), (0, 1));

        // Typed compile errors travel back typed.
        match client.register("broken", "select nothing from NOWHERE") {
            Err(Error::Schema(_)) | Err(Error::Analysis(_)) => {}
            other => panic!("expected a typed failure, got {other:?}"),
        }

        let deliveries = client
            .apply_batch(&[
                Event::insert("R", tuple![2i64, 1i64]),
                Event::insert("S", tuple![1i64, 5i64]),
                Event::insert("R", tuple![3i64, 1i64]),
            ])
            .unwrap();
        assert_eq!(deliveries, 5, "2 R events hit both views, 1 S event one");

        // Registration is frozen after the first batch.
        match client.register("late", "select count(*) from R") {
            Err(Error::Runtime(m)) => assert!(m.contains("frozen"), "{m}"),
            other => panic!("late registration must fail typed: {other:?}"),
        }

        let snap = client.snapshot("totals").unwrap();
        assert_eq!(snap.rows[0].values[0], dbtoaster_common::Value::Int(5));
        assert_eq!(snap.events_processed, 2);
        assert!(client.snapshot("nope").is_err());

        let all = client.snapshot_all().unwrap();
        assert_eq!(
            all,
            server.snapshot_all(),
            "wire snapshot == local snapshot"
        );

        let stats = client.stats().unwrap();
        assert!(stats.running);
        assert_eq!(stats.views.len(), 2);
        assert_eq!(stats.batches, 1);
        assert!(stats.workers >= 1);

        client.shutdown_server().unwrap();
        server.wait();
    }

    #[test]
    fn feed_connections_ack_after_the_last_event_is_applied() {
        let server = spawn_server();
        server.register("totals", "select sum(A) from R").unwrap();
        let events: Vec<Event> = (0..100i64)
            .map(|i| Event::insert("R", tuple![i, i % 3]))
            .collect();

        let mut feeder = FeedWriter::connect(server.local_addr()).unwrap();
        for chunk in events.chunks(9) {
            feeder.send(chunk).unwrap();
        }
        let report = feeder.finish_and_ack().unwrap();
        assert_eq!(report.events, 100);
        assert_eq!(report.deliveries, 100);

        // The ack is the barrier: the snapshot taken after it sees
        // every event.
        let snap = server.snapshot_all();
        assert_eq!(snap[0].events_processed, 100);
        assert_eq!(
            snap[0].rows[0].values[0],
            dbtoaster_common::Value::Int((0..100i64).sum::<i64>())
        );
    }

    #[test]
    fn metrics_plane_serves_histograms_and_slow_events() {
        let config = NetConfig {
            // Threshold 0: every event is a "slow" event, so the ring
            // is deterministically populated.
            slow_event_us: Some(0),
            ..NetConfig::default()
        };
        let server = NetServer::bind(&rs_catalog(), "127.0.0.1:0", config).unwrap();
        server.register("totals", "select sum(A) from R").unwrap();
        server.set_metrics_enabled(true);

        let mut client = NetClient::connect(server.local_addr()).unwrap();
        client
            .apply_batch(&[
                Event::insert("R", tuple![1i64, 0i64]),
                Event::insert("R", tuple![2i64, 1i64]),
                Event::insert("R", tuple![3i64, 2i64]),
            ])
            .unwrap();

        let stats = client.stats().unwrap();
        let find = |name: &str| {
            stats
                .histograms
                .iter()
                .find(|h| h.name == name)
                .unwrap_or_else(|| panic!("stats response lacks {name}"))
        };
        let apply = find("dbt_apply_event_seconds");
        assert_eq!(apply.count, 3, "one sample per event");
        assert!(apply.max >= apply.p50, "quantiles are ordered");
        assert!(find("dbt_apply_batch_seconds").count >= 1);
        assert!(
            find("dbt_ingest_wait_seconds").count >= 1,
            "the ingest queue wait was sampled"
        );

        // The same counters, as Prometheus text.
        let text = server.metrics().render_prometheus();
        assert!(text.contains("dbt_view_events_total{view=\"totals\"} 3"));
        assert!(text.contains("dbt_feed_events_total 0"));
        assert!(text.contains("dbt_apply_event_seconds_count 3"));

        // The ring captured every event; the wire dump matches the
        // in-process view.
        let slow = client.debug_slow_events().unwrap();
        assert_eq!(slow.len(), 3);
        assert_eq!(slow, server.slow_events());
        assert!(slow.iter().all(|e| e.relation == "R" && !e.is_delete));
    }

    #[test]
    fn debug_without_a_slow_ring_returns_an_empty_dump() {
        let server = spawn_server();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.debug_slow_events().unwrap(), Vec::new());
    }

    #[test]
    fn an_empty_feed_is_acknowledged_with_zeros() {
        let server = spawn_server();
        let feeder = FeedWriter::connect(server.local_addr()).unwrap();
        let report = feeder.finish_and_ack().unwrap();
        assert_eq!(report, IngestReport::default());
    }

    #[test]
    fn malformed_frames_get_a_typed_error_and_the_connection_drops() {
        use std::io::{Read, Write};
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // An oversized length prefix.
        stream.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut buf = Vec::new();
        assert!(wire::read_frame(&mut reader, &mut buf).unwrap());
        match wire::decode_response(&buf).unwrap() {
            Response::Error(Error::Wire(m)) => assert!(m.contains("oversized"), "{m}"),
            other => panic!("expected a wire error, got {other:?}"),
        }
        // ... and the server closed the connection afterwards.
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
    }
}
