//! A small blocking client for the request/response plane.
//!
//! One [`NetClient`] wraps one TCP connection; every method sends one
//! request frame and blocks for the matching response frame. Server-side
//! failures come back as the same typed [`Error`] the server computed
//! (a bad query fails with `Error::Analysis`, a late registration with
//! `Error::Runtime`, ...), so remote and embedded use read identically.
//! For streaming ingestion — many batches, one acknowledgement — use
//! [`FeedWriter`](crate::FeedWriter) instead of repeated
//! [`apply_batch`](NetClient::apply_batch) round trips.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use dbtoaster_common::{Error, Event, Result};
use dbtoaster_server::{ViewId, ViewSnapshot};
use dbtoaster_telemetry::{SlowEvent, TraceSpan};

use crate::wire::{self, AuditReport, Response, ServerStats};

/// A blocking connection to a [`NetServer`](crate::NetServer) /
/// `dbtoasterd`.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    buf: Vec<u8>,
}

impl NetClient {
    /// Connect to a server's listen address.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient> {
        let stream =
            TcpStream::connect(addr).map_err(|e| Error::Io(format!("connect failed: {e}")))?;
        // Request/response over multi-segment frames stalls badly under
        // Nagle + delayed ACK; this is a latency-bound protocol.
        let _ = stream.set_nodelay(true);
        let read_half = stream
            .try_clone()
            .map_err(|e| Error::Io(format!("connect failed: {e}")))?;
        Ok(NetClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            buf: Vec::new(),
        })
    }

    /// One request/response round trip. A `Response::Error` unwraps to
    /// the typed error it carries.
    fn call(&mut self, payload: &[u8]) -> Result<Response> {
        wire::write_frame(&mut self.writer, payload)?;
        self.writer
            .flush()
            .map_err(|e| Error::Io(format!("request flush failed: {e}")))?;
        if !wire::read_frame(&mut self.reader, &mut self.buf)? {
            return Err(Error::Io(
                "server closed the connection before replying".into(),
            ));
        }
        match wire::decode_response(&self.buf)? {
            Response::Error(e) => Err(e),
            resp => Ok(resp),
        }
    }

    /// Register a standing query on the server. Only valid before the
    /// server's first batch (the portfolio freezes at promotion).
    pub fn register(&mut self, name: &str, sql: &str) -> Result<ViewId> {
        match self.call(&wire::encode_register(name, sql))? {
            Response::Registered { view } => Ok(ViewId(view as usize)),
            other => Err(unexpected("register", &other)),
        }
    }

    /// Apply one batch of events; returns the delivery count, exactly
    /// as the in-process [`ViewServer::apply_batch`] would.
    ///
    /// [`ViewServer::apply_batch`]: dbtoaster_server::ViewServer::apply_batch
    pub fn apply_batch(&mut self, events: &[Event]) -> Result<usize> {
        match self.call(&wire::encode_apply_batch(events))? {
            Response::Applied { deliveries } => Ok(deliveries as usize),
            other => Err(unexpected("apply_batch", &other)),
        }
    }

    /// Fetch one view's snapshot by name.
    pub fn snapshot(&mut self, name: &str) -> Result<ViewSnapshot> {
        match self.call(&wire::encode_snapshot(name))? {
            Response::Snapshot(s) => Ok(s),
            other => Err(unexpected("snapshot", &other)),
        }
    }

    /// Fetch a consistent cut of every view.
    pub fn snapshot_all(&mut self) -> Result<Vec<ViewSnapshot>> {
        match self.call(&wire::encode_snapshot_all())? {
            Response::Snapshots(all) => Ok(all),
            other => Err(unexpected("snapshot_all", &other)),
        }
    }

    /// Fetch server/dispatcher counters.
    pub fn stats(&mut self) -> Result<ServerStats> {
        match self.call(&wire::encode_stats())? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Dump the server's slow-event ring, oldest first (empty unless
    /// the server runs with a slow-event threshold).
    pub fn debug_slow_events(&mut self) -> Result<Vec<SlowEvent>> {
        match self.call(&wire::encode_debug())? {
            Response::SlowEvents(events) => Ok(events),
            other => Err(unexpected("debug", &other)),
        }
    }

    /// Dump the server's event-flow trace ring, ordered by start time
    /// (empty unless the server runs with trace sampling enabled).
    pub fn debug_trace(&mut self) -> Result<Vec<TraceSpan>> {
        match self.call(&wire::encode_debug_trace())? {
            Response::TraceSpans(spans) => Ok(spans),
            other => Err(unexpected("debug trace", &other)),
        }
    }

    /// Fetch the server's shadow-audit report: sampling configuration,
    /// check/mismatch counters, and the retained mismatch records (all
    /// zeros unless the server runs with audit sampling enabled).
    pub fn debug_audit(&mut self) -> Result<AuditReport> {
        match self.call(&wire::encode_debug_audit())? {
            Response::AuditReport(report) => Ok(report),
            other => Err(unexpected("debug audit", &other)),
        }
    }

    /// Ask the server to shut down (drains already-admitted batches
    /// first).
    pub fn shutdown_server(&mut self) -> Result<()> {
        match self.call(&wire::encode_shutdown())? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }
}

fn unexpected(what: &str, resp: &Response) -> Error {
    Error::Wire(format!("unexpected response to {what}: {resp:?}"))
}
