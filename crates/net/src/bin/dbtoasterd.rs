//! `dbtoasterd` — the standalone view server daemon.
//!
//! The paper's "network interface" operating mode as a process: declare
//! the streamed relations, optionally pre-register standing queries,
//! and serve the wire protocol until a client sends `shutdown` (or the
//! process is killed).
//!
//! ```text
//! dbtoasterd --listen 127.0.0.1:9090 \
//!     --schema "BIDS(T FLOAT, ID INT, BROKER_ID INT, VOLUME FLOAT, PRICE FLOAT)" \
//!     --schema "ASKS(T FLOAT, ID INT, BROKER_ID INT, VOLUME FLOAT, PRICE FLOAT)" \
//!     --view "vwap=select sum(PRICE * VOLUME), sum(VOLUME) from BIDS" \
//!     --workers 4 --queue-depth 64
//! ```
//!
//! Flags:
//!
//! * `--listen ADDR` — bind address (default `127.0.0.1:9090`; port 0
//!   picks an ephemeral port, printed at startup).
//! * `--schema "NAME(COL TYPE, ...)"` — declare a stream relation
//!   (repeatable; at least one required).
//! * `--view "NAME=SQL"` — register a standing query at startup
//!   (repeatable; clients can also `register` over the wire until the
//!   first batch arrives).
//! * `--workers N` — dispatcher worker-pool size (default: autotuned
//!   from available parallelism and the portfolio's partitions).
//! * `--queue-depth N` — bound of the ingest queue, in batches
//!   (default 64).
//! * `--feed-batch N` — max events per batch pulled from a feed
//!   connection (default 1024).
//! * `--metrics-listen ADDR` — serve Prometheus text metrics over HTTP
//!   on `ADDR` (e.g. `127.0.0.1:9898`; port 0 picks an ephemeral port,
//!   printed at startup). Also enables latency recording, and serves
//!   the `/healthz` (liveness) and `/readyz` (readiness) endpoints.
//! * `--slow-event-us N` — capture events whose apply latency is at
//!   least `N` microseconds in a bounded ring, dumpable with the wire
//!   `debug` request.
//! * `--slow-event-payloads` — also capture a bounded rendering of each
//!   slow event's tuple in the ring (off by default; payloads can carry
//!   data).
//! * `--trace-sample N` — record event-flow trace spans (queue wait,
//!   dispatch, group lock, stage, statement) for one in every `N`
//!   admitted events. Dump with the wire `debug trace` request or, when
//!   `--metrics-listen` is set, as Chrome `trace_event` JSON from
//!   `GET /trace` (open in `chrome://tracing` or Perfetto).
//! * `--audit-sample N` — shadow-audit one in every `N` events:
//!   re-run it through the interpreter oracle off-thread and verify the
//!   maintained view bit-exactly. Mismatches count into
//!   `dbt_audit_mismatch_total`, are dumpable with the wire
//!   `debug audit` request, and fail readiness.
//! * `--ready-max-lag N` — `/readyz` reports not-ready while any
//!   relation's feed lag (admitted − applied events) exceeds `N`
//!   (default 100000).
//! * `--ready-max-queue N` — `/readyz` reports not-ready while the
//!   ingest queue holds more than `N` batches (default 64).
//! * `--log-level LEVEL` — stderr log verbosity: `error`, `warn`,
//!   `info` (default), or `debug`. Lines are logfmt-structured and
//!   rate-bounded.

use std::process::ExitCode;

use dbtoaster_common::Catalog;
use dbtoaster_net::{parse_schema_spec, NetConfig, NetServer};
use dbtoaster_telemetry::{
    chrome_trace_json, log_info, set_log_level, LogLevel, MetricsHttpServer, TraceFn,
};

fn usage() -> &'static str {
    "usage: dbtoasterd [--listen ADDR] --schema \"NAME(COL TYPE, ...)\" \
     [--schema ...] [--view \"NAME=SQL\" ...] [--workers N] \
     [--queue-depth N] [--feed-batch N] [--metrics-listen ADDR] \
     [--slow-event-us N] [--slow-event-payloads] [--trace-sample N] \
     [--audit-sample N] [--ready-max-lag N] [--ready-max-queue N] \
     [--log-level error|warn|info|debug]"
}

struct Flags {
    listen: String,
    metrics_listen: Option<String>,
    schemas: Vec<String>,
    views: Vec<(String, String)>,
    config: NetConfig,
}

fn parse_flags(args: impl Iterator<Item = String>) -> Result<Flags, String> {
    let mut flags = Flags {
        listen: "127.0.0.1:9090".to_string(),
        metrics_listen: None,
        schemas: Vec::new(),
        views: Vec::new(),
        config: NetConfig::default(),
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} expects {what}\n{}", usage()))
        };
        match flag.as_str() {
            "--listen" => flags.listen = value("an address")?,
            "--schema" => flags.schemas.push(value("a relation spec")?),
            "--view" => {
                let spec = value("NAME=SQL")?;
                let (name, sql) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--view expects NAME=SQL, got '{spec}'"))?;
                flags
                    .views
                    .push((name.trim().to_string(), sql.trim().to_string()));
            }
            "--workers" => {
                let n: usize = value("a number")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                flags.config.workers = Some(n);
            }
            "--queue-depth" => {
                flags.config.queue_depth = value("a number")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--feed-batch" => {
                flags.config.feed_batch_size = value("a number")?
                    .parse()
                    .map_err(|e| format!("--feed-batch: {e}"))?;
            }
            "--metrics-listen" => flags.metrics_listen = Some(value("an address")?),
            "--slow-event-us" => {
                flags.config.slow_event_us = Some(
                    value("a number")?
                        .parse()
                        .map_err(|e| format!("--slow-event-us: {e}"))?,
                );
            }
            "--slow-event-payloads" => flags.config.slow_event_payloads = true,
            "--trace-sample" => {
                let n: u64 = value("a number")?
                    .parse()
                    .map_err(|e| format!("--trace-sample: {e}"))?;
                if n == 0 {
                    return Err("--trace-sample expects a positive number".to_string());
                }
                flags.config.trace_sample = Some(n);
            }
            "--audit-sample" => {
                let n: u64 = value("a number")?
                    .parse()
                    .map_err(|e| format!("--audit-sample: {e}"))?;
                if n == 0 {
                    return Err("--audit-sample expects a positive number".to_string());
                }
                flags.config.audit_sample = Some(n);
            }
            "--ready-max-lag" => {
                flags.config.ready_max_lag = value("a number")?
                    .parse()
                    .map_err(|e| format!("--ready-max-lag: {e}"))?;
            }
            "--ready-max-queue" => {
                flags.config.ready_max_queue = value("a number")?
                    .parse()
                    .map_err(|e| format!("--ready-max-queue: {e}"))?;
            }
            "--log-level" => {
                let spec = value("error|warn|info|debug")?;
                let level = LogLevel::parse(&spec)
                    .ok_or_else(|| format!("--log-level: unknown level '{spec}'"))?;
                set_log_level(level);
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    if flags.schemas.is_empty() {
        return Err(format!("at least one --schema is required\n{}", usage()));
    }
    Ok(flags)
}

fn run() -> Result<(), String> {
    let flags = parse_flags(std::env::args().skip(1))?;
    let mut catalog = Catalog::new();
    for spec in &flags.schemas {
        catalog.add(parse_schema_spec(spec).map_err(|e| e.to_string())?);
    }
    let server = NetServer::bind(&catalog, flags.listen.as_str(), flags.config.clone())
        .map_err(|e| e.to_string())?;
    for (name, sql) in &flags.views {
        server.register(name, sql).map_err(|e| e.to_string())?;
        log_info("dbtoasterd", "registered view", &[("view", name.as_str())]);
    }
    // Kept alive until after wait(): dropping the handle stops the
    // metrics endpoint.
    let _metrics_http = match &flags.metrics_listen {
        Some(addr) => {
            server.set_metrics_enabled(true);
            // /trace is only a route when tracing is on — rendering an
            // always-empty trace would just mask a missing flag.
            let trace_fn: Option<TraceFn> = flags.config.trace_sample.map(|_| {
                let trace = server.trace_recorder();
                Box::new(move || chrome_trace_json(&trace.dump())) as TraceFn
            });
            let traced = trace_fn.is_some();
            let http = MetricsHttpServer::bind_with_planes(
                addr,
                server.metrics(),
                Some(server.store_metrics_refresher()),
                trace_fn,
                Some(server.health_fn()),
            )
            .map_err(|e| format!("--metrics-listen {addr}: {e}"))?;
            log_info(
                "dbtoasterd",
                "serving metrics",
                &[
                    ("endpoint", &format!("http://{}/metrics", http.addr())),
                    ("trace", if traced { "on" } else { "off" }),
                    ("health", "/healthz + /readyz"),
                ],
            );
            Some(http)
        }
        None => None,
    };
    log_info(
        "dbtoasterd",
        "serving",
        &[
            ("addr", &server.local_addr().to_string()),
            ("relations", &catalog.relations().len().to_string()),
            ("views", &flags.views.len().to_string()),
            ("queue_depth", &flags.config.queue_depth.to_string()),
            (
                "workers",
                &flags
                    .config
                    .workers
                    .map(|w| w.to_string())
                    .unwrap_or_else(|| "auto".to_string()),
            ),
            (
                "audit",
                &flags
                    .config
                    .audit_sample
                    .map(|n| format!("1/{n}"))
                    .unwrap_or_else(|| "off".to_string()),
            ),
        ],
    );
    server.wait();
    log_info("dbtoasterd", "shut down", &[]);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            // Flag/usage feedback stays plain multi-line text — it is
            // CLI output for a human, not runtime logging.
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
