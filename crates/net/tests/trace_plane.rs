//! Loopback trace-plane integration: a `dbtoasterd`-shaped server run
//! with `trace_sample: 1` must produce spans from every layer of the
//! event flow — queue wait, dispatch, group lock, stage, statement —
//! correlated by admission sequence, and the Chrome `trace_event`
//! rendering of that ring must be valid JSON carrying the same spans.
//!
//! JSON validity is checked with a small recursive-descent parser in
//! this file (the workspace is dependency-free — no serde), which is
//! exactly what "opens in chrome://tracing" requires syntactically.

use std::collections::BTreeSet;

use dbtoaster_common::{tuple, Catalog, ColumnType, Event, Schema};
use dbtoaster_net::{NetClient, NetConfig, NetServer};
use dbtoaster_telemetry::{
    chrome_trace_json, LAYER_DISPATCH, LAYER_LOCK, LAYER_QUEUE, LAYER_STAGE, LAYER_STATEMENT,
};

/// A minimal JSON document model: just enough to prove the trace export
/// is well-formed and to read the fields Chrome's trace viewer needs.
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at {}", p.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through whole.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }
}

fn r_catalog() -> Catalog {
    Catalog::new().with(Schema::new(
        "R",
        vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
    ))
}

#[test]
fn a_sampled_run_traces_every_layer_for_the_same_event() {
    let config = NetConfig {
        trace_sample: Some(1),
        slow_event_us: Some(0),
        slow_event_payloads: true,
        ..NetConfig::default()
    };
    let server = NetServer::bind(&r_catalog(), "127.0.0.1:0", config).unwrap();
    server.register("totals", "select sum(A) from R").unwrap();
    // Metrics gate the statement self-profile; statement *spans* ride
    // the sampling gate alone, but the watermark/lag assertions below
    // want the full plane on.
    server.set_metrics_enabled(true);

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client
        .apply_batch(&[
            Event::insert("R", tuple![2i64, 1i64]),
            Event::insert("R", tuple![3i64, 1i64]),
            Event::insert("R", tuple![5i64, 2i64]),
        ])
        .unwrap();

    // The wire dump and the in-process dump are the same ring.
    let spans = client.debug_trace().unwrap();
    assert_eq!(spans, server.trace_spans());
    assert!(!spans.is_empty(), "sample 1 must record spans");

    // The first admitted event (seq 0) flows through every layer; each
    // layer's span carries that seq.
    let seqs_of = |layer: &str| -> BTreeSet<u64> {
        spans
            .iter()
            .filter(|s| s.layer == layer)
            .map(|s| s.seq)
            .collect()
    };
    for layer in [LAYER_QUEUE, LAYER_DISPATCH, LAYER_STAGE, LAYER_STATEMENT] {
        assert!(
            seqs_of(layer).contains(&0),
            "layer {layer} has no span for seq 0; got {spans:?}"
        );
    }
    // The group-lock span is recorded once per locked section and
    // attributed to the first sampled seq it covers.
    assert!(
        !seqs_of(LAYER_LOCK).is_empty(),
        "no lock-acquisition span; got {spans:?}"
    );
    // Sample 1 × 3 events: every event's stage work is visible.
    assert_eq!(seqs_of(LAYER_STAGE), BTreeSet::from([0, 1, 2]));

    // The Chrome trace_event export is valid JSON with one complete
    // ("ph":"X") event per span, carrying the seq for correlation.
    let text = chrome_trace_json(&spans);
    let doc = Parser::parse(&text).expect("trace export must parse as JSON");
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("expected a traceEvents array, got {other:?}"),
    };
    assert_eq!(events.len(), spans.len());
    let mut exported = BTreeSet::new();
    for e in events {
        assert_eq!(e.get("cat").unwrap().as_str(), "dbtoaster");
        assert_eq!(e.get("ph").unwrap().as_str(), "X");
        assert!(e.get("ts").unwrap().as_num() >= 0.0);
        assert!(e.get("dur").unwrap().as_num() >= 0.0);
        assert_eq!(e.get("pid").unwrap().as_num(), 1.0);
        let args = e.get("args").unwrap();
        args.get("detail").unwrap().as_str();
        exported.insert((
            e.get("name").unwrap().as_str().to_string(),
            args.get("seq").unwrap().as_num() as u64,
        ));
    }
    let recorded: BTreeSet<(String, u64)> =
        spans.iter().map(|s| (s.layer.clone(), s.seq)).collect();
    assert_eq!(
        exported, recorded,
        "export carries exactly the ring's spans"
    );

    // Slow-event payload capture was on: the ring rendered each tuple.
    let slow = client.debug_slow_events().unwrap();
    assert_eq!(slow.len(), 3, "threshold 0 captures every event");
    assert!(
        slow.iter().any(|e| e.payload.contains("(2, 1)")),
        "payloads must render the tuple; got {slow:?}"
    );

    // Freshness plane: after the pre-scrape refresh, the view watermark
    // sits at the last admitted seq and the feed lag is drained to 0.
    (server.store_metrics_refresher())();
    let text = server.metrics().render_prometheus();
    assert!(
        text.contains("dbt_view_watermark_seq{view=\"totals\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("dbt_feed_admitted_events_total{relation=\"R\"} 3"),
        "{text}"
    );
    assert!(
        text.contains("dbt_feed_lag_events{relation=\"R\"} 0"),
        "{text}"
    );
    // The statement self-profile surfaced as bounded (view, stage)
    // series.
    assert!(
        text.contains("dbt_stmt_runs_total{view=\"totals\",stage=\"0\"}"),
        "{text}"
    );

    client.shutdown_server().unwrap();
    server.wait();
}

#[test]
fn tracing_off_records_nothing_and_serves_empty_dumps() {
    let server = NetServer::bind(&r_catalog(), "127.0.0.1:0", NetConfig::default()).unwrap();
    server.register("totals", "select sum(A) from R").unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client
        .apply_batch(&[Event::insert("R", tuple![1i64, 1i64])])
        .unwrap();
    assert_eq!(client.debug_trace().unwrap(), Vec::new());
    assert_eq!(
        chrome_trace_json(&server.trace_spans()),
        "{\"traceEvents\":[]}"
    );
}
