//! Loopback audit-plane integration: a `dbtoasterd`-shaped server run
//! with `audit_sample: 1` must (a) audit a clean ingest run with zero
//! mismatches and report ready, and (b) detect deliberately injected
//! map corruption — the mismatch must show up in the counters, in the
//! `debug audit` wire report, in the Prometheus text, and flip
//! `GET /readyz` to 503 while `GET /healthz` stays 200.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};

use dbtoaster_common::{tuple, Catalog, ColumnType, Event, Schema};
use dbtoaster_net::{NetClient, NetConfig, NetServer};
use dbtoaster_server::{CHECK_CHAIN, CHECK_REPLAY};
use dbtoaster_telemetry::MetricsHttpServer;

fn r_catalog() -> Catalog {
    Catalog::new().with(Schema::new(
        "R",
        vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
    ))
}

/// One blocking HTTP GET; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

#[test]
fn a_clean_run_is_ready_and_injected_corruption_fails_readiness() {
    let config = NetConfig {
        audit_sample: Some(1),
        ..NetConfig::default()
    };
    let server = NetServer::bind(&r_catalog(), "127.0.0.1:0", config).unwrap();
    server.register("totals", "select sum(A) from R").unwrap();
    server.set_metrics_enabled(true);
    let http = MetricsHttpServer::bind_with_planes(
        "127.0.0.1:0",
        server.metrics(),
        Some(server.store_metrics_refresher()),
        None,
        Some(server.health_fn()),
    )
    .unwrap();

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for chunk in 0..4i64 {
        let batch: Vec<Event> = (0..32i64)
            .map(|i| Event::insert("R", tuple![i + 1, chunk]))
            .collect();
        client.apply_batch(&batch).unwrap();
    }

    // Clean phase: every event audited, zero mismatches, ready.
    let audit = server.audit_handle();
    audit.drain();
    assert!(audit.is_enabled());
    assert!(audit.checks_total() >= 128, "{}", audit.checks_total());
    assert_eq!(audit.mismatch_total(), 0);
    assert_eq!(audit.dropped_total(), 0);

    let report = client.debug_audit().unwrap();
    assert!(report.enabled);
    assert_eq!(report.sample_one_in, 1);
    assert!(report.checks >= 128);
    assert_eq!(report.mismatches, 0);
    assert!(report.entries.is_empty());

    let ready = server.readiness();
    assert!(ready.ready, "{}", ready.detail);
    let (status, body) = http_get(http.addr(), "/readyz");
    assert!(status.contains("200"), "{status}: {body}");
    assert!(body.contains("ingest healthy"), "{body}");

    // Fault injection: flip one live entry of the view's map, then
    // deliver one more event. The audit chain check compares the next
    // pre-event snapshot against the oracle's retained post-state and
    // must report the divergence.
    assert!(server.corrupt_map_entry("totals", "").unwrap());
    client
        .apply_batch(&[Event::insert("R", tuple![7i64, 9i64])])
        .unwrap();
    audit.drain();
    assert!(audit.mismatch_total() >= 1);

    let report = client.debug_audit().unwrap();
    assert!(report.mismatches >= 1);
    assert!(!report.entries.is_empty());
    let entry = &report.entries[0];
    assert_eq!(entry.view, "totals");
    assert!(
        entry.kind == CHECK_CHAIN || entry.kind == CHECK_REPLAY,
        "{}",
        entry.kind
    );
    assert!(!entry.expected.is_empty() || !entry.actual.is_empty());

    (server.store_metrics_refresher())();
    let text = server.metrics().render_prometheus();
    assert!(
        text.contains("dbt_audit_mismatch_total{view=\"totals\"}"),
        "{text}"
    );

    let ready = server.readiness();
    assert!(!ready.ready);
    assert!(ready.detail.contains("audit mismatch"), "{}", ready.detail);
    let (status, body) = http_get(http.addr(), "/readyz");
    assert!(status.contains("503"), "{status}: {body}");
    assert!(body.contains("audit mismatch"), "{body}");
    // Liveness is about the process, not the data: still 200.
    let (status, _) = http_get(http.addr(), "/healthz");
    assert!(status.contains("200"), "{status}");

    client.shutdown_server().unwrap();
    server.wait();
}

#[test]
fn audit_off_reports_disabled_and_stays_ready() {
    let server = NetServer::bind(&r_catalog(), "127.0.0.1:0", NetConfig::default()).unwrap();
    server.register("totals", "select sum(A) from R").unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client
        .apply_batch(&[Event::insert("R", tuple![1i64, 1i64])])
        .unwrap();

    let report = client.debug_audit().unwrap();
    assert!(!report.enabled);
    assert_eq!(report.checks, 0);
    assert_eq!(report.mismatches, 0);
    assert!(report.entries.is_empty());

    let ready = server.readiness();
    assert!(ready.ready, "{}", ready.detail);

    client.shutdown_server().unwrap();
    server.wait();
}
