//! Naive re-evaluation: the conventional-DBMS strategy.
//!
//! The engine stores base relations as multisets and, whenever the result
//! is requested after a delta, re-runs the full query through the
//! reference interpreter. The per-event cost therefore grows with the
//! size of the database (and with the number of joins), which is the
//! behaviour the paper attributes to PostgreSQL / HSQLDB / DBMS 'A' on
//! standing-query workloads. Re-evaluation is performed eagerly on every
//! event so that throughput measurements reflect the cost of keeping the
//! standing query continuously fresh.

use dbtoaster_calculus::{translate_query, QueryCalc};
use dbtoaster_common::{Catalog, Event, Result, Tuple, Value};
use dbtoaster_exec::{evaluate_query, Database};
use dbtoaster_sql::{analyze, parse_query};

use crate::StandingQueryEngine;

/// Full re-evaluation on every delta.
pub struct NaiveReevalEngine {
    query: QueryCalc,
    db: Database,
    current: Vec<(Tuple, Vec<Value>)>,
}

impl NaiveReevalEngine {
    pub fn new(sql: &str, catalog: &Catalog) -> Result<NaiveReevalEngine> {
        let bound = analyze(&parse_query(sql)?, catalog)?;
        let query = translate_query(&bound, "Q")?;
        Ok(NaiveReevalEngine {
            query,
            db: Database::new(),
            current: Vec::new(),
        })
    }
}

impl StandingQueryEngine for NaiveReevalEngine {
    fn name(&self) -> &'static str {
        "naive-reeval"
    }

    fn on_event(&mut self, event: &Event) -> Result<()> {
        self.db.apply(event);
        // Recompute the standing result from scratch.
        self.current = evaluate_query(&self.query, &self.db)?;
        self.current.sort();
        Ok(())
    }

    fn result(&self) -> Vec<(Tuple, Vec<Value>)> {
        self.current.clone()
    }

    fn memory_bytes(&self) -> usize {
        self.db.approx_bytes()
            + self
                .current
                .iter()
                .map(|(k, vs)| k.approx_bytes() + vs.iter().map(Value::approx_bytes).sum::<usize>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{tuple, ColumnType, Schema};

    #[test]
    fn recomputes_after_every_event() {
        let cat = Catalog::new().with(Schema::new(
            "R",
            vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
        ));
        let mut e = NaiveReevalEngine::new("select sum(A) from R", &cat).unwrap();
        e.on_event(&Event::insert("R", tuple![3i64, 1i64])).unwrap();
        assert_eq!(e.scalar_result(), Value::Int(3));
        e.on_event(&Event::insert("R", tuple![4i64, 1i64])).unwrap();
        assert_eq!(e.scalar_result(), Value::Int(7));
        e.on_event(&Event::delete("R", tuple![3i64, 1i64])).unwrap();
        assert_eq!(e.scalar_result(), Value::Int(4));
    }
}
