//! A stream-processor-style operator chain.
//!
//! Stand-in for the Stanford STREAM engine and the commercial stream
//! processor of the bakeoff: the query is turned into a chain of join
//! operators, each holding a hash-indexed synopsis of one input relation,
//! plus a final group-by aggregation operator. Deltas are propagated
//! tuple at a time through the chain with dynamic dispatch and
//! per-partner probing — incremental (unlike naive re-evaluation) but
//! interpreted, with per-operator overheads and work proportional to the
//! number of matching partners, which is exactly the overhead class the
//! paper contrasts with its compiled handlers.
//!
//! The supported fragment is select-project-join-aggregate with
//! equality and inequality predicates (no nested aggregates) — the
//! fragment used by the bakeoff workloads.

use dbtoaster_calculus::{translate_query, CalcExpr, CmpOp, QueryCalc, ValExpr, Var};
use dbtoaster_common::{Catalog, Error, Event, FxHashMap, Result, Tuple, Value};
use dbtoaster_exec::assemble_from_maps;
use dbtoaster_sql::{analyze, parse_query};

use crate::StandingQueryEngine;

/// One relation's synopsis: its tuples (with multiplicities) plus hash
/// indexes on each of its join variables.
#[derive(Default)]
struct Synopsis {
    vars: Vec<Var>,
    tuples: FxHashMap<Tuple, i64>,
    /// var -> (value -> tuples with that value)
    indexes: FxHashMap<Var, FxHashMap<Value, Vec<Tuple>>>,
}

impl Synopsis {
    fn apply(&mut self, tuple: &Tuple, sign: i64) {
        let entry = self.tuples.entry(tuple.clone()).or_insert(0);
        let before = *entry;
        *entry += sign;
        let after = *entry;
        if after == 0 {
            self.tuples.remove(tuple);
        }
        // The index buckets hold one entry per *distinct* tuple
        // (multiplicities live in `tuples`), so only the 0 -> non-zero and
        // non-zero -> 0 transitions touch them.
        let newly_present = before == 0 && after != 0;
        let newly_absent = before != 0 && after == 0;
        if !newly_present && !newly_absent {
            return;
        }
        for (var, index) in self.indexes.iter_mut() {
            let pos = self
                .vars
                .iter()
                .position(|v| v == var)
                .expect("indexed var");
            let bucket = index.entry(tuple[pos].clone()).or_default();
            if newly_present {
                bucket.push(tuple.clone());
            } else {
                if let Some(i) = bucket.iter().position(|t| t == tuple) {
                    bucket.remove(i);
                }
                if bucket.is_empty() {
                    index.remove(&tuple[pos]);
                }
            }
        }
    }

    fn bytes(&self) -> usize {
        let base: usize = self.tuples.keys().map(|t| t.approx_bytes() + 8).sum();
        let idx: usize = self
            .indexes
            .values()
            .flat_map(|i| i.values())
            .map(|v| v.len() * std::mem::size_of::<Tuple>())
            .sum();
        base + idx
    }
}

struct AggSpec {
    map: String,
    keys: Vec<Var>,
    /// Non-relational factors of this map's body (value expressions and
    /// composite 0/1-valued predicate expressions such as OR), evaluated
    /// per result binding.
    calc_factors: Vec<CalcExpr>,
}

/// Delta-propagating operator chain with per-operator synopses.
pub struct StreamEngine {
    query: QueryCalc,
    /// One synopsis per relation instance, in FROM order.
    synopses: Vec<(String, Synopsis)>,
    predicates: Vec<(CmpOp, ValExpr, ValExpr)>,
    /// Pairs of variables related by equality predicates, used to probe a
    /// partner's hash index from an attribute bound under a different
    /// variable name (`R_B = S_B`).
    eq_pairs: Vec<(Var, Var)>,
    aggs: Vec<AggSpec>,
    maps: FxHashMap<String, FxHashMap<Tuple, Value>>,
}

impl StreamEngine {
    pub fn new(sql: &str, catalog: &Catalog) -> Result<StreamEngine> {
        let bound = analyze(&parse_query(sql)?, catalog)?;
        let query = translate_query(&bound, "Q")?;

        // All maps share the same join graph and predicates; only the
        // aggregated value differs.
        let first = query
            .maps
            .first()
            .ok_or_else(|| Error::Unsupported("query computes no aggregates".into()))?;
        let body = match &first.definition {
            CalcExpr::AggSum { body, .. } => (**body).clone(),
            other => other.clone(),
        };
        let factors = match body {
            CalcExpr::Prod(fs) => fs,
            other => vec![other],
        };
        let mut predicates = Vec::new();
        for f in &factors {
            match f {
                CalcExpr::Rel { .. } | CalcExpr::Val(_) => {}
                CalcExpr::Cmp { op, left, right } => {
                    predicates.push((*op, left.clone(), right.clone()))
                }
                other
                    if !other.has_relations()
                        && other.map_refs().is_empty()
                        && !matches!(other, CalcExpr::Lift { .. } | CalcExpr::Exists(_)) =>
                {
                    // Composite scalar predicates (e.g. OR via
                    // inclusion-exclusion) are evaluated per binding as
                    // part of each aggregate's calc factors.
                }
                other => {
                    return Err(Error::Unsupported(format!(
                        "the stream operator chain supports select-project-join-aggregate \
                         queries only, found {other}"
                    )))
                }
            }
        }

        let mut synopses = Vec::new();
        for (name, vars, _) in &query.relations {
            let mut syn = Synopsis {
                vars: vars.clone(),
                ..Default::default()
            };
            // Index every variable that participates in an equality with
            // another relation (the join attributes).
            for (op, l, r) in &predicates {
                if *op != CmpOp::Eq {
                    continue;
                }
                for side in [l, r] {
                    if let ValExpr::Var(v) = side {
                        if vars.contains(v) {
                            syn.indexes.entry(v.clone()).or_default();
                        }
                    }
                }
            }
            synopses.push((name.clone(), syn));
        }

        let mut aggs = Vec::new();
        let mut maps = FxHashMap::default();
        for spec in &query.maps {
            let body = match &spec.definition {
                CalcExpr::AggSum { body, .. } => (**body).clone(),
                other => other.clone(),
            };
            let factors = match body {
                CalcExpr::Prod(fs) => fs,
                other => vec![other],
            };
            let calc_factors = factors
                .iter()
                .filter(|f| !matches!(f, CalcExpr::Rel { .. } | CalcExpr::Cmp { .. }))
                .cloned()
                .collect();
            aggs.push(AggSpec {
                map: spec.name.clone(),
                keys: spec.keys.clone(),
                calc_factors,
            });
            maps.insert(spec.name.clone(), FxHashMap::default());
        }

        let eq_pairs = predicates
            .iter()
            .filter_map(|(op, l, r)| match (op, l, r) {
                (CmpOp::Eq, ValExpr::Var(a), ValExpr::Var(b)) => Some((a.clone(), b.clone())),
                _ => None,
            })
            .collect();

        Ok(StreamEngine {
            query,
            synopses,
            predicates,
            eq_pairs,
            aggs,
            maps,
        })
    }

    /// Propagate a delta binding through the remaining operators.
    fn propagate(&mut self, event_index: usize, env: FxHashMap<Var, Value>, sign: i64) {
        // Depth-first join of the delta tuple against every other synopsis,
        // probing hash indexes on already-bound join attributes.
        let mut order: Vec<usize> = (0..self.synopses.len())
            .filter(|i| *i != event_index)
            .collect();
        // Keep FROM order (a left-deep chain).
        order.sort_unstable();
        let mut results: Vec<(FxHashMap<Var, Value>, i64)> = Vec::new();
        self.join_level(&order, 0, env, sign, &mut results);
        for (env, mult) in results {
            if !self.predicates.iter().all(|(op, l, r)| {
                match (eval_val(l, &env), eval_val(r, &env)) {
                    (Some(lv), Some(rv)) => op.eval(&lv, &rv),
                    _ => false,
                }
            }) {
                continue;
            }
            for agg in &self.aggs {
                let key: Tuple = agg
                    .keys
                    .iter()
                    .map(|k| env.get(k).cloned().unwrap_or(Value::Null))
                    .collect();
                let mut value = Value::Int(mult);
                for f in &agg.calc_factors {
                    if let Some(v) = eval_calc(f, &env) {
                        value = value.mul(&v);
                    }
                    if value.is_zero() {
                        break;
                    }
                }
                let map = self.maps.get_mut(&agg.map).expect("registered");
                let slot = map.entry(key.clone()).or_insert(Value::ZERO);
                *slot = slot.add(&value);
                if slot.is_zero() {
                    map.remove(&key);
                }
            }
        }
    }

    fn join_level(
        &self,
        order: &[usize],
        level: usize,
        env: FxHashMap<Var, Value>,
        mult: i64,
        out: &mut Vec<(FxHashMap<Var, Value>, i64)>,
    ) {
        if level == order.len() {
            out.push((env, mult));
            return;
        }
        let (_, syn) = &self.synopses[order[level]];
        // Probe an index on a bound join attribute when possible: either
        // the attribute itself is bound, or an equality predicate links it
        // to a bound attribute of an earlier relation.
        let probe = syn.indexes.iter().find_map(|(var, index)| {
            if let Some(v) = env.get(var) {
                return Some((index, v.clone()));
            }
            for (a, b) in &self.eq_pairs {
                if a == var {
                    if let Some(v) = env.get(b) {
                        return Some((index, v.clone()));
                    }
                }
                if b == var {
                    if let Some(v) = env.get(a) {
                        return Some((index, v.clone()));
                    }
                }
            }
            None
        });
        let candidates: Vec<(Tuple, i64)> = if let Some((index, value)) = probe {
            match index.get(&value) {
                Some(tuples) => tuples
                    .iter()
                    .filter_map(|t| syn.tuples.get(t).map(|m| (t.clone(), *m)))
                    .collect(),
                None => Vec::new(),
            }
        } else {
            syn.tuples.iter().map(|(t, m)| (t.clone(), *m)).collect()
        };
        'cand: for (tuple, m) in candidates {
            let mut env2 = env.clone();
            for (var, value) in syn.vars.iter().zip(tuple.iter()) {
                match env2.get(var) {
                    Some(existing) if existing != value => continue 'cand,
                    Some(_) => {}
                    None => {
                        env2.insert(var.clone(), value.clone());
                    }
                }
            }
            self.join_level(order, level + 1, env2, mult * m, out);
        }
    }
}

/// Evaluate a relation-free calculus factor (values, comparisons and
/// their sums/products, e.g. OR predicates) against a binding.
fn eval_calc(e: &CalcExpr, env: &FxHashMap<Var, Value>) -> Option<Value> {
    Some(match e {
        CalcExpr::Val(v) => eval_val(v, env)?,
        CalcExpr::Cmp { op, left, right } => {
            Value::Int(op.eval(&eval_val(left, env)?, &eval_val(right, env)?) as i64)
        }
        CalcExpr::Prod(fs) => {
            let mut acc = Value::ONE;
            for f in fs {
                acc = acc.mul(&eval_calc(f, env)?);
            }
            acc
        }
        CalcExpr::Sum(ts) => {
            let mut acc = Value::ZERO;
            for t in ts {
                acc = acc.add(&eval_calc(t, env)?);
            }
            acc
        }
        CalcExpr::Neg(inner) => eval_calc(inner, env)?.neg(),
        _ => return None,
    })
}

fn eval_val(v: &ValExpr, env: &FxHashMap<Var, Value>) -> Option<Value> {
    Some(match v {
        ValExpr::Const(c) => c.clone(),
        ValExpr::Var(x) => env.get(x)?.clone(),
        ValExpr::Add(es) => {
            let mut acc = Value::ZERO;
            for e in es {
                acc = acc.add(&eval_val(e, env)?);
            }
            acc
        }
        ValExpr::Mul(es) => {
            let mut acc = Value::ONE;
            for e in es {
                acc = acc.mul(&eval_val(e, env)?);
            }
            acc
        }
        ValExpr::Neg(e) => eval_val(e, env)?.neg(),
        ValExpr::Div(a, b) => eval_val(a, env)?.div(&eval_val(b, env)?),
    })
}

impl StandingQueryEngine for StreamEngine {
    fn name(&self) -> &'static str {
        "stream-operators"
    }

    fn on_event(&mut self, event: &Event) -> Result<()> {
        let sign = event.kind.sign();
        // Every relation instance with this name receives the delta (a
        // self-join has several instances of the same relation).
        let instances: Vec<usize> = self
            .synopses
            .iter()
            .enumerate()
            .filter(|(_, (name, _))| *name == event.relation)
            .map(|(i, _)| i)
            .collect();
        for idx in instances.clone() {
            let vars = self.synopses[idx].1.vars.clone();
            if vars.len() != event.tuple.arity() {
                return Err(Error::Runtime(format!(
                    "event arity mismatch on {}",
                    event.relation
                )));
            }
            let env: FxHashMap<Var, Value> = vars
                .iter()
                .cloned()
                .zip(event.tuple.iter().cloned())
                .collect();
            // Propagate against the *pre-state* of the other synopses.
            self.propagate(idx, env, sign);
            // For self-joins, the instances updated earlier in this loop
            // already contain the new tuple, so higher-order terms are
            // accounted for exactly once.
            self.synopses[idx].1.apply(&event.tuple, sign);
        }
        if instances.is_empty() {
            // Relation not referenced by the query: ignore.
        }
        Ok(())
    }

    fn result(&self) -> Vec<(Tuple, Vec<Value>)> {
        let mut rows = assemble_from_maps(&self.query, &self.maps).unwrap_or_default();
        rows.sort();
        rows
    }

    fn memory_bytes(&self) -> usize {
        let syn: usize = self.synopses.iter().map(|(_, s)| s.bytes()).sum();
        let maps: usize = self
            .maps
            .values()
            .flat_map(|m| m.iter())
            .map(|(k, v)| k.approx_bytes() + v.approx_bytes())
            .sum();
        syn + maps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{tuple, ColumnType, Schema};

    #[test]
    fn propagates_deltas_through_the_join_chain() {
        let cat = Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ));
        let mut e = StreamEngine::new("select sum(A*C) from R, S where R.B = S.B", &cat).unwrap();
        e.on_event(&Event::insert("R", tuple![3i64, 1i64])).unwrap();
        assert_eq!(e.scalar_result(), Value::Int(0));
        e.on_event(&Event::insert("S", tuple![1i64, 10i64]))
            .unwrap();
        assert_eq!(e.scalar_result(), Value::Int(30));
        e.on_event(&Event::delete("S", tuple![1i64, 10i64]))
            .unwrap();
        assert_eq!(e.scalar_result(), Value::Int(0));
    }

    #[test]
    fn self_joins_count_pairs_correctly() {
        let cat = Catalog::new().with(Schema::new("E", vec![("X", ColumnType::Int)]));
        let mut e =
            StreamEngine::new("select count(*) from E a, E b where a.X = b.X", &cat).unwrap();
        e.on_event(&Event::insert("E", tuple![7i64])).unwrap();
        assert_eq!(e.scalar_result(), Value::Int(1));
        e.on_event(&Event::insert("E", tuple![7i64])).unwrap();
        assert_eq!(e.scalar_result(), Value::Int(4));
    }

    #[test]
    fn nested_aggregates_are_rejected() {
        let cat = Catalog::new().with(Schema::new(
            "BIDS",
            vec![("PRICE", ColumnType::Int), ("VOLUME", ColumnType::Int)],
        ));
        let err = StreamEngine::new(
            "select sum(VOLUME) from BIDS b1 where b1.PRICE > \
             (select sum(b2.PRICE) from BIDS b2)",
            &cat,
        );
        assert!(err.is_err());
    }
}
