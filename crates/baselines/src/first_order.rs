//! Classical first-order incremental view maintenance.
//!
//! "Today's VM algorithms consider the impact of single deltas on view
//! queries to produce maintenance queries" (paper, abstract): one level
//! of delta derivation happens at setup time, but the resulting
//! maintenance queries — which still contain joins against the base
//! relations — are evaluated *as queries* through the interpreter on
//! every event. The engine therefore avoids full re-computation (unlike
//! [`crate::NaiveReevalEngine`]) but pays a join against base tables per
//! delta, which is the cost recursive compilation eliminates.

use dbtoaster_calculus::{
    delta, simplify, translate_query, trigger_args, CalcExpr, QueryCalc, Var,
};
use dbtoaster_common::{Catalog, Error, Event, EventKind, FxHashMap, Result, Tuple, Value};
use dbtoaster_exec::{assemble_from_maps, evaluate_groups, Database, Env};
use dbtoaster_sql::{analyze, parse_query};

use crate::StandingQueryEngine;

struct MaintenanceQuery {
    map: String,
    keys: Vec<Var>,
    args: Vec<Var>,
    delta_expr: CalcExpr,
}

/// First-order IVM: materialize only the result maps; evaluate
/// first-order delta queries against base tables for every event.
pub struct FirstOrderIvmEngine {
    query: QueryCalc,
    db: Database,
    /// (relation, event kind) -> maintenance queries to run.
    maintenance: FxHashMap<(String, EventKind), Vec<MaintenanceQuery>>,
    /// Materialized result maps.
    maps: FxHashMap<String, FxHashMap<Tuple, Value>>,
}

impl FirstOrderIvmEngine {
    pub fn new(sql: &str, catalog: &Catalog) -> Result<FirstOrderIvmEngine> {
        let bound = analyze(&parse_query(sql)?, catalog)?;
        let query = translate_query(&bound, "Q")?;
        let mut maintenance: FxHashMap<(String, EventKind), Vec<MaintenanceQuery>> =
            FxHashMap::default();
        let mut maps = FxHashMap::default();

        for spec in &query.maps {
            maps.insert(spec.name.clone(), FxHashMap::default());
            for relation in spec.definition.relations() {
                let schema = catalog.expect(&relation)?;
                let columns: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
                let args = trigger_args(&relation, &columns);
                for kind in [EventKind::Insert, EventKind::Delete] {
                    let d = delta(&spec.definition, &relation, kind, &args);
                    if d.is_zero() {
                        continue;
                    }
                    let mut protected: std::collections::BTreeSet<Var> =
                        args.iter().cloned().collect();
                    protected.extend(spec.keys.iter().cloned());
                    let simplified = simplify(&d, &protected);
                    maintenance
                        .entry((relation.clone(), kind))
                        .or_default()
                        .push(MaintenanceQuery {
                            map: spec.name.clone(),
                            keys: spec.keys.clone(),
                            args: args.clone(),
                            delta_expr: simplified,
                        });
                }
            }
        }
        Ok(FirstOrderIvmEngine {
            query,
            db: Database::new(),
            maintenance,
            maps,
        })
    }
}

impl StandingQueryEngine for FirstOrderIvmEngine {
    fn name(&self) -> &'static str {
        "first-order-ivm"
    }

    fn on_event(&mut self, event: &Event) -> Result<()> {
        // Evaluate maintenance queries against the pre-state, then apply
        // the event to the base tables.
        if let Some(queries) = self.maintenance.get(&(event.relation.clone(), event.kind)) {
            for mq in queries {
                if event.tuple.arity() != mq.args.len() {
                    return Err(Error::Runtime(format!(
                        "event arity mismatch on {}",
                        event.relation
                    )));
                }
                let mut env = Env::default();
                for (arg, value) in mq.args.iter().zip(event.tuple.iter()) {
                    env.insert(arg.clone(), value.clone());
                }
                let deltas = evaluate_groups(
                    &CalcExpr::agg_sum(mq.keys.clone(), mq.delta_expr.clone()),
                    &mq.keys,
                    &self.db,
                    &env,
                )?;
                let map = self.maps.get_mut(&mq.map).expect("map registered at setup");
                for (key, delta_value) in deltas {
                    let slot = map.entry(key).or_insert(Value::ZERO);
                    *slot = slot.add(&delta_value);
                    if slot.is_zero() {
                        // keep maps tidy like the compiled runtime does
                    }
                }
                map.retain(|_, v| !v.is_zero());
            }
        }
        self.db.apply(event);
        Ok(())
    }

    fn result(&self) -> Vec<(Tuple, Vec<Value>)> {
        let mut rows = assemble_from_maps(&self.query, &self.maps).unwrap_or_default();
        rows.sort();
        rows
    }

    fn memory_bytes(&self) -> usize {
        let maps: usize = self
            .maps
            .values()
            .flat_map(|m| m.iter())
            .map(|(k, v)| k.approx_bytes() + v.approx_bytes())
            .sum();
        self.db.approx_bytes() + maps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{tuple, ColumnType, Schema};

    #[test]
    fn maintains_a_join_aggregate_without_full_recomputation() {
        let cat = Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ));
        let mut e =
            FirstOrderIvmEngine::new("select sum(A*C) from R, S where R.B = S.B", &cat).unwrap();
        e.on_event(&Event::insert("S", tuple![1i64, 10i64]))
            .unwrap();
        e.on_event(&Event::insert("R", tuple![3i64, 1i64])).unwrap();
        assert_eq!(e.scalar_result(), Value::Int(30));
        e.on_event(&Event::insert("S", tuple![1i64, 5i64])).unwrap();
        assert_eq!(e.scalar_result(), Value::Int(45));
        e.on_event(&Event::delete("R", tuple![3i64, 1i64])).unwrap();
        assert_eq!(e.scalar_result(), Value::Int(0));
    }

    #[test]
    fn handles_self_joins_via_the_second_order_term() {
        let cat = Catalog::new().with(Schema::new("E", vec![("X", ColumnType::Int)]));
        let mut e = FirstOrderIvmEngine::new("select count(*) from E a, E b where a.X = b.X", &cat)
            .unwrap();
        e.on_event(&Event::insert("E", tuple![1i64])).unwrap();
        assert_eq!(e.scalar_result(), Value::Int(1));
        e.on_event(&Event::insert("E", tuple![1i64])).unwrap();
        assert_eq!(e.scalar_result(), Value::Int(4));
        e.on_event(&Event::delete("E", tuple![1i64])).unwrap();
        assert_eq!(e.scalar_result(), Value::Int(1));
    }
}
