//! Baseline engines for the DBMS bakeoff (experiments E2–E4).
//!
//! The paper compares its compiled executors against PostgreSQL, HSQLDB,
//! a commercial DBMS, the Stanford STREAM engine and a commercial stream
//! processor. None of those are available here, so each architectural
//! class is reproduced by an in-process stand-in (DESIGN.md §2):
//!
//! * [`NaiveReevalEngine`] — stores base tables and re-runs the full
//!   query through the reference interpreter on every delta: the
//!   conventional-DBMS strategy for standing queries.
//! * [`FirstOrderIvmEngine`] — derives first-order delta queries once,
//!   then evaluates each delta query (with its residual joins) through
//!   the interpreter on every event: "today's VM algorithms".
//! * [`StreamEngine`] — a delta-propagating operator chain with
//!   per-operator materialized state (prefix join results), evaluated
//!   tuple at a time with dynamic dispatch: the stream-processor
//!   architecture.
//! * [`DbtoasterEngine`] — a thin wrapper over the compiled
//!   [`dbtoaster_runtime::Engine`] so the bench harness can drive all
//!   four engines through one [`StandingQueryEngine`] trait.
//!
//! All engines produce identical results (see the cross-checking tests
//! and `tests/engine_equivalence.rs` at the workspace root); they differ
//! only in how much work each delta costs — which is precisely what the
//! bakeoff measures.

pub mod first_order;
pub mod naive;
pub mod stream;

use dbtoaster_common::{Event, Result, Tuple, Value};

pub use first_order::FirstOrderIvmEngine;
pub use naive::NaiveReevalEngine;
pub use stream::StreamEngine;

/// A uniform interface over every engine in the bakeoff.
pub trait StandingQueryEngine {
    /// Engine name used in benchmark reports.
    fn name(&self) -> &'static str;
    /// Apply one update-stream event.
    fn on_event(&mut self, event: &Event) -> Result<()>;
    /// The current result: `(group key, output values)` rows sorted by key.
    fn result(&self) -> Vec<(Tuple, Vec<Value>)>;
    /// Approximate memory footprint of all engine state, in bytes.
    fn memory_bytes(&self) -> usize;

    /// Convenience: the single value of a scalar query.
    fn scalar_result(&self) -> Value {
        self.result()
            .first()
            .and_then(|(_, vs)| vs.first().cloned())
            .unwrap_or(Value::ZERO)
    }

    /// Convenience: apply a whole stream.
    fn process(&mut self, events: &[Event]) -> Result<()> {
        for e in events {
            self.on_event(e)?;
        }
        Ok(())
    }
}

/// The compiled DBToaster engine behind the common trait.
pub struct DbtoasterEngine {
    engine: dbtoaster_runtime::Engine,
    name: &'static str,
}

impl DbtoasterEngine {
    /// Fully recursive compilation.
    pub fn new(sql: &str, catalog: &dbtoaster_common::Catalog) -> Result<DbtoasterEngine> {
        let program = dbtoaster_compiler::compile_sql(
            sql,
            catalog,
            &dbtoaster_compiler::CompileOptions::full(),
        )?;
        Ok(DbtoasterEngine {
            engine: dbtoaster_runtime::Engine::new(&program)?,
            name: "dbtoaster",
        })
    }

    /// Depth-limited compilation (used by the E6 ablation).
    pub fn with_depth(
        sql: &str,
        catalog: &dbtoaster_common::Catalog,
        depth: usize,
    ) -> Result<DbtoasterEngine> {
        let program = dbtoaster_compiler::compile_sql(
            sql,
            catalog,
            &dbtoaster_compiler::CompileOptions::with_depth(depth),
        )?;
        Ok(DbtoasterEngine {
            engine: dbtoaster_runtime::Engine::new(&program)?,
            name: "dbtoaster-depth-limited",
        })
    }

    /// Access to the underlying engine (profiling, snapshots).
    pub fn inner(&self) -> &dbtoaster_runtime::Engine {
        &self.engine
    }
}

impl StandingQueryEngine for DbtoasterEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_event(&mut self, event: &Event) -> Result<()> {
        self.engine.on_event(event)
    }

    fn result(&self) -> Vec<(Tuple, Vec<Value>)> {
        self.engine
            .result()
            .into_iter()
            .map(|r| (r.key, r.values))
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }
}

/// Sort result rows for order-insensitive comparisons in tests and
/// reports.
pub fn sorted_result(mut rows: Vec<(Tuple, Vec<Value>)>) -> Vec<(Tuple, Vec<Value>)> {
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{tuple, Catalog, ColumnType, Schema};

    fn rst_catalog() -> Catalog {
        Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
            .with(Schema::new(
                "T",
                vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
            ))
    }

    const RST: &str = "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C";

    fn sample_stream() -> Vec<Event> {
        vec![
            Event::insert("R", tuple![5i64, 1i64]),
            Event::insert("S", tuple![1i64, 10i64]),
            Event::insert("T", tuple![10i64, 7i64]),
            Event::insert("R", tuple![2i64, 1i64]),
            Event::insert("T", tuple![10i64, 3i64]),
            Event::delete("R", tuple![5i64, 1i64]),
            Event::insert("S", tuple![1i64, 20i64]),
            Event::insert("T", tuple![20i64, 100i64]),
        ]
    }

    #[test]
    fn all_four_engines_agree_on_the_figure2_query() {
        let cat = rst_catalog();
        let mut engines: Vec<Box<dyn StandingQueryEngine>> = vec![
            Box::new(DbtoasterEngine::new(RST, &cat).unwrap()),
            Box::new(NaiveReevalEngine::new(RST, &cat).unwrap()),
            Box::new(FirstOrderIvmEngine::new(RST, &cat).unwrap()),
            Box::new(StreamEngine::new(RST, &cat).unwrap()),
        ];
        for event in sample_stream() {
            let mut answers = Vec::new();
            for e in engines.iter_mut() {
                e.on_event(&event).unwrap();
                answers.push((e.name(), e.scalar_result()));
            }
            for (name, v) in &answers {
                assert_eq!(*v, answers[0].1, "{name} disagrees after {event:?}");
            }
        }
    }

    #[test]
    fn engines_agree_on_grouped_queries() {
        let cat = rst_catalog();
        let sql = "select B, sum(A), count(*) from R group by B";
        let mut dbt = DbtoasterEngine::new(sql, &cat).unwrap();
        let mut naive = NaiveReevalEngine::new(sql, &cat).unwrap();
        let mut fo = FirstOrderIvmEngine::new(sql, &cat).unwrap();
        let mut stream = StreamEngine::new(sql, &cat).unwrap();
        let events = vec![
            Event::insert("R", tuple![10i64, 1i64]),
            Event::insert("R", tuple![20i64, 1i64]),
            Event::insert("R", tuple![5i64, 2i64]),
            Event::delete("R", tuple![20i64, 1i64]),
        ];
        for e in &events {
            dbt.on_event(e).unwrap();
            naive.on_event(e).unwrap();
            fo.on_event(e).unwrap();
            stream.on_event(e).unwrap();
        }
        let expect = sorted_result(dbt.result());
        assert_eq!(expect, sorted_result(naive.result()));
        assert_eq!(expect, sorted_result(fo.result()));
        assert_eq!(expect, sorted_result(stream.result()));
    }

    #[test]
    fn memory_reporting_is_nonzero_once_loaded() {
        let cat = rst_catalog();
        let mut naive = NaiveReevalEngine::new(RST, &cat).unwrap();
        naive
            .on_event(&Event::insert("R", tuple![1i64, 1i64]))
            .unwrap();
        assert!(naive.memory_bytes() > 0);
    }
}
