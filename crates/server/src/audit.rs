//! Continuous correctness auditing: the shadow auditor.
//!
//! DBToaster's contract is that a delta-maintained view is *exactly*
//! the re-evaluated query at every point of the stream. Tests prove it
//! on fixed workloads; this module verifies it continuously on live
//! traffic, at a configurable sample rate, with a zero-cost disabled
//! path (one relaxed atomic load per event, same gate as the trace
//! sampler).
//!
//! For each sampled admission sequence, the apply path — while already
//! holding the audited view's group write locks — captures a consistent
//! **pre-event snapshot** of the view's maps, runs the event, captures
//! the **post-event result rows**, and hands the bundle to a worker
//! thread through a bounded queue. The worker runs two independent
//! checks per audit:
//!
//! * **Replay** — seed a private [`Engine`] (the interpreter oracle)
//!   with the pre-event snapshot, replay the event through the view's
//!   own trigger program, and compare the oracle's result rows against
//!   the rows the server assembled post-event, bit-exactly. This
//!   catches any divergence the server's staged, shared-store,
//!   index-accelerated execution could introduce over the engine's
//!   reference semantics.
//! * **Chain** — the worker retains the oracle's *post*-event map state
//!   of each view's previous audit. When the next audit of the same
//!   view arrives and no other event was delivered to the view in
//!   between (`events_before` equals the retained `events_after`), the
//!   new pre-event snapshot must equal the retained post-state exactly.
//!   A store entry corrupted *between* events — a bit flip, a stray
//!   write, a chaos-test injection ([`crate::ViewServer::corrupt_map_entry`])
//!   — breaks the chain and is reported. Replay alone can never see
//!   such corruption: an oracle seeded from the corrupted snapshot
//!   faithfully reproduces the corrupted output. When events *did*
//!   intervene, the chain link is skipped (never a false positive).
//!
//! Mismatches land in a bounded ring (dumpable over the wire via
//! `debug audit` / [`NetClient::debug_audit`]) and count into
//! `dbt_audit_checks_total{view}` / `dbt_audit_mismatch_total{view}`.
//! The readiness plane treats any mismatch as not-ready: a server that
//! cannot trust its own views should stop taking traffic.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};
use std::thread::JoinHandle;

use parking_lot::Mutex;

use dbtoaster_common::{Event, FxHashMap, Tuple, Value};
use dbtoaster_compiler::TriggerProgram;
use dbtoaster_runtime::{Engine, ResultRow};
use dbtoaster_telemetry::{log_error, log_warn, Counter, MetricsRegistry};

/// Default bound of the mismatch ring.
pub const DEFAULT_AUDIT_RING_CAPACITY: usize = 64;
/// Bound of the capture→worker queue, in audit jobs. `try_send` past
/// this drops the audit (counted), never blocks the apply path.
const AUDIT_QUEUE_DEPTH: usize = 256;
/// Entries rendered into a mismatch record per side before truncation.
const MAX_RENDERED_ENTRIES: usize = 8;

/// The chain check: retained oracle post-state vs the next pre-event
/// snapshot.
pub const CHECK_CHAIN: &str = "chain";
/// The replay check: oracle re-execution vs the server's post-event
/// rows.
pub const CHECK_REPLAY: &str = "replay";

/// One recorded audit failure, bounded for the ring and the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditMismatch {
    /// The audited view.
    pub view: String,
    /// Admission sequence of the audited event.
    pub seq: u64,
    /// Which check failed ([`CHECK_CHAIN`] or [`CHECK_REPLAY`]).
    pub kind: String,
    /// Rendered expected-side entries (truncated with a `... (+N)`
    /// marker beyond [`MAX_RENDERED_ENTRIES`]).
    pub expected: Vec<String>,
    /// Rendered actual-side entries, same bound.
    pub actual: Vec<String>,
}

/// A captured audit unit: everything the worker needs to re-run one
/// event against one view, off-thread.
pub(crate) struct AuditJob {
    pub(crate) view: usize,
    pub(crate) seq: u64,
    pub(crate) event: Event,
    /// Pre-event entries of every view map, parallel to the view
    /// program's `maps` declaration order (unsorted; the worker sorts).
    pub(crate) pre: Vec<Vec<(Tuple, Value)>>,
    /// Result rows the server assembled post-event under the same
    /// locks.
    pub(crate) post_rows: Vec<ResultRow>,
    /// Events delivered to the view before this one (exact under the
    /// held group locks).
    pub(crate) events_before: u64,
    /// Whether this event was delivered to the view.
    pub(crate) delivered: bool,
}

/// Per-view oracle inputs, registered by the server at view
/// registration.
struct ViewSpec {
    name: String,
    program: Arc<TriggerProgram>,
}

struct MismatchRing {
    written: u64,
    entries: Vec<AuditMismatch>,
}

/// State shared between the sampler (hot path), the worker thread, and
/// read-side handles ([`AuditHandle`]). The worker holds only this —
/// never the [`ShadowAuditor`] itself — so dropping the auditor
/// disconnects the queue and the worker exits.
struct AuditShared {
    enabled: AtomicBool,
    sample_one_in: AtomicU64,
    checks: AtomicU64,
    mismatches: AtomicU64,
    dropped: AtomicU64,
    ring_capacity: usize,
    ring: Mutex<MismatchRing>,
    /// In-flight jobs (submitted, not yet processed) — the drain
    /// barrier tests and the readiness probe use to settle the worker.
    /// Std primitives: the workspace's `parking_lot` shim has no
    /// condvar.
    pending: StdMutex<u64>,
    settled: Condvar,
    specs: Mutex<Vec<Option<ViewSpec>>>,
    registry: Arc<MetricsRegistry>,
}

impl AuditShared {
    fn record_mismatch(&self, m: AuditMismatch) {
        self.mismatches.fetch_add(1, Ordering::Relaxed);
        self.registry
            .counter(
                "dbt_audit_mismatch_total",
                "Audit checks that found the view diverging from the oracle",
                &[("view", m.view.as_str())],
            )
            .inc();
        log_warn(
            "audit",
            "audit mismatch: view state diverges from the oracle",
            &[
                ("view", m.view.as_str()),
                ("check", m.kind.as_str()),
                ("seq", &m.seq.to_string()),
            ],
        );
        let mut ring = self.ring.lock();
        if ring.entries.len() == self.ring_capacity {
            let idx = (ring.written as usize) % self.ring_capacity;
            ring.entries[idx] = m;
        } else {
            ring.entries.push(m);
        }
        ring.written += 1;
    }

    fn job_done(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        *pending = pending.saturating_sub(1);
        if *pending == 0 {
            self.settled.notify_all();
        }
    }
}

/// Read-side handle onto the auditor's counters and mismatch ring —
/// what the net layer's readiness probe and `debug audit` response use
/// without owning the auditor.
#[derive(Clone)]
pub struct AuditHandle(Arc<AuditShared>);

impl AuditHandle {
    /// Whether auditing is enabled.
    pub fn is_enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// The current 1-in-N sample rate.
    pub fn sample_one_in(&self) -> u64 {
        self.0.sample_one_in.load(Ordering::Relaxed)
    }

    /// Audits completed by the worker.
    pub fn checks_total(&self) -> u64 {
        self.0.checks.load(Ordering::Relaxed)
    }

    /// Mismatches found, across both checks.
    pub fn mismatch_total(&self) -> u64 {
        self.0.mismatches.load(Ordering::Relaxed)
    }

    /// Sampled audits dropped because the worker queue was full.
    pub fn dropped_total(&self) -> u64 {
        self.0.dropped.load(Ordering::Relaxed)
    }

    /// The retained mismatch records, oldest first.
    pub fn mismatches(&self) -> Vec<AuditMismatch> {
        let ring = self.0.ring.lock();
        let mut out = ring.entries.clone();
        out.sort_by_key(|m| m.seq);
        out
    }

    /// Block until every submitted audit has been processed — the
    /// barrier that makes counters and the ring deterministic after a
    /// known workload.
    pub fn drain(&self) {
        let mut pending = self
            .0
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *pending > 0 {
            pending = self
                .0
                .settled
                .wait(pending)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The audit plane's front end, owned by the
/// [`ViewServer`](crate::ViewServer): sampling gate, bounded job queue,
/// and the lazily spawned oracle worker.
pub struct ShadowAuditor {
    shared: Arc<AuditShared>,
    tx: Mutex<Option<SyncSender<AuditJob>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl ShadowAuditor {
    /// A disabled auditor sampling 1-in-1, recording per-view counters
    /// into `registry`, retaining at most `ring_capacity` mismatches.
    pub fn new(ring_capacity: usize, registry: Arc<MetricsRegistry>) -> ShadowAuditor {
        ShadowAuditor {
            shared: Arc::new(AuditShared {
                enabled: AtomicBool::new(false),
                sample_one_in: AtomicU64::new(1),
                checks: AtomicU64::new(0),
                mismatches: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                ring_capacity: ring_capacity.max(1),
                ring: Mutex::new(MismatchRing {
                    written: 0,
                    entries: Vec::new(),
                }),
                pending: StdMutex::new(0),
                settled: Condvar::new(),
                specs: Mutex::new(Vec::new()),
                registry,
            }),
            tx: Mutex::new(None),
            worker: Mutex::new(None),
        }
    }

    /// Turn auditing on or off, spawning the worker on first enable.
    pub fn set_enabled(&self, enabled: bool) {
        if enabled {
            self.ensure_worker();
        }
        self.shared.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether auditing is on (one relaxed load — the hot-path gate).
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Audit one event in every `n` (clamped to at least 1).
    pub fn set_sample_one_in(&self, n: u64) {
        self.shared.sample_one_in.store(n.max(1), Ordering::Relaxed);
    }

    /// The current 1-in-N sample rate.
    pub fn sample_one_in(&self) -> u64 {
        self.shared.sample_one_in.load(Ordering::Relaxed)
    }

    /// Deterministic per-seq sampling decision (same shape as the
    /// trace sampler: disabled costs one relaxed load and a branch).
    #[inline]
    pub fn sampled(&self, seq: u64) -> bool {
        self.is_enabled() && seq.is_multiple_of(self.sample_one_in())
    }

    /// A cloneable read-side handle (counters, ring, drain barrier).
    pub fn handle(&self) -> AuditHandle {
        AuditHandle(Arc::clone(&self.shared))
    }

    /// Register the oracle inputs of one view (called by the server at
    /// registration; index is the view's registration index).
    pub(crate) fn register_view(&self, index: usize, name: &str, program: TriggerProgram) {
        let mut specs = self.shared.specs.lock();
        if specs.len() <= index {
            specs.resize_with(index + 1, || None);
        }
        specs[index] = Some(ViewSpec {
            name: name.to_string(),
            program: Arc::new(program),
        });
    }

    /// Enqueue one captured audit; drops (counted) when the worker is
    /// behind — the apply path never blocks on auditing.
    pub(crate) fn submit(&self, job: AuditJob) {
        let tx = self.tx.lock();
        let Some(tx) = tx.as_ref() else {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        {
            let mut pending = self
                .shared
                .pending
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *pending += 1;
        }
        match tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                self.shared.job_done();
            }
        }
    }

    fn ensure_worker(&self) {
        let mut worker = self.worker.lock();
        if worker.is_some() {
            return;
        }
        let (tx, rx) = std::sync::mpsc::sync_channel(AUDIT_QUEUE_DEPTH);
        let shared = Arc::clone(&self.shared);
        match std::thread::Builder::new()
            .name("dbtoaster-audit".into())
            .spawn(move || worker_loop(shared, rx))
        {
            Ok(handle) => {
                *self.tx.lock() = Some(tx);
                *worker = Some(handle);
            }
            Err(e) => {
                log_error(
                    "audit",
                    "could not spawn the audit worker; auditing disabled",
                    &[("error", &e.to_string())],
                );
            }
        }
    }
}

impl Drop for ShadowAuditor {
    fn drop(&mut self) {
        // Disconnect the queue, then join: the worker drains whatever
        // was already submitted and exits on the hangup.
        *self.tx.lock() = None;
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

/// The worker's retained oracle state of one view: the map entries and
/// result rows the oracle computed *post*-event at the last audit, and
/// the view's event count at that point.
struct Retained {
    events_after: u64,
    /// Sorted entries per map, parallel to the program's declarations.
    maps: Vec<Vec<(Tuple, Value)>>,
}

fn worker_loop(shared: Arc<AuditShared>, rx: Receiver<AuditJob>) {
    let mut engines: FxHashMap<usize, Engine> = FxHashMap::default();
    let mut retained: FxHashMap<usize, Retained> = FxHashMap::default();
    let mut counters: FxHashMap<usize, Arc<Counter>> = FxHashMap::default();
    for job in rx {
        process_job(&shared, &mut engines, &mut retained, &mut counters, job);
        shared.job_done();
    }
}

fn process_job(
    shared: &AuditShared,
    engines: &mut FxHashMap<usize, Engine>,
    retained: &mut FxHashMap<usize, Retained>,
    counters: &mut FxHashMap<usize, Arc<Counter>>,
    mut job: AuditJob,
) {
    let (name, program) = {
        let specs = shared.specs.lock();
        match specs.get(job.view).and_then(|s| s.as_ref()) {
            Some(spec) => (spec.name.clone(), Arc::clone(&spec.program)),
            None => return,
        }
    };
    let engine = match engines.entry(job.view) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => match Engine::new(&program) {
            Ok(engine) => v.insert(engine),
            Err(e) => {
                // The program compiled once already; failing to lower it
                // again is an internal bug, not a data mismatch.
                log_error(
                    "audit",
                    "oracle engine construction failed; audit skipped",
                    &[("view", name.as_str()), ("error", &e.to_string())],
                );
                return;
            }
        },
    };
    shared.checks.fetch_add(1, Ordering::Relaxed);
    counters
        .entry(job.view)
        .or_insert_with(|| {
            shared.registry.counter(
                "dbt_audit_checks_total",
                "Sampled events audited against the interpreter oracle",
                &[("view", name.as_str())],
            )
        })
        .inc();

    for entries in &mut job.pre {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
    }

    // Chain check: with no deliveries since the previous audit of this
    // view, its pre-event state must equal the oracle's retained
    // post-state bit-exactly. This is the only check that can see
    // corruption injected *between* events.
    if let Some(prev) = retained.get(&job.view) {
        if prev.events_after == job.events_before && prev.maps != job.pre {
            let (expected, actual) = render_map_diff(&program, &prev.maps, &job.pre);
            shared.record_mismatch(AuditMismatch {
                view: name.clone(),
                seq: job.seq,
                kind: CHECK_CHAIN.to_string(),
                expected,
                actual,
            });
        }
    }

    // Replay check: oracle re-execution from the pre-event snapshot
    // must reproduce the server's post-event rows bit-exactly.
    engine.reset_maps();
    let replay = (|| -> dbtoaster_common::Result<Vec<ResultRow>> {
        for (decl, entries) in program.maps.iter().zip(&job.pre) {
            engine.load_map(&decl.name, entries.iter().cloned())?;
        }
        engine.on_event(&job.event)?;
        Ok(engine.result())
    })();
    let oracle_rows = match replay {
        Ok(rows) => rows,
        Err(e) => {
            shared.record_mismatch(AuditMismatch {
                view: name,
                seq: job.seq,
                kind: CHECK_REPLAY.to_string(),
                expected: vec![format!("oracle replay failed: {e}")],
                actual: render_rows(&job.post_rows),
            });
            retained.remove(&job.view);
            return;
        }
    };
    if oracle_rows != job.post_rows {
        shared.record_mismatch(AuditMismatch {
            view: name,
            seq: job.seq,
            kind: CHECK_REPLAY.to_string(),
            expected: render_rows(&oracle_rows),
            actual: render_rows(&job.post_rows),
        });
    }

    // Retain the oracle's post-state for the next chain link.
    let maps = program
        .maps
        .iter()
        .map(|decl| engine.map_snapshot(&decl.name).unwrap_or_default())
        .collect();
    retained.insert(
        job.view,
        Retained {
            events_after: job.events_before + u64::from(job.delivered),
            maps,
        },
    );
}

/// Render the differing entries of two per-map snapshots, bounded.
fn render_map_diff(
    program: &TriggerProgram,
    expected: &[Vec<(Tuple, Value)>],
    actual: &[Vec<(Tuple, Value)>],
) -> (Vec<String>, Vec<String>) {
    let mut exp = Vec::new();
    let mut act = Vec::new();
    for (i, decl) in program.maps.iter().enumerate() {
        let (e, a) = (
            expected.get(i).map(Vec::as_slice).unwrap_or(&[]),
            actual.get(i).map(Vec::as_slice).unwrap_or(&[]),
        );
        for (k, v) in e.iter().filter(|entry| !a.contains(entry)) {
            exp.push(format!("{}[{}]={}", decl.name, k, v));
        }
        for (k, v) in a.iter().filter(|entry| !e.contains(entry)) {
            act.push(format!("{}[{}]={}", decl.name, k, v));
        }
    }
    (truncate_rendered(exp), truncate_rendered(act))
}

fn render_rows(rows: &[ResultRow]) -> Vec<String> {
    truncate_rendered(
        rows.iter()
            .map(|r| {
                let values: Vec<String> = r.values.iter().map(|v| v.to_string()).collect();
                format!("[{}] -> ({})", r.key, values.join(", "))
            })
            .collect(),
    )
}

fn truncate_rendered(mut out: Vec<String>) -> Vec<String> {
    if out.len() > MAX_RENDERED_ENTRIES {
        let extra = out.len() - MAX_RENDERED_ENTRIES;
        out.truncate(MAX_RENDERED_ENTRIES);
        out.push(format!("... (+{extra} more)"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auditor() -> ShadowAuditor {
        ShadowAuditor::new(4, Arc::new(MetricsRegistry::new()))
    }

    #[test]
    fn sampling_is_deterministic_and_disabled_by_default() {
        let a = auditor();
        assert!(!a.sampled(0), "disabled auditor samples nothing");
        a.set_enabled(true);
        a.set_sample_one_in(8);
        let picked: Vec<u64> = (0..20).filter(|&s| a.sampled(s)).collect();
        assert_eq!(picked, vec![0, 8, 16]);
        a.set_sample_one_in(0);
        assert_eq!(a.sample_one_in(), 1, "zero clamps to every event");
    }

    #[test]
    fn mismatch_ring_is_bounded_oldest_overwritten() {
        let a = auditor();
        for seq in 0..10u64 {
            a.shared.record_mismatch(AuditMismatch {
                view: "v".into(),
                seq,
                kind: CHECK_CHAIN.into(),
                expected: vec![],
                actual: vec![],
            });
        }
        let h = a.handle();
        assert_eq!(h.mismatch_total(), 10);
        let seqs: Vec<u64> = h.mismatches().iter().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "capacity 4 keeps the most recent");
    }

    #[test]
    fn rendered_entries_are_truncated_with_a_marker() {
        let rendered = truncate_rendered((0..12).map(|i| format!("e{i}")).collect());
        assert_eq!(rendered.len(), MAX_RENDERED_ENTRIES + 1);
        assert_eq!(rendered.last().unwrap(), "... (+4 more)");
    }

    #[test]
    fn drain_returns_immediately_when_idle() {
        let a = auditor();
        a.set_enabled(true);
        a.handle().drain();
    }

    #[test]
    fn submit_without_a_worker_counts_a_drop() {
        let a = auditor();
        // Worker never spawned (auditing never enabled): submissions
        // are dropped, counted, and do not wedge the drain barrier.
        a.submit(AuditJob {
            view: 0,
            seq: 0,
            event: Event::insert("R", Tuple::empty()),
            pre: vec![],
            post_rows: vec![],
            events_before: 0,
            delivered: true,
        });
        assert_eq!(a.handle().dropped_total(), 1);
        a.handle().drain();
    }
}
