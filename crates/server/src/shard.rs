//! Sharded parallel dispatch over the view server's group locks.
//!
//! PR 2's locking design made disjoint-group batches *safe* to run
//! concurrently; this module is the driver that actually does it. A
//! [`ShardedDispatcher`] wraps an `Arc<ViewServer>` and a pool of plain
//! `std::thread` workers (the container shims have no async runtime, and
//! none is needed: ingestion is CPU-bound):
//!
//! * **Partition planning is static.** Every dispatched relation has a
//!   precomputed lock plan (`ViewServer::relation_groups`). At
//!   construction the dispatcher runs union–find over those plans:
//!   relations whose group sets overlap — directly or transitively —
//!   land in one **partition** (connected component). Two relations in
//!   different partitions can never touch the same map group, so their
//!   events commute perfectly.
//! * **Per batch, events are bucketed by partition** (original order
//!   preserved within each bucket) and every non-empty bucket becomes
//!   one job: `apply_batch` over the bucket, taking exactly that
//!   partition's locks. Non-overlapping plans run concurrently on the
//!   pool; overlapping relations were merged into the *same* bucket, so
//!   their events run sequentially in arrival order — the fallback that
//!   keeps results exactly equal to a sequential [`ViewServer::apply_batch`]
//!   over the whole batch.
//! * **Workers own their [`ApplyCtx`]**, so steady-state ingestion
//!   performs no per-batch allocation beyond the bucket vectors.
//!
//! Equivalence argument: the final contents of every map are a pure
//! function of the multiset of events each interested view absorbed
//! (incremental maintenance is exact), per-view event order is preserved
//! within a bucket, and a view's relations always share a group (the
//! view's own group is in every one of its relations' plans) — so all
//! events of one view are in one bucket, in batch order. Hence every
//! view sees exactly the sequence it would have seen sequentially, and
//! snapshots after the batch are identical. Error semantics differ in
//! one corner: a malformed event aborts only its own bucket's remainder,
//! not the whole batch (the first failing partition's error is
//! returned).
//!
//! [`ViewServer::apply_batch`]: crate::ViewServer::apply_batch

use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use dbtoaster_common::{Error, Event, EventSource, FxHashMap, Result};
use dbtoaster_telemetry::{Counter, Histogram, MetricsRegistry, Unit};

use crate::{drain_source, ApplyCtx, IngestReport, ViewServer};

/// A unit of work for the pool: runs with the worker's own [`ApplyCtx`].
type Job = Box<dyn FnOnce(&mut ApplyCtx) + Send + 'static>;

/// A fixed-size pool of std threads draining one shared job queue.
struct WorkerPool {
    /// `Some` until drop; dropping the sender stops the workers.
    tx: Option<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize, registry: &Arc<MetricsRegistry>) -> WorkerPool {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|w| {
                let rx = Arc::clone(&rx);
                let registry = Arc::clone(registry);
                let worker = w.to_string();
                let jobs = registry.counter(
                    "dbt_worker_jobs_total",
                    "Partition jobs one worker ran",
                    &[("worker", &worker)],
                );
                let busy = registry.counter(
                    "dbt_worker_busy_nanos_total",
                    "Nanoseconds one worker spent running jobs",
                    &[("worker", &worker)],
                );
                let idle = registry.counter(
                    "dbt_worker_idle_nanos_total",
                    "Nanoseconds one worker spent waiting for jobs",
                    &[("worker", &worker)],
                );
                std::thread::Builder::new()
                    .name(format!("dbtoaster-shard-{w}"))
                    .spawn(move || {
                        let mut ctx = ApplyCtx::default();
                        loop {
                            // Busy/idle brackets only when the registry
                            // asks for timing — jobs are whole batches,
                            // so even then the clocks are per batch, not
                            // per event. The jobs counter is always-on.
                            let timed = registry.enabled();
                            let wait_started = timed.then(Instant::now);
                            // Hold the queue lock only for the dequeue,
                            // never while running the job.
                            let job = rx.lock().recv();
                            match job {
                                Ok(job) => {
                                    if let Some(started) = wait_started {
                                        idle.add(started.elapsed().as_nanos() as u64);
                                    }
                                    jobs.inc();
                                    let run_started = timed.then(Instant::now);
                                    job(&mut ctx);
                                    if let Some(started) = run_started {
                                        busy.add(started.elapsed().as_nanos() as u64);
                                    }
                                }
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn sharded-dispatch worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
        }
    }

    fn submit(&self, job: Job) {
        self.tx
            .as_ref()
            .expect("pool is live until drop")
            .send(job)
            .expect("dispatch workers outlive the pool handle");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Dispatch counters, cheap enough to keep always-on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchReport {
    /// Batches accepted.
    pub batches: u64,
    /// Events accepted (including events no view listens to).
    pub events: u64,
    /// Batches that ran on the worker pool (≥ 2 independent buckets).
    pub parallel_batches: u64,
    /// Batches applied inline because every event shared one partition
    /// (or the dispatcher runs without a pool).
    pub sequential_batches: u64,
    /// Jobs handed to the pool across all parallel batches.
    pub jobs: u64,
    /// Worker-pool size the dispatcher runs with (1 = inline). Chosen
    /// by the caller or autotuned from the machine's parallelism.
    pub workers: u64,
}

/// Upper bound on the autotuned pool size: past this, queue contention
/// on the single job channel outweighs extra cores for every portfolio
/// we have measured.
pub const MAX_AUTO_WORKERS: usize = 32;

/// The autotuned worker count for a portfolio with `partitions`
/// independent partitions: the machine's available parallelism, clamped
/// to `[1, MAX_AUTO_WORKERS]` and capped at the partition count — more
/// workers than partitions can never be busy at once, and a one-partition
/// portfolio degenerates to inline sequential application.
pub fn auto_workers(partitions: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.clamp(1, MAX_AUTO_WORKERS).min(partitions.max(1))
}

/// Union–find over dispatched relations: relations sharing any map
/// group — directly or transitively — merge into one partition. Returns
/// the relation → partition-id map (dense ids) and the partition count.
fn plan_partitions(server: &ViewServer) -> (FxHashMap<String, usize>, usize) {
    let relations: Vec<String> = server
        .dispatched_relations()
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut parent: Vec<usize> = (0..relations.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut group_owner: FxHashMap<usize, usize> = FxHashMap::default();
    for (ri, rel) in relations.iter().enumerate() {
        let groups = server
            .relation_groups(rel)
            .expect("dispatched relation has a plan");
        for &g in groups {
            match group_owner.get(&g) {
                Some(&owner) => {
                    let (a, b) = (find(&mut parent, ri), find(&mut parent, owner));
                    parent[a] = b;
                }
                None => {
                    group_owner.insert(g, ri);
                }
            }
        }
    }
    // Densify component representatives into partition ids.
    let mut dense: FxHashMap<usize, usize> = FxHashMap::default();
    let mut partition_of: FxHashMap<String, usize> = FxHashMap::default();
    for (ri, rel) in relations.iter().enumerate() {
        let root = find(&mut parent, ri);
        let next = dense.len();
        let id = *dense.entry(root).or_insert(next);
        partition_of.insert(rel.clone(), id);
    }
    (partition_of, dense.len())
}

/// Parallel ingestion driver: partitions each batch by relation-group
/// overlap and runs independent partitions concurrently on a std-thread
/// worker pool. See the module docs for the equivalence argument.
pub struct ShardedDispatcher {
    server: Arc<ViewServer>,
    pool: Option<WorkerPool>,
    workers: usize,
    /// relation name → partition id (dense, `0..partitions`).
    partition_of: FxHashMap<String, usize>,
    /// Number of partitions (connected components of group overlap).
    partitions: usize,
    /// Dispatch counters, registered in the server's metrics registry
    /// (`dbt_dispatch_*_total`) so [`DispatchReport`] and a scrape read
    /// the same atomics.
    batches: Arc<Counter>,
    events: Arc<Counter>,
    parallel_batches: Arc<Counter>,
    sequential_batches: Arc<Counter>,
    jobs: Arc<Counter>,
    /// Events per partition bucket of parallel batches — how evenly the
    /// partition plan splits real traffic.
    bucket_size: Arc<Histogram>,
}

impl ShardedDispatcher {
    /// Build a dispatcher over a fully registered server. `workers` is
    /// the pool size; `0` or `1` disables the pool (every batch applies
    /// inline, still through the partition bookkeeping). Registration
    /// must be complete: the partition plan is computed here, once.
    pub fn new(server: Arc<ViewServer>, workers: usize) -> ShardedDispatcher {
        let (partition_of, partitions) = plan_partitions(&server);
        ShardedDispatcher::build(server, workers, partition_of, partitions)
    }

    /// Build a dispatcher with the worker count autotuned from the
    /// machine ([`auto_workers`]): available parallelism, clamped and
    /// capped at the portfolio's partition count. The chosen size is
    /// visible as [`ShardedDispatcher::workers`] and in
    /// [`DispatchReport::workers`].
    pub fn new_auto(server: Arc<ViewServer>) -> ShardedDispatcher {
        let (partition_of, partitions) = plan_partitions(&server);
        let workers = auto_workers(partitions);
        ShardedDispatcher::build(server, workers, partition_of, partitions)
    }

    fn build(
        server: Arc<ViewServer>,
        workers: usize,
        partition_of: FxHashMap<String, usize>,
        partitions: usize,
    ) -> ShardedDispatcher {
        let registry = Arc::clone(server.metrics());
        let pool = (workers > 1).then(|| WorkerPool::new(workers, &registry));
        let counter = |name: &str, help: &str| registry.counter(name, help, &[]);
        let dispatcher = ShardedDispatcher {
            workers: workers.max(1),
            partition_of,
            partitions,
            batches: counter("dbt_dispatch_batches_total", "Batches accepted"),
            events: counter(
                "dbt_dispatch_events_total",
                "Events accepted (including events no view listens to)",
            ),
            parallel_batches: counter(
                "dbt_dispatch_parallel_batches_total",
                "Batches that ran on the worker pool",
            ),
            sequential_batches: counter(
                "dbt_dispatch_sequential_batches_total",
                "Batches applied inline (one occupied partition, or no pool)",
            ),
            jobs: counter(
                "dbt_dispatch_jobs_total",
                "Partition jobs handed to the pool",
            ),
            bucket_size: registry.histogram(
                "dbt_shard_bucket_size_events",
                "Events per partition bucket of parallel batches",
                &[],
                Unit::Count,
            ),
            server,
            pool,
        };
        registry
            .gauge(
                "dbt_dispatch_workers",
                "Worker-pool size the dispatcher runs with (1 = inline)",
                &[],
            )
            .set(dispatcher.workers as i64);
        registry
            .gauge(
                "dbt_dispatch_partitions",
                "Independent partitions the portfolio splits into",
                &[],
            )
            .set(dispatcher.partitions as i64);
        dispatcher
    }

    /// The wrapped server.
    pub fn server(&self) -> &Arc<ViewServer> {
        &self.server
    }

    /// Worker-pool size (1 = inline).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of independent partitions the registered portfolio
    /// splits into — the maximum parallelism any batch can reach.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Partition id of one relation (None when no view listens to it).
    pub fn partition_of(&self, relation: &str) -> Option<usize> {
        self.partition_of.get(relation).copied()
    }

    /// Dispatch counters so far.
    pub fn report(&self) -> DispatchReport {
        DispatchReport {
            batches: self.batches.get(),
            events: self.events.get(),
            parallel_batches: self.parallel_batches.get(),
            sequential_batches: self.sequential_batches.get(),
            jobs: self.jobs.get(),
            workers: self.workers as u64,
        }
    }

    /// Apply a batch, running independent partitions concurrently.
    /// Returns the total number of deliveries, exactly as the
    /// sequential [`ViewServer::apply_batch`] would.
    ///
    /// [`ViewServer::apply_batch`]: crate::ViewServer::apply_batch
    pub fn apply_batch(&self, batch: &[Event]) -> Result<usize> {
        self.batches.inc();
        self.events.add(batch.len() as u64);

        // First pass, no copying: count the partitions this batch
        // occupies. Events on relations no view listens to don't count —
        // sequential apply_batch ignores them identically.
        let mut bucket_of: Vec<Option<usize>> = vec![None; self.partitions];
        let mut occupied = 0usize;
        if self.pool.is_some() {
            for event in batch {
                let Some(&p) = self.partition_of.get(&event.relation) else {
                    continue;
                };
                if bucket_of[p].is_none() {
                    bucket_of[p] = Some(occupied);
                    occupied += 1;
                    if occupied == self.partitions {
                        break;
                    }
                }
            }
        }

        // One occupied partition (or no pool): the parallel machinery
        // has nothing to win — apply the original slice in place,
        // uncloned.
        if occupied <= 1 {
            self.sequential_batches.inc();
            return self.server.apply_batch(batch);
        }

        // Second pass: bucket the events by partition, preserving order
        // within each bucket. The pool's jobs are `'static`, so buckets
        // own their events.
        let mut buckets: Vec<Vec<Event>> = (0..occupied).map(|_| Vec::new()).collect();
        for event in batch {
            if let Some(b) = self.partition_of.get(&event.relation).map(|&p| {
                bucket_of[p].expect("first pass visited every dispatched relation present")
            }) {
                buckets[b].push(event.clone());
            }
        }

        self.parallel_batches.inc();
        self.jobs.add(buckets.len() as u64);
        for bucket in &buckets {
            self.bucket_size.record(bucket.len() as u64);
        }
        let pool = self.pool.as_ref().expect("occupied buckets imply a pool");
        let jobs = buckets.len();
        let (rtx, rrx) = mpsc::channel::<(usize, Result<usize>)>();
        for (index, events) in buckets.into_iter().enumerate() {
            let server = Arc::clone(&self.server);
            let rtx = rtx.clone();
            pool.submit(Box::new(move |ctx| {
                let result = server.apply_batch_with(&events, ctx);
                let _ = rtx.send((index, result));
            }));
        }
        drop(rtx);

        let mut received = 0usize;
        let mut deliveries = 0usize;
        let mut failure: Option<(usize, Error)> = None;
        for (index, result) in rrx.iter() {
            received += 1;
            match result {
                Ok(d) => deliveries += d,
                // Deterministic error choice: the earliest bucket's.
                Err(e) => match &failure {
                    Some((seen, _)) if *seen < index => {}
                    _ => failure = Some((index, e)),
                },
            }
        }
        // A job that panicked (a library invariant bug, not a data
        // error) drops its sender without reporting; silently returning
        // a partial Ok would break the exact-equivalence contract, so
        // surface the shortfall.
        if received != jobs && failure.is_none() {
            return Err(Error::Runtime(format!(
                "sharded dispatch lost {} of {jobs} partition jobs (worker panicked)",
                jobs - received
            )));
        }
        match failure {
            Some((_, e)) => Err(e),
            None => Ok(deliveries),
        }
    }

    /// Drain an [`EventSource`] through the sharded path, pulling
    /// batches of at most `batch_size` events.
    pub fn run_source(
        &self,
        source: &mut dyn EventSource,
        batch_size: usize,
    ) -> Result<IngestReport> {
        drain_source(source, batch_size, |batch| self.apply_batch(&batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{tuple, Catalog, ColumnType, Schema};

    /// Four disjoint single-relation views + one view joining two of the
    /// relations, so the partition structure is non-trivial.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for rel in ["A", "B", "C", "D"] {
            c.add(Schema::new(
                rel,
                vec![("X", ColumnType::Int), ("Y", ColumnType::Int)],
            ));
        }
        c
    }

    fn server() -> Arc<ViewServer> {
        let mut s = ViewServer::new(&catalog());
        for rel in ["A", "B", "C", "D"] {
            s.register(
                &format!("sum_{rel}"),
                &format!("select Y, sum(X) from {rel} group by Y"),
            )
            .unwrap();
        }
        // Ties A and B into one partition.
        s.register("ab", "select count(*) from A, B where A.Y = B.Y")
            .unwrap();
        Arc::new(s)
    }

    fn mixed_batch(n: i64) -> Vec<Event> {
        (0..n)
            .flat_map(|i| {
                ["A", "B", "C", "D"]
                    .into_iter()
                    .map(move |rel| Event::insert(rel, tuple![i, i % 5]))
            })
            .collect()
    }

    #[test]
    fn partition_planning_merges_overlapping_relations() {
        let dispatcher = ShardedDispatcher::new(server(), 4);
        // A and B overlap through the join view; C and D are alone.
        assert_eq!(dispatcher.partitions(), 3);
        assert_eq!(
            dispatcher.partition_of("A"),
            dispatcher.partition_of("B"),
            "join view merges A and B"
        );
        assert_ne!(dispatcher.partition_of("C"), dispatcher.partition_of("D"));
        assert_eq!(dispatcher.partition_of("NOPE"), None);
    }

    #[test]
    fn sharded_ingestion_matches_sequential_exactly() {
        let sequential = server();
        let sharded = ShardedDispatcher::new(server(), 4);
        let batch = mixed_batch(40);
        let expected = sequential.apply_batch(&batch).unwrap();
        let got = sharded.apply_batch(&batch).unwrap();
        assert_eq!(got, expected);
        let a = sequential.snapshot_all();
        let b = sharded.server().snapshot_all();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.rows, y.rows, "{} diverged", x.name);
            assert_eq!(x.events_processed, y.events_processed);
        }
        let report = sharded.report();
        assert_eq!(report.batches, 1);
        assert_eq!(report.parallel_batches, 1);
        assert_eq!(report.jobs, 3, "one job per occupied partition");
    }

    #[test]
    fn single_partition_batches_fall_back_to_inline_sequential() {
        let sharded = ShardedDispatcher::new(server(), 4);
        let batch: Vec<Event> = (0..10i64)
            .flat_map(|i| {
                [
                    Event::insert("A", tuple![i, i % 3]),
                    Event::insert("B", tuple![i % 3, i]),
                ]
            })
            .collect();
        sharded.apply_batch(&batch).unwrap();
        let report = sharded.report();
        assert_eq!(report.sequential_batches, 1, "A+B share a partition");
        assert_eq!(report.parallel_batches, 0);
    }

    #[test]
    fn auto_worker_count_is_clamped_and_capped_at_partitions() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Caps at the partition count however many cores exist.
        assert_eq!(auto_workers(1), 1);
        assert!(auto_workers(2) <= 2);
        // Never zero, never above MAX_AUTO_WORKERS or the core count.
        assert!(auto_workers(0) >= 1);
        let wide = auto_workers(10_000);
        assert!(wide >= 1 && wide <= MAX_AUTO_WORKERS.min(cores));

        // The dispatcher surfaces the autotuned size in its report.
        let dispatcher = ShardedDispatcher::new_auto(server());
        assert_eq!(dispatcher.workers(), auto_workers(dispatcher.partitions()));
        assert_eq!(dispatcher.report().workers, dispatcher.workers() as u64);
        // And it still computes the exact sequential answer.
        let batch = mixed_batch(8);
        let reference = server();
        let expected = reference.apply_batch(&batch).unwrap();
        assert_eq!(dispatcher.apply_batch(&batch).unwrap(), expected);
        assert_eq!(reference.snapshot_all(), dispatcher.server().snapshot_all());
    }

    #[test]
    fn no_pool_means_every_batch_is_sequential() {
        let sharded = ShardedDispatcher::new(server(), 1);
        assert_eq!(sharded.workers(), 1);
        sharded.apply_batch(&mixed_batch(10)).unwrap();
        let report = sharded.report();
        assert_eq!(report.sequential_batches, 1);
        assert_eq!(report.jobs, 0);
    }

    #[test]
    fn unknown_relations_are_dropped_like_sequential_ingestion() {
        let sharded = ShardedDispatcher::new(server(), 4);
        let mut batch = mixed_batch(5);
        batch.push(Event::insert("UNKNOWN", tuple![1i64]));
        let deliveries = sharded.apply_batch(&batch).unwrap();
        let sequential = server();
        assert_eq!(deliveries, sequential.apply_batch(&batch).unwrap());
    }

    #[test]
    fn bad_events_surface_the_earliest_bucket_error() {
        let sharded = ShardedDispatcher::new(server(), 4);
        let mut batch = mixed_batch(3);
        batch.push(Event::insert("C", tuple![1i64])); // wrong arity
        assert!(sharded.apply_batch(&batch).is_err());
    }
}
