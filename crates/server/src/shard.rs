//! Sharded parallel dispatch over the view server's group locks.
//!
//! PR 2's locking design made disjoint-group batches *safe* to run
//! concurrently; this module is the driver that actually does it. A
//! [`ShardedDispatcher`] wraps an `Arc<ViewServer>` and runs each batch
//! on scoped `std::thread` workers (the container shims have no async
//! runtime, and none is needed: ingestion is CPU-bound):
//!
//! * **Partition planning is static.** Every dispatched relation has a
//!   precomputed lock plan (`ViewServer::relation_groups`). At
//!   construction the dispatcher runs union–find over those plans:
//!   relations whose group sets overlap — directly or transitively —
//!   land in one **partition** (connected component). Two relations in
//!   different partitions can never touch the same map group, so their
//!   events commute perfectly.
//! * **Key-range sharding splits a partition further.** A relation the
//!   server range-sharded ([`ViewServer::enable_range_sharding`]) owns
//!   its partition exclusively, and its events are bucketed by
//!   `(partition, key range)` using the same [`range_of_value`] routing
//!   the server applies — so a single hot relation fans out across all
//!   workers instead of serializing on one partition bucket.
//! * **Dispatch is zero-copy.** Buckets are index lists (`Vec<u32>`)
//!   into the caller's borrowed `&[Event]` slice; workers are spawned
//!   with `std::thread::scope` and run
//!   [`ViewServer::apply_batch_indices`] directly against the borrowed
//!   slice. No event is cloned and no job crosses a queue — the caller's
//!   thread claims buckets alongside the spawned workers.
//! * **Single-destination batches bypass the pool.** When every event of
//!   a batch lands in one bucket (or the effective parallelism is 1),
//!   the original slice is applied inline on the caller's thread —
//!   no bucketing residue, no thread spawn, no copy.
//!
//! Equivalence argument: the final contents of every map are a pure
//! function of the multiset of events each interested view absorbed
//! (incremental maintenance is exact), per-view event order is preserved
//! within a bucket, and a view's relations always share a group (the
//! view's own group is in every one of its relations' plans) — so all
//! events of one view are in one bucket, in batch order. Range buckets
//! refine this per key range: a range-sharded relation's replica groups
//! are written only through that range's bucket, in arrival order, and
//! every read path folds the per-range partials back together with the
//! commutative monoid. Hence every view sees exactly the state it would
//! have reached sequentially, and snapshots after the batch are
//! identical. Error semantics differ in one corner: a malformed event
//! aborts only its own bucket's remainder, not the whole batch (the
//! earliest bucket's error is returned).
//!
//! [`ViewServer::apply_batch`]: crate::ViewServer::apply_batch
//! [`ViewServer::apply_batch_indices`]: crate::ViewServer::apply_batch_indices
//! [`ViewServer::enable_range_sharding`]: crate::ViewServer::enable_range_sharding

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use dbtoaster_common::{Error, Event, EventSource, FxHashMap, Result};
use dbtoaster_runtime::range_of_value;
use dbtoaster_telemetry::{
    Counter, Histogram, MetricsRegistry, TraceRecorder, TraceSpan, Unit, LAYER_DISPATCH,
};

use crate::{drain_source, IngestReport, ViewServer};

/// Dispatch counters, cheap enough to keep always-on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchReport {
    /// Batches accepted.
    pub batches: u64,
    /// Events accepted (including events no view listens to).
    pub events: u64,
    /// Batches that ran on scoped workers (≥ 2 occupied buckets).
    pub parallel_batches: u64,
    /// Batches applied inline because every event shared one bucket
    /// (or the effective parallelism is 1).
    pub sequential_batches: u64,
    /// Buckets executed across all parallel batches.
    pub jobs: u64,
    /// Jobs that targeted one key range of a range-sharded relation.
    pub range_jobs: u64,
    /// Worker count the dispatcher runs with (1 = inline). Chosen by
    /// the caller or autotuned from the machine's parallelism.
    pub workers: u64,
}

/// Upper bound on the autotuned worker count: past this, lock and
/// scheduling overheads outweigh extra cores for every portfolio we
/// have measured.
pub const MAX_AUTO_WORKERS: usize = 32;

/// The machine's available parallelism (1 when unknown).
fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The autotuned worker count for a portfolio with `partitions`
/// independent partitions: the machine's available parallelism, clamped
/// to `[1, MAX_AUTO_WORKERS]` and capped at the partition count — more
/// workers than partitions can never be busy at once, and a one-partition
/// portfolio degenerates to inline sequential application. (Range-
/// sharded portfolios size by hand instead: one partition can then keep
/// many workers busy.)
pub fn auto_workers(partitions: usize) -> usize {
    hardware_parallelism()
        .clamp(1, MAX_AUTO_WORKERS)
        .min(partitions.max(1))
}

/// Union–find over dispatched relations: relations sharing any map
/// group — directly or transitively — merge into one partition. Returns
/// the relation → partition-id map (dense ids) and the partition count.
fn plan_partitions(server: &ViewServer) -> (FxHashMap<String, usize>, usize) {
    let relations: Vec<String> = server
        .dispatched_relations()
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut parent: Vec<usize> = (0..relations.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut group_owner: FxHashMap<usize, usize> = FxHashMap::default();
    for (ri, rel) in relations.iter().enumerate() {
        let groups = server
            .relation_groups(rel)
            .expect("dispatched relation has a plan");
        for &g in groups {
            match group_owner.get(&g) {
                Some(&owner) => {
                    let (a, b) = (find(&mut parent, ri), find(&mut parent, owner));
                    parent[a] = b;
                }
                None => {
                    group_owner.insert(g, ri);
                }
            }
        }
    }
    // Densify component representatives into partition ids.
    let mut dense: FxHashMap<usize, usize> = FxHashMap::default();
    let mut partition_of: FxHashMap<String, usize> = FxHashMap::default();
    for (ri, rel) in relations.iter().enumerate() {
        let root = find(&mut parent, ri);
        let next = dense.len();
        let id = *dense.entry(root).or_insert(next);
        partition_of.insert(rel.clone(), id);
    }
    (partition_of, dense.len())
}

/// Per-worker telemetry handles, interned once at construction so the
/// scoped per-batch workers never look a metric up by name.
struct WorkerMetrics {
    jobs: Arc<Counter>,
    busy: Arc<Counter>,
}

/// Bucket key: `(partition, key range)`; `usize::MAX` marks the
/// whole-partition bucket of an unsharded relation.
const NO_RANGE: usize = usize::MAX;

/// Parallel ingestion driver: buckets each batch by relation-group
/// partition — refined by key range for range-sharded relations — and
/// runs independent buckets concurrently on scoped std threads borrowing
/// the caller's event slice. See the module docs for the equivalence
/// argument.
pub struct ShardedDispatcher {
    server: Arc<ViewServer>,
    registry: Arc<MetricsRegistry>,
    workers: usize,
    /// Test-only: pretend the hardware parallelism is unlimited, so
    /// equivalence tests exercise real cross-thread execution on
    /// single-core CI runners.
    force_spawn: bool,
    /// relation name → partition id (dense, `0..partitions`).
    partition_of: FxHashMap<String, usize>,
    /// Number of partitions (connected components of group overlap).
    partitions: usize,
    /// relation name → `(partition column, ranges)` for relations the
    /// server range-sharded before this dispatcher was built.
    shard_info: FxHashMap<String, (usize, usize)>,
    /// Dispatch counters, registered in the server's metrics registry
    /// (`dbt_dispatch_*_total`) so [`DispatchReport`] and a scrape read
    /// the same atomics.
    batches: Arc<Counter>,
    events: Arc<Counter>,
    parallel_batches: Arc<Counter>,
    sequential_batches: Arc<Counter>,
    jobs: Arc<Counter>,
    range_jobs: Arc<Counter>,
    /// Events per bucket of parallel batches — how evenly the partition
    /// and range plans split real traffic.
    bucket_size: Arc<Histogram>,
    /// Per-worker counters, indexed by scoped-worker id.
    worker_metrics: Vec<WorkerMetrics>,
}

impl ShardedDispatcher {
    /// Build a dispatcher over a fully registered server. `workers` is
    /// the maximum number of concurrent scoped workers; `0` or `1`
    /// applies every batch inline. Registration (and any
    /// [`ViewServer::enable_range_sharding`] calls) must be complete:
    /// the partition and range plans are computed here, once.
    ///
    /// [`ViewServer::enable_range_sharding`]: crate::ViewServer::enable_range_sharding
    pub fn new(server: Arc<ViewServer>, workers: usize) -> ShardedDispatcher {
        let (partition_of, partitions) = plan_partitions(&server);
        ShardedDispatcher::build(server, workers, partition_of, partitions)
    }

    /// Build a dispatcher with the worker count autotuned from the
    /// machine ([`auto_workers`]): available parallelism, clamped and
    /// capped at the portfolio's partition count. The chosen size is
    /// visible as [`ShardedDispatcher::workers`] and in
    /// [`DispatchReport::workers`].
    pub fn new_auto(server: Arc<ViewServer>) -> ShardedDispatcher {
        let (partition_of, partitions) = plan_partitions(&server);
        let workers = auto_workers(partitions);
        ShardedDispatcher::build(server, workers, partition_of, partitions)
    }

    fn build(
        server: Arc<ViewServer>,
        workers: usize,
        partition_of: FxHashMap<String, usize>,
        partitions: usize,
    ) -> ShardedDispatcher {
        let registry = Arc::clone(server.metrics());
        let workers = workers.max(1);
        let shard_info = partition_of
            .keys()
            .filter_map(|rel| server.range_sharding(rel).map(|s| (rel.clone(), s)))
            .collect();
        let counter = |name: &str, help: &str| registry.counter(name, help, &[]);
        let worker_metrics = (0..workers)
            .map(|w| {
                let worker = w.to_string();
                WorkerMetrics {
                    jobs: registry.counter(
                        "dbt_worker_jobs_total",
                        "Bucket jobs one scoped worker ran",
                        &[("worker", &worker)],
                    ),
                    busy: registry.counter(
                        "dbt_worker_busy_nanos_total",
                        "Nanoseconds one scoped worker spent running jobs",
                        &[("worker", &worker)],
                    ),
                }
            })
            .collect();
        let dispatcher = ShardedDispatcher {
            workers,
            force_spawn: false,
            partition_of,
            partitions,
            shard_info,
            batches: counter("dbt_dispatch_batches_total", "Batches accepted"),
            events: counter(
                "dbt_dispatch_events_total",
                "Events accepted (including events no view listens to)",
            ),
            parallel_batches: counter(
                "dbt_dispatch_parallel_batches_total",
                "Batches that ran on scoped workers",
            ),
            sequential_batches: counter(
                "dbt_dispatch_sequential_batches_total",
                "Batches applied inline (one occupied bucket, or 1 effective worker)",
            ),
            jobs: counter("dbt_dispatch_jobs_total", "Buckets executed as jobs"),
            range_jobs: counter(
                "dbt_dispatch_range_jobs_total",
                "Jobs that targeted one key range of a range-sharded relation",
            ),
            bucket_size: registry.histogram(
                "dbt_shard_bucket_size_events",
                "Events per bucket of parallel batches",
                &[],
                Unit::Count,
            ),
            worker_metrics,
            server,
            registry,
        };
        dispatcher
            .registry
            .gauge(
                "dbt_dispatch_workers",
                "Worker count the dispatcher runs with (1 = inline)",
                &[],
            )
            .set(dispatcher.workers as i64);
        dispatcher
            .registry
            .gauge(
                "dbt_dispatch_partitions",
                "Independent partitions the portfolio splits into",
                &[],
            )
            .set(dispatcher.partitions as i64);
        dispatcher
    }

    /// The wrapped server.
    pub fn server(&self) -> &Arc<ViewServer> {
        &self.server
    }

    /// Configured worker count (1 = inline).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of independent partitions the registered portfolio
    /// splits into — the maximum parallelism an *unsharded* batch can
    /// reach (range-sharded relations multiply this by their ranges).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Partition id of one relation (None when no view listens to it).
    pub fn partition_of(&self, relation: &str) -> Option<usize> {
        self.partition_of.get(relation).copied()
    }

    /// Test knob: treat the hardware parallelism as unlimited, so the
    /// configured worker count always spawns. Bit-exactness tests use
    /// this to exercise real cross-thread execution on single-core CI
    /// runners; production callers should leave it off — capping at the
    /// machine's parallelism is what keeps an over-provisioned worker
    /// count from regressing below the sequential path.
    pub fn set_force_spawn(&mut self, on: bool) {
        self.force_spawn = on;
    }

    /// Dispatch counters so far.
    pub fn report(&self) -> DispatchReport {
        DispatchReport {
            batches: self.batches.get(),
            events: self.events.get(),
            parallel_batches: self.parallel_batches.get(),
            sequential_batches: self.sequential_batches.get(),
            jobs: self.jobs.get(),
            range_jobs: self.range_jobs.get(),
            workers: self.workers as u64,
        }
    }

    /// Apply a batch, running independent buckets concurrently on
    /// scoped workers that borrow `batch` directly. Returns the total
    /// number of deliveries, exactly as the sequential
    /// [`ViewServer::apply_batch`] would.
    ///
    /// [`ViewServer::apply_batch`]: crate::ViewServer::apply_batch
    pub fn apply_batch(&self, batch: &[Event]) -> Result<usize> {
        let base = self.server.trace_recorder().admit(batch.len() as u64);
        self.apply_batch_at(batch, base)
    }

    /// [`ShardedDispatcher::apply_batch`] against admission sequences
    /// the caller already allocated (see [`ViewServer::apply_batch_at`])
    /// — the entry point for the net ingest queue, which stamps seqs at
    /// admission so queue-wait spans correlate with dispatch spans.
    ///
    /// [`ViewServer::apply_batch_at`]: crate::ViewServer::apply_batch_at
    pub fn apply_batch_at(&self, batch: &[Event], base: u64) -> Result<usize> {
        self.batches.inc();
        self.events.add(batch.len() as u64);

        // Workers beyond the hardware's parallelism only add scheduling
        // overhead. A host without spare cores short-circuits straight
        // to the sequential path — before even the bucketing scan — so
        // an over-provisioned worker count costs one `min` per batch.
        let effective = if self.force_spawn {
            self.workers
        } else {
            self.workers.min(hardware_parallelism())
        };
        if effective <= 1 {
            self.sequential_batches.inc();
            return self.apply_inline(batch, base);
        }

        // Bucket the events: index lists per (partition, key range),
        // original order preserved within each bucket. Events on
        // relations no view listens to are dropped — sequential
        // apply_batch ignores them identically.
        let mut buckets: Vec<((usize, usize), Vec<u32>)> = Vec::new();
        for (i, event) in batch.iter().enumerate() {
            let Some(&p) = self.partition_of.get(&event.relation) else {
                continue;
            };
            let range = match self.shard_info.get(&event.relation) {
                Some(&(column, ranges)) => event
                    .tuple
                    .0
                    .get(column)
                    .map_or(0, |v| range_of_value(v, ranges)),
                None => NO_RANGE,
            };
            match buckets.iter_mut().find(|(k, _)| *k == (p, range)) {
                Some((_, v)) => v.push(i as u32),
                None => buckets.push(((p, range), vec![i as u32])),
            }
        }

        // One occupied bucket: the scoped machinery has nothing to win —
        // apply the original slice in place on this thread, uncloned,
        // with no queue round-trip.
        if buckets.len() <= 1 {
            self.sequential_batches.inc();
            return self.apply_inline(batch, base);
        }

        self.parallel_batches.inc();
        self.jobs.add(buckets.len() as u64);
        for ((_, range), bucket) in &buckets {
            self.bucket_size.record(bucket.len() as u64);
            if *range != NO_RANGE {
                self.range_jobs.inc();
            }
        }

        // Scoped zero-copy execution: workers claim buckets off a shared
        // cursor and run them directly against the borrowed batch. The
        // caller's thread is worker 0; only `threads - 1` are spawned.
        let threads = effective.min(buckets.len());
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<usize>>>> =
            buckets.iter().map(|_| Mutex::new(None)).collect();
        let timed = self.registry.enabled();
        let trace = self.server.trace_recorder();
        let tracing = trace.is_enabled();
        let worker = |w: usize, metrics: &WorkerMetrics| {
            let mut ctx = self.server.make_ctx();
            let tid = if tracing {
                TraceRecorder::current_tid()
            } else {
                0
            };
            loop {
                let b = next.fetch_add(1, Ordering::Relaxed);
                let Some(((partition, range), bucket)) = buckets.get(b) else {
                    break;
                };
                metrics.jobs.inc();
                let started = (timed || tracing).then(Instant::now);
                let result = self
                    .server
                    .apply_batch_indices_at(batch, bucket, base, &mut ctx);
                if let Some(started) = started {
                    if timed {
                        metrics.busy.add(started.elapsed().as_nanos() as u64);
                    }
                    if tracing {
                        // One dispatch span per sampled event of the
                        // bucket, all sharing the job's window: the
                        // bucket *is* the unit the worker ran.
                        let dur_ns = started.elapsed().as_nanos() as u64;
                        for &i in bucket.iter() {
                            let seq = base + i as u64;
                            if trace.sampled(seq) {
                                trace.record(TraceSpan {
                                    seq,
                                    layer: LAYER_DISPATCH.to_string(),
                                    detail: match *range {
                                        NO_RANGE => {
                                            format!("partition={partition} worker={w}")
                                        }
                                        r => format!("partition={partition} range={r} worker={w}"),
                                    },
                                    start_ns: trace.ns_of(started),
                                    dur_ns,
                                    tid,
                                });
                            }
                        }
                    }
                }
                *results[b].lock() = Some(result);
            }
            self.server.return_ctx(ctx);
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..threads)
                .map(|w| {
                    let metrics = &self.worker_metrics[w];
                    scope.spawn(move || worker(w, metrics))
                })
                .collect();
            worker(0, &self.worker_metrics[0]);
            for handle in handles {
                let _ = handle.join();
            }
        });

        // Ascending bucket order gives a deterministic error choice:
        // the earliest bucket's. A job a panicked worker never finished
        // (a library invariant bug, not a data error) must not silently
        // fold into a partial Ok.
        let mut deliveries = 0usize;
        let mut failure: Option<Error> = None;
        let mut lost = 0usize;
        for cell in &results {
            match cell.lock().take() {
                Some(Ok(d)) => deliveries += d,
                Some(Err(e)) => {
                    if failure.is_none() {
                        failure = Some(e);
                    }
                }
                None => lost += 1,
            }
        }
        if lost > 0 && failure.is_none() {
            return Err(Error::Runtime(format!(
                "sharded dispatch lost {lost} of {} bucket jobs (worker panicked)",
                results.len()
            )));
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(deliveries),
        }
    }

    /// Apply a whole batch inline on the caller's thread (the
    /// single-bucket / no-spare-cores path), recording a dispatch span
    /// per sampled event so traced events keep their dispatch layer
    /// even when no worker pool ran.
    fn apply_inline(&self, batch: &[Event], base: u64) -> Result<usize> {
        let trace = self.server.trace_recorder();
        if !trace.is_enabled() {
            return self.server.apply_batch_at(batch, base);
        }
        let started = Instant::now();
        let result = self.server.apply_batch_at(batch, base);
        let dur_ns = started.elapsed().as_nanos() as u64;
        let tid = TraceRecorder::current_tid();
        for i in 0..batch.len() {
            let seq = base + i as u64;
            if trace.sampled(seq) {
                trace.record(TraceSpan {
                    seq,
                    layer: LAYER_DISPATCH.to_string(),
                    detail: "inline worker=0".to_string(),
                    start_ns: trace.ns_of(started),
                    dur_ns,
                    tid,
                });
            }
        }
        result
    }

    /// Drain an [`EventSource`] through the sharded path, pulling
    /// batches of at most `batch_size` events.
    pub fn run_source(
        &self,
        source: &mut dyn EventSource,
        batch_size: usize,
    ) -> Result<IngestReport> {
        drain_source(source, batch_size, |batch| self.apply_batch(&batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{tuple, Catalog, ColumnType, Schema};

    /// Four disjoint single-relation views + one view joining two of the
    /// relations, so the partition structure is non-trivial.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for rel in ["A", "B", "C", "D"] {
            c.add(Schema::new(
                rel,
                vec![("X", ColumnType::Int), ("Y", ColumnType::Int)],
            ));
        }
        c
    }

    fn server() -> Arc<ViewServer> {
        let mut s = ViewServer::new(&catalog());
        for rel in ["A", "B", "C", "D"] {
            s.register(
                &format!("sum_{rel}"),
                &format!("select Y, sum(X) from {rel} group by Y"),
            )
            .unwrap();
        }
        // Ties A and B into one partition.
        s.register("ab", "select count(*) from A, B where A.Y = B.Y")
            .unwrap();
        Arc::new(s)
    }

    /// A dispatcher that always spawns its configured workers, so the
    /// parallel path is exercised even on a single-core test runner.
    fn spawning_dispatcher(server: Arc<ViewServer>, workers: usize) -> ShardedDispatcher {
        let mut d = ShardedDispatcher::new(server, workers);
        d.set_force_spawn(true);
        d
    }

    fn mixed_batch(n: i64) -> Vec<Event> {
        (0..n)
            .flat_map(|i| {
                ["A", "B", "C", "D"]
                    .into_iter()
                    .map(move |rel| Event::insert(rel, tuple![i, i % 5]))
            })
            .collect()
    }

    #[test]
    fn partition_planning_merges_overlapping_relations() {
        let dispatcher = ShardedDispatcher::new(server(), 4);
        // A and B overlap through the join view; C and D are alone.
        assert_eq!(dispatcher.partitions(), 3);
        assert_eq!(
            dispatcher.partition_of("A"),
            dispatcher.partition_of("B"),
            "join view merges A and B"
        );
        assert_ne!(dispatcher.partition_of("C"), dispatcher.partition_of("D"));
        assert_eq!(dispatcher.partition_of("NOPE"), None);
    }

    #[test]
    fn sharded_ingestion_matches_sequential_exactly() {
        let sequential = server();
        let sharded = spawning_dispatcher(server(), 4);
        let batch = mixed_batch(40);
        let expected = sequential.apply_batch(&batch).unwrap();
        let got = sharded.apply_batch(&batch).unwrap();
        assert_eq!(got, expected);
        let a = sequential.snapshot_all();
        let b = sharded.server().snapshot_all();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.rows, y.rows, "{} diverged", x.name);
            assert_eq!(x.events_processed, y.events_processed);
        }
        let report = sharded.report();
        assert_eq!(report.batches, 1);
        assert_eq!(report.parallel_batches, 1);
        assert_eq!(report.jobs, 3, "one job per occupied partition");
        assert_eq!(report.range_jobs, 0, "no relation is range-sharded");
    }

    #[test]
    fn single_partition_batches_fall_back_to_inline_sequential() {
        let sharded = spawning_dispatcher(server(), 4);
        let batch: Vec<Event> = (0..10i64)
            .flat_map(|i| {
                [
                    Event::insert("A", tuple![i, i % 3]),
                    Event::insert("B", tuple![i % 3, i]),
                ]
            })
            .collect();
        sharded.apply_batch(&batch).unwrap();
        let report = sharded.report();
        assert_eq!(report.sequential_batches, 1, "A+B share a partition");
        assert_eq!(report.parallel_batches, 0);
    }

    #[test]
    fn capped_effective_workers_apply_inline_without_forcing() {
        // Without the test knob, the worker count is capped at the
        // machine's parallelism; on any machine a cap of 1 must mean
        // pure inline application.
        let mut sharded = ShardedDispatcher::new(server(), 16);
        sharded.workers = 1; // simulate the capped outcome directly
        sharded.apply_batch(&mixed_batch(10)).unwrap();
        let report = sharded.report();
        assert_eq!(report.sequential_batches, 1);
        assert_eq!(report.jobs, 0);
    }

    #[test]
    fn auto_worker_count_is_clamped_and_capped_at_partitions() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Caps at the partition count however many cores exist.
        assert_eq!(auto_workers(1), 1);
        assert!(auto_workers(2) <= 2);
        // Never zero, never above MAX_AUTO_WORKERS or the core count.
        assert!(auto_workers(0) >= 1);
        let wide = auto_workers(10_000);
        assert!(wide >= 1 && wide <= MAX_AUTO_WORKERS.min(cores));

        // The dispatcher surfaces the autotuned size in its report.
        let dispatcher = ShardedDispatcher::new_auto(server());
        assert_eq!(dispatcher.workers(), auto_workers(dispatcher.partitions()));
        assert_eq!(dispatcher.report().workers, dispatcher.workers() as u64);
        // And it still computes the exact sequential answer.
        let batch = mixed_batch(8);
        let reference = server();
        let expected = reference.apply_batch(&batch).unwrap();
        assert_eq!(dispatcher.apply_batch(&batch).unwrap(), expected);
        assert_eq!(reference.snapshot_all(), dispatcher.server().snapshot_all());
    }

    #[test]
    fn no_pool_means_every_batch_is_sequential() {
        let sharded = spawning_dispatcher(server(), 1);
        assert_eq!(sharded.workers(), 1);
        sharded.apply_batch(&mixed_batch(10)).unwrap();
        let report = sharded.report();
        assert_eq!(report.sequential_batches, 1);
        assert_eq!(report.jobs, 0);
    }

    #[test]
    fn unknown_relations_are_dropped_like_sequential_ingestion() {
        let sharded = spawning_dispatcher(server(), 4);
        let mut batch = mixed_batch(5);
        batch.push(Event::insert("UNKNOWN", tuple![1i64]));
        let deliveries = sharded.apply_batch(&batch).unwrap();
        let sequential = server();
        assert_eq!(deliveries, sequential.apply_batch(&batch).unwrap());
    }

    #[test]
    fn bad_events_surface_the_earliest_bucket_error() {
        let sharded = spawning_dispatcher(server(), 4);
        let mut batch = mixed_batch(3);
        batch.push(Event::insert("C", tuple![1i64])); // wrong arity
        assert!(sharded.apply_batch(&batch).is_err());
    }
}
