//! Archived-stream replay: a CSV [`EventSource`] and its writer.
//!
//! The paper's standalone processor can be fed from an "archived stream";
//! this module defines the archive format and replays it. One event per
//! line:
//!
//! ```text
//! # comment lines and blank lines are skipped
//! RELATION,insert,v1,v2,...
//! RELATION,delete,v1,v2,...
//! ```
//!
//! `+`/`-` are accepted as shorthand for `insert`/`delete`. Values are
//! parsed by position against the relation's schema in the catalog
//! (`INT`, `FLOAT`, `VARCHAR`, `BOOLEAN`, `DATE` as `YYYY-MM-DD`, and
//! `NULL`). Strings are written raw — embedded commas or newlines are
//! rejected by [`write_csv`] rather than quoted, keeping the format
//! trivially splittable by any tool.

use std::io::{BufRead, BufReader, Cursor, Write};
use std::path::Path;

use dbtoaster_common::{
    Catalog, ColumnType, Error, Event, EventBatch, EventKind, EventSource, Result, Tuple, Value,
};

/// An [`EventSource`] replaying an archived CSV stream. Parsing is lazy:
/// each `next_batch` call reads at most `max_events` lines, so archives
/// larger than memory replay fine.
pub struct CsvReplaySource<R> {
    name: String,
    reader: R,
    catalog: Catalog,
    line_number: usize,
    exhausted: bool,
}

impl CsvReplaySource<BufReader<std::fs::File>> {
    /// Replay an archive file.
    pub fn from_path(path: impl AsRef<Path>, catalog: &Catalog) -> Result<Self> {
        let path = path.as_ref();
        let file = std::fs::File::open(path)
            .map_err(|e| Error::Runtime(format!("cannot open archive {}: {e}", path.display())))?;
        Ok(CsvReplaySource::from_reader(
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            BufReader::new(file),
            catalog,
        ))
    }
}

impl CsvReplaySource<Cursor<String>> {
    /// Replay an in-memory archive (tests, examples, network payloads).
    pub fn from_string(
        name: impl Into<String>,
        archive: impl Into<String>,
        catalog: &Catalog,
    ) -> Self {
        CsvReplaySource::from_reader(name, Cursor::new(archive.into()), catalog)
    }
}

impl<R: BufRead> CsvReplaySource<R> {
    /// Replay from any buffered reader.
    pub fn from_reader(name: impl Into<String>, reader: R, catalog: &Catalog) -> Self {
        CsvReplaySource {
            name: name.into(),
            reader,
            catalog: catalog.clone(),
            line_number: 0,
            exhausted: false,
        }
    }

    fn parse_line(&self, line: &str) -> Result<Event> {
        let err =
            |msg: String| Error::Runtime(format!("{}:{}: {msg}", self.name, self.line_number));
        let mut fields = line.split(',');
        let relation = fields
            .next()
            .filter(|r| !r.trim().is_empty())
            .ok_or_else(|| err("missing relation".into()))?
            .trim();
        let kind = match fields.next().map(str::trim) {
            Some("insert") | Some("+") => EventKind::Insert,
            Some("delete") | Some("-") => EventKind::Delete,
            other => {
                return Err(err(format!(
                    "bad operation {:?} (expected insert/delete/+/-)",
                    other.unwrap_or("")
                )))
            }
        };
        let schema = self
            .catalog
            .get(relation)
            .ok_or_else(|| err(format!("unknown relation '{relation}'")))?;
        let raw: Vec<&str> = fields.collect();
        if raw.len() != schema.arity() {
            return Err(err(format!(
                "relation {} expects {} values, got {}",
                schema.name,
                schema.arity(),
                raw.len()
            )));
        }
        let values: Vec<Value> = raw
            .iter()
            .zip(&schema.columns)
            .map(|(field, column)| {
                parse_value(field.trim(), column.ty).ok_or_else(|| {
                    err(format!(
                        "bad {} value '{field}' for column {}",
                        column.ty, column.name
                    ))
                })
            })
            .collect::<Result<_>>()?;
        Ok(Event {
            relation: schema.name.clone(),
            kind,
            tuple: Tuple::new(values),
        })
    }
}

impl<R: BufRead> EventSource for CsvReplaySource<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_batch(&mut self, max_events: usize) -> Result<Option<EventBatch>> {
        if self.exhausted {
            return Ok(None);
        }
        let mut batch = EventBatch::with_capacity(max_events.min(4096));
        let mut line = String::new();
        while batch.len() < max_events.max(1) {
            line.clear();
            let read = self
                .reader
                .read_line(&mut line)
                .map_err(|e| Error::Runtime(format!("{}: read failed: {e}", self.name)))?;
            if read == 0 {
                self.exhausted = true;
                break;
            }
            self.line_number += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            batch.push(self.parse_line(trimmed)?);
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }
}

fn parse_value(field: &str, ty: ColumnType) -> Option<Value> {
    if field.eq_ignore_ascii_case("null") {
        return Some(Value::Null);
    }
    match ty {
        ColumnType::Int => field.parse::<i64>().ok().map(Value::Int),
        ColumnType::Float => field.parse::<f64>().ok().map(Value::Float),
        ColumnType::Str => Some(Value::Str(field.to_string())),
        ColumnType::Bool => match field.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Some(Value::Bool(true)),
            "false" | "f" | "0" => Some(Value::Bool(false)),
            _ => None,
        },
        ColumnType::Date => {
            let mut parts = field.splitn(3, '-');
            let y = parts.next()?.parse::<i32>().ok()?;
            let m = parts.next()?.parse::<u32>().ok()?;
            let d = parts.next()?.parse::<u32>().ok()?;
            if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
                return None;
            }
            Some(Value::date(y, m, d))
        }
    }
}

fn format_value(value: &Value, out: &mut String) -> Result<()> {
    match value {
        Value::Int(i) => out.push_str(&i.to_string()),
        // `{}` on f64 prints the shortest representation that round-trips.
        Value::Float(f) => out.push_str(&f.to_string()),
        Value::Str(s) => {
            // A string spelled "null" would replay as Value::Null (the
            // parser checks the NULL literal before the column type), so
            // it is as unarchivable as embedded separators.
            if s.contains(',') || s.contains('\n') || s.trim() != s {
                return Err(Error::Runtime(format!(
                    "string value {s:?} cannot be archived (commas/newlines/padding unsupported)"
                )));
            }
            if s.eq_ignore_ascii_case("null") {
                return Err(Error::Runtime(format!(
                    "string value {s:?} cannot be archived (would replay as NULL)"
                )));
            }
            out.push_str(s);
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Date(_) => out.push_str(&value.to_string()),
        Value::Null => out.push_str("NULL"),
    }
    Ok(())
}

/// Archive events in the replayable CSV format (the inverse of
/// [`CsvReplaySource`]).
pub fn write_csv<'a>(
    events: impl IntoIterator<Item = &'a Event>,
    out: &mut impl Write,
) -> Result<()> {
    let mut line = String::new();
    for event in events {
        line.clear();
        line.push_str(&event.relation);
        line.push(',');
        line.push_str(event.kind.label());
        for value in event.tuple.iter() {
            line.push(',');
            format_value(value, &mut line)?;
        }
        line.push('\n');
        out.write_all(line.as_bytes())
            .map_err(|e| Error::Runtime(format!("archive write failed: {e}")))?;
    }
    Ok(())
}

/// Convenience: archive events into a `String`.
pub fn to_csv_string<'a>(events: impl IntoIterator<Item = &'a Event>) -> Result<String> {
    let mut buf = Vec::new();
    write_csv(events, &mut buf)?;
    String::from_utf8(buf).map_err(|e| Error::Runtime(format!("archive not UTF-8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{tuple, Schema, UpdateStream};

    fn catalog() -> Catalog {
        Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "TRADES",
                vec![
                    ("SYM", ColumnType::Str),
                    ("PRICE", ColumnType::Float),
                    ("OK", ColumnType::Bool),
                    ("DAY", ColumnType::Date),
                ],
            ))
    }

    #[test]
    fn parses_comments_blanks_and_both_operation_spellings() {
        let archive = "\
# archived stream
R,insert,1,2

r,+,3,4
R,-,1,2
TRADES,delete,IBM,101.25,true,2009-08-24
";
        let mut source = CsvReplaySource::from_string("test.csv", archive, &catalog());
        let batch = source.next_batch(100).unwrap().unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.events[0], Event::insert("R", tuple![1i64, 2i64]));
        assert_eq!(batch.events[1], Event::insert("R", tuple![3i64, 4i64]));
        assert_eq!(batch.events[2], Event::delete("R", tuple![1i64, 2i64]));
        let trade = &batch.events[3];
        assert_eq!(trade.kind, EventKind::Delete);
        assert_eq!(trade.tuple[0], Value::str("IBM"));
        assert_eq!(trade.tuple[1], Value::Float(101.25));
        assert_eq!(trade.tuple[2], Value::Bool(true));
        assert_eq!(trade.tuple[3], Value::date(2009, 8, 24));
        assert!(source.next_batch(100).unwrap().is_none());
    }

    #[test]
    fn batches_respect_max_events() {
        let archive = (0..10).map(|i| format!("R,+,{i},0\n")).collect::<String>();
        let mut source = CsvReplaySource::from_string("test.csv", archive, &catalog());
        let mut sizes = Vec::new();
        while let Some(batch) = source.next_batch(4).unwrap() {
            sizes.push(batch.len());
        }
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("R,+,1\n", "expects 2 values"),
            ("R,sideways,1,2\n", "bad operation"),
            ("NOPE,+,1,2\n", "unknown relation"),
            ("R,+,one,2\n", "bad INT value"),
            ("TRADES,+,IBM,1.0,maybe,2009-08-24\n", "bad BOOLEAN value"),
            ("TRADES,+,IBM,1.0,true,2009-13-24\n", "bad DATE value"),
        ];
        for (line, expected) in cases {
            let archive = format!("# header\nR,+,1,2\n{line}");
            let mut source = CsvReplaySource::from_string("bad.csv", archive, &catalog());
            let got = source.next_batch(100).unwrap_err().to_string();
            assert!(got.contains(expected), "{line:?}: {got}");
            assert!(
                got.contains("bad.csv:3"),
                "{line:?} should blame line 3: {got}"
            );
        }
    }

    #[test]
    fn write_then_replay_round_trips() {
        let mut stream = UpdateStream::new();
        stream.push(Event::insert("R", tuple![1i64, -7i64]));
        stream.push(Event::insert(
            "TRADES",
            Tuple::new(vec![
                Value::str("MSFT"),
                Value::Float(30.125),
                Value::Bool(false),
                Value::date(2009, 1, 2),
            ]),
        ));
        stream.push(Event::delete("R", tuple![1i64, -7i64]));
        let archive = to_csv_string(&stream).unwrap();
        let mut source = CsvReplaySource::from_string("rt.csv", archive, &catalog());
        let replayed = source.drain(100).unwrap();
        assert_eq!(replayed, stream);
    }

    #[test]
    fn unarchivable_strings_are_rejected() {
        let event = Event::insert(
            "TRADES",
            Tuple::new(vec![
                Value::str("A,B"),
                Value::Float(1.0),
                Value::Bool(true),
                Value::date(2009, 1, 2),
            ]),
        );
        assert!(to_csv_string(std::iter::once(&event)).is_err());
        // Strings spelled like the NULL literal would replay as NULL.
        let null_like = Event::insert(
            "TRADES",
            Tuple::new(vec![
                Value::str("null"),
                Value::Float(1.0),
                Value::Bool(true),
                Value::date(2009, 1, 2),
            ]),
        );
        let err = to_csv_string(std::iter::once(&null_like)).unwrap_err();
        assert!(err.to_string().contains("NULL"), "{err}");
    }
}
