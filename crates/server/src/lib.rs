//! Multi-query view server.
//!
//! The paper's standalone mode is not a one-query toy: it is a query
//! processor maintaining *many* standing aggregate views at once,
//! "accepting input over a network interface or archived stream". This
//! crate is that deployment shape for the reproduction:
//!
//! * [`ViewServer`] — compiles N standing queries against one shared
//!   [`Catalog`] into N trigger programs and routes each incoming event
//!   only to the views whose triggers reference the event's relation
//!   (a relation → interested-views dispatch index, built at
//!   registration time).
//! * **Batched ingestion** — [`ViewServer::apply_batch`] partitions an
//!   event batch across the dispatch index and takes each affected
//!   engine's write lock once per batch (calling the engine's
//!   `process_batch`) instead of once per event.
//! * **Pluggable sources** — [`ViewServer::run_source`] drains any
//!   [`EventSource`] (an archived CSV stream via [`CsvReplaySource`], a
//!   workload generator adapter, eventually a network socket) through
//!   the batched path.
//!
//! Reads are consistent: [`ViewServer::snapshot_all`] and
//! [`ViewServer::apply_batch`] acquire the per-view locks in one global
//! order (registration order), so a snapshot never observes half of a
//! batch. Ingestion methods take `&self`, so an `Arc<ViewServer>` can be
//! fed from one thread while other threads read results — the
//! multi-view generalization of the runtime's single-query
//! `StandaloneServer`.

pub mod csv;

use std::sync::Arc;

use parking_lot::RwLock;

use dbtoaster_common::{
    Catalog, Error, Event, EventSource, FxHashMap, FxHashSet, Result, Tuple, Value,
};
use dbtoaster_compiler::{compile_sql, CompileOptions, TriggerProgram};
use dbtoaster_runtime::{Engine, ProfileReport, ResultRow};

pub use csv::{to_csv_string, write_csv, CsvReplaySource};

/// Stable handle to a registered view (its registration index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewId(pub usize);

/// One registered standing query.
struct View {
    name: String,
    sql: String,
    /// Stream relations this view's triggers react to (the dispatch key).
    relations: FxHashSet<String>,
    program: TriggerProgram,
    engine: Arc<RwLock<Engine>>,
}

/// A consistent per-view result capture from [`ViewServer::snapshot_all`].
#[derive(Debug, Clone)]
pub struct ViewSnapshot {
    pub name: String,
    pub columns: Vec<String>,
    pub rows: Vec<ResultRow>,
    pub events_processed: u64,
}

/// Counters returned by [`ViewServer::run_source`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Batches pulled from the source.
    pub batches: usize,
    /// Events pulled from the source.
    pub events: usize,
    /// Sum over views of events delivered to that view (one event
    /// delivered to k interested views counts k times).
    pub deliveries: usize,
}

/// A server maintaining many standing aggregate views over one shared
/// update stream.
pub struct ViewServer {
    catalog: Catalog,
    views: Vec<View>,
    /// relation name → indices of views whose triggers reference it.
    dispatch: FxHashMap<String, Vec<usize>>,
}

impl ViewServer {
    /// Create an empty server over a catalog of stream relations.
    pub fn new(catalog: &Catalog) -> ViewServer {
        ViewServer {
            catalog: catalog.clone(),
            views: Vec::new(),
            dispatch: FxHashMap::default(),
        }
    }

    /// The shared catalog every view is compiled against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Register a standing query under `name` with full recursive
    /// compilation.
    pub fn register(&mut self, name: &str, sql: &str) -> Result<ViewId> {
        self.register_with(name, sql, &CompileOptions::full())
    }

    /// Register a standing query with explicit compile options.
    pub fn register_with(
        &mut self,
        name: &str,
        sql: &str,
        options: &CompileOptions,
    ) -> Result<ViewId> {
        if self.views.iter().any(|v| v.name == name) {
            return Err(Error::Runtime(format!(
                "view '{name}' is already registered"
            )));
        }
        let program = compile_sql(sql, &self.catalog, options)?;
        let engine = Engine::new(&program)?;
        let relations: FxHashSet<String> = program
            .triggers
            .iter()
            .map(|t| t.relation.clone())
            .collect();
        let id = self.views.len();
        for rel in &relations {
            self.dispatch.entry(rel.clone()).or_default().push(id);
        }
        self.views.push(View {
            name: name.to_string(),
            sql: sql.to_string(),
            relations,
            program,
            engine: Arc::new(RwLock::new(engine)),
        });
        Ok(ViewId(id))
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when no view is registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Registered view names, in registration order.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.iter().map(|v| v.name.as_str()).collect()
    }

    /// Handle of a view by name.
    pub fn id(&self, name: &str) -> Option<ViewId> {
        self.views.iter().position(|v| v.name == name).map(ViewId)
    }

    /// Name of a view by handle.
    pub fn name_of(&self, id: ViewId) -> Option<&str> {
        self.views.get(id.0).map(|v| v.name.as_str())
    }

    /// The SQL a view was registered with.
    pub fn sql_of(&self, name: &str) -> Result<&str> {
        Ok(self.resolve(name)?.sql.as_str())
    }

    /// The compiled trigger program of a view.
    pub fn program(&self, name: &str) -> Result<&TriggerProgram> {
        Ok(&self.resolve(name)?.program)
    }

    /// Names of views whose triggers reference `relation` (dispatch
    /// introspection). Relation names are upper-case throughout the
    /// runtime — the `Event` constructors normalize them — and dispatch
    /// matches exactly, so this lookup is deliberately not normalized:
    /// it answers precisely the question `apply` asks.
    pub fn interested_views(&self, relation: &str) -> Vec<&str> {
        match self.dispatch.get(relation) {
            Some(ids) => ids.iter().map(|&i| self.views[i].name.as_str()).collect(),
            None => Vec::new(),
        }
    }

    /// All relations at least one view listens to.
    pub fn dispatched_relations(&self) -> Vec<&str> {
        let mut rels: Vec<&str> = self.dispatch.keys().map(String::as_str).collect();
        rels.sort_unstable();
        rels
    }

    fn resolve(&self, name: &str) -> Result<&View> {
        self.views
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| Error::Runtime(format!("unknown view '{name}'")))
    }

    /// Apply one event, routed only to interested views. Returns the
    /// number of views the event was delivered to. Dispatch matches the
    /// event's relation exactly; the `Event` constructors upper-case
    /// relation names, so hand-built events must do the same.
    pub fn apply(&self, event: &Event) -> Result<usize> {
        let Some(ids) = self.dispatch.get(&event.relation) else {
            return Ok(0);
        };
        for &i in ids {
            self.views[i].engine.write().on_event(event)?;
        }
        Ok(ids.len())
    }

    /// Apply a whole batch through the dispatch index: each affected
    /// view's write lock is taken once, and each view processes only the
    /// sub-sequence of events whose relation its triggers reference
    /// (in stream order). Returns the total number of deliveries.
    ///
    /// Locks are acquired for all affected views up front, in
    /// registration order, so concurrent [`ViewServer::snapshot_all`]
    /// calls see either none or all of the batch.
    pub fn apply_batch(&self, batch: &[Event]) -> Result<usize> {
        // Accepts any event slice; `&EventBatch` coerces via Deref, and
        // `UpdateStream::events.chunks(n)` feeds it zero-copy.
        let mut affected: Vec<usize> = Vec::new();
        let mut seen_relations: Vec<&str> = Vec::new();
        for event in batch {
            if seen_relations.contains(&event.relation.as_str()) {
                continue;
            }
            seen_relations.push(&event.relation);
            if let Some(ids) = self.dispatch.get(&event.relation) {
                for &i in ids {
                    if !affected.contains(&i) {
                        affected.push(i);
                    }
                }
            }
        }
        if affected.is_empty() {
            return Ok(0);
        }
        // Global lock order (ascending view index) — same order as
        // snapshot_all — keeps the cut consistent and deadlock-free.
        affected.sort_unstable();
        let mut guards: Vec<(usize, parking_lot::RwLockWriteGuard<'_, Engine>)> = affected
            .iter()
            .map(|&i| (i, self.views[i].engine.write()))
            .collect();

        let mut deliveries = 0usize;
        for (i, guard) in &mut guards {
            let view = &self.views[*i];
            deliveries += guard.process_batch(
                batch
                    .iter()
                    .filter(|e| view.relations.contains(&e.relation)),
            )?;
        }
        Ok(deliveries)
    }

    /// Drain an [`EventSource`] through the batched ingestion path,
    /// pulling batches of at most `batch_size` events.
    pub fn run_source(
        &self,
        source: &mut dyn EventSource,
        batch_size: usize,
    ) -> Result<IngestReport> {
        let mut report = IngestReport::default();
        while let Some(batch) = source.next_batch(batch_size)? {
            report.batches += 1;
            report.events += batch.len();
            report.deliveries += self.apply_batch(&batch)?;
        }
        Ok(report)
    }

    /// The current result rows of one view.
    pub fn result(&self, name: &str) -> Result<Vec<ResultRow>> {
        Ok(self.resolve(name)?.engine.read().result())
    }

    /// The single value of a scalar view.
    pub fn scalar(&self, name: &str) -> Result<Value> {
        Ok(self.resolve(name)?.engine.read().scalar_result())
    }

    /// Output column names of one view, in `SELECT` order.
    pub fn column_names(&self, name: &str) -> Result<Vec<String>> {
        Ok(self.resolve(name)?.engine.read().column_names())
    }

    /// Read-only snapshot of one internal map of a view (the ad-hoc
    /// query interface).
    pub fn map_snapshot(&self, name: &str, map: &str) -> Result<Option<Vec<(Tuple, Value)>>> {
        Ok(self.resolve(name)?.engine.read().map_snapshot(map))
    }

    /// Events delivered to (and absorbed by) one view so far.
    pub fn events_processed(&self, name: &str) -> Result<u64> {
        Ok(self.resolve(name)?.engine.read().events_processed())
    }

    /// Profiling report of one view.
    pub fn profile(&self, name: &str) -> Result<ProfileReport> {
        Ok(self.resolve(name)?.engine.read().profile())
    }

    /// Profiling reports of every view, in registration order.
    pub fn profiles(&self) -> Vec<(String, ProfileReport)> {
        self.views
            .iter()
            .map(|v| (v.name.clone(), v.engine.read().profile()))
            .collect()
    }

    /// Approximate bytes held by all views' maps.
    pub fn memory_bytes(&self) -> usize {
        self.views
            .iter()
            .map(|v| v.engine.read().memory_bytes())
            .sum()
    }

    /// A consistent capture of every view's result.
    ///
    /// All read locks are acquired (in registration order) before any
    /// result is read, so the snapshot reflects one cut of the event
    /// stream even while another thread is applying batches.
    pub fn snapshot_all(&self) -> Vec<ViewSnapshot> {
        let guards: Vec<parking_lot::RwLockReadGuard<'_, Engine>> =
            self.views.iter().map(|v| v.engine.read()).collect();
        self.views
            .iter()
            .zip(&guards)
            .map(|(v, g)| ViewSnapshot {
                name: v.name.clone(),
                columns: g.column_names(),
                rows: g.result(),
                events_processed: g.events_processed(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{
        tuple, ColumnType, EventBatch, EventKind, Schema, StreamSource, UpdateStream,
    };

    fn rst_catalog() -> Catalog {
        Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
            .with(Schema::new(
                "T",
                vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
            ))
    }

    const FIGURE2: &str = "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C";

    fn three_view_server() -> ViewServer {
        let mut server = ViewServer::new(&rst_catalog());
        server.register("figure2", FIGURE2).unwrap();
        server
            .register("r_by_b", "select B, sum(A) from R group by B")
            .unwrap();
        server
            .register("s_count", "select count(*) from S")
            .unwrap();
        server
    }

    #[test]
    fn registration_builds_the_dispatch_index() {
        let server = three_view_server();
        assert_eq!(server.len(), 3);
        assert_eq!(server.interested_views("R"), vec!["figure2", "r_by_b"]);
        // Dispatch is exact-match on the normalized (upper-case) names
        // the Event constructors produce; both APIs agree on misses.
        assert!(server.interested_views("r").is_empty());
        assert_eq!(
            server
                .apply(&Event {
                    relation: "r".into(),
                    kind: EventKind::Insert,
                    tuple: tuple![1i64, 1i64]
                })
                .unwrap(),
            0
        );
        assert_eq!(server.interested_views("S"), vec!["figure2", "s_count"]);
        assert_eq!(server.interested_views("T"), vec!["figure2"]);
        assert_eq!(server.dispatched_relations(), vec!["R", "S", "T"]);
        assert_eq!(server.id("figure2"), Some(ViewId(0)));
        assert_eq!(server.name_of(ViewId(2)), Some("s_count"));
        assert!(server.sql_of("r_by_b").unwrap().contains("group by B"));
    }

    #[test]
    fn duplicate_names_and_bad_sql_are_rejected() {
        let mut server = three_view_server();
        assert!(server
            .register("figure2", "select count(*) from R")
            .is_err());
        assert!(server
            .register("broken", "select nothing from NOWHERE")
            .is_err());
        assert_eq!(server.len(), 3, "failed registrations leave no residue");
    }

    #[test]
    fn events_are_routed_only_to_interested_views() {
        let server = three_view_server();
        assert_eq!(
            server
                .apply(&Event::insert("R", tuple![2i64, 1i64]))
                .unwrap(),
            2
        );
        assert_eq!(
            server
                .apply(&Event::insert("T", tuple![3i64, 10i64]))
                .unwrap(),
            1
        );
        assert_eq!(
            server
                .apply(&Event::insert("UNKNOWN", tuple![1i64]))
                .unwrap(),
            0
        );
        assert_eq!(server.events_processed("figure2").unwrap(), 2);
        assert_eq!(server.events_processed("r_by_b").unwrap(), 1);
        assert_eq!(server.events_processed("s_count").unwrap(), 0);
    }

    #[test]
    fn apply_batch_matches_per_event_application() {
        let per_event = three_view_server();
        let batched = three_view_server();
        let events = vec![
            Event::insert("R", tuple![2i64, 1i64]),
            Event::insert("S", tuple![1i64, 3i64]),
            Event::insert("T", tuple![3i64, 10i64]),
            Event::insert("R", tuple![7i64, 1i64]),
            Event::delete("R", tuple![7i64, 1i64]),
        ];
        let mut per_event_deliveries = 0;
        for e in &events {
            per_event_deliveries += per_event.apply(e).unwrap();
        }
        let batch: EventBatch = events.into();
        let batched_deliveries = batched.apply_batch(&batch).unwrap();
        assert_eq!(batched_deliveries, per_event_deliveries);
        for name in ["figure2", "r_by_b", "s_count"] {
            assert_eq!(
                per_event.result(name).unwrap(),
                batched.result(name).unwrap(),
                "view {name} diverged between ingestion paths"
            );
            assert_eq!(
                per_event.events_processed(name).unwrap(),
                batched.events_processed(name).unwrap()
            );
        }
        assert_eq!(batched.scalar("figure2").unwrap(), Value::Int(20));
    }

    #[test]
    fn run_source_drains_a_stream_source_in_batches() {
        let server = three_view_server();
        let mut stream = UpdateStream::new();
        for i in 0..25i64 {
            stream.push(Event::insert("R", tuple![i, i % 3]));
            stream.push(Event::insert("S", tuple![i % 3, i]));
        }
        let mut source = StreamSource::new("unit", stream);
        let report = server.run_source(&mut source, 8).unwrap();
        assert_eq!(report.events, 50);
        assert_eq!(report.batches, 50usize.div_ceil(8));
        // R events reach figure2 + r_by_b, S events reach figure2 + s_count.
        assert_eq!(report.deliveries, 100);
        assert_eq!(server.events_processed("figure2").unwrap(), 50);
        assert_eq!(server.events_processed("r_by_b").unwrap(), 25);
        assert_eq!(server.scalar("s_count").unwrap(), Value::Int(25));
    }

    #[test]
    fn snapshot_all_reports_every_view_consistently() {
        let server = three_view_server();
        server
            .apply_batch(&[
                Event::insert("R", tuple![2i64, 1i64]),
                Event::insert("S", tuple![1i64, 3i64]),
                Event::insert("T", tuple![3i64, 10i64]),
            ])
            .unwrap();
        let snapshots = server.snapshot_all();
        assert_eq!(snapshots.len(), 3);
        assert_eq!(snapshots[0].name, "figure2");
        assert_eq!(snapshots[0].rows[0].values[0], Value::Int(20));
        assert_eq!(snapshots[2].events_processed, 1);
    }

    #[test]
    fn concurrent_feeder_and_snapshot_readers_agree_at_the_end() {
        let server = Arc::new(three_view_server());
        let feeder = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                for chunk in 0..20i64 {
                    let batch: EventBatch = (0..10i64)
                        .map(|i| Event::insert("R", tuple![chunk * 10 + i, chunk % 4]))
                        .collect();
                    server.apply_batch(&batch).unwrap();
                }
            })
        };
        // Both figure2 and r_by_b listen to R and batches are applied
        // under all affected locks at once, so any consistent snapshot
        // sees them at the same event count.
        for _ in 0..50 {
            let snap = server.snapshot_all();
            assert_eq!(snap[0].events_processed, snap[1].events_processed);
        }
        feeder.join().unwrap();
        assert_eq!(server.events_processed("r_by_b").unwrap(), 200);
        let rows = server.result("r_by_b").unwrap();
        assert_eq!(rows.len(), 4, "four groups of chunk % 4");
    }

    #[test]
    fn profiles_cover_every_view() {
        let server = three_view_server();
        server
            .apply(&Event::insert("R", tuple![1i64, 1i64]))
            .unwrap();
        let profiles = server.profiles();
        assert_eq!(profiles.len(), 3);
        assert!(profiles[0].1.statement_count > 0);
        assert_eq!(server.profile("s_count").unwrap().events_processed, 0);
        assert!(server.profile("nope").is_err());
        assert!(server.memory_bytes() > 0);
    }
}
