//! Multi-query view server over a shared map store.
//!
//! The paper's standalone mode is not a one-query toy: it is a query
//! processor maintaining *many* standing aggregate views at once,
//! "accepting input over a network interface or archived stream". This
//! crate is that deployment shape for the reproduction:
//!
//! * [`ViewServer`] — compiles N standing queries against one shared
//!   [`Catalog`] into N trigger programs and routes each incoming event
//!   only to the views whose triggers reference the event's relation.
//!   Registration precomputes a **relation plan** per dispatched
//!   relation: the interested views, their combined lock plan, and a
//!   cached slot-resolution table ([`dbtoaster_runtime::FramePlan`]), so
//!   the hot ingestion paths neither search nor allocate.
//! * **Shared map store** — registration deduplicates maps *across*
//!   views by canonical fingerprint: every `BASE_*` multiplicity map and
//!   every alpha-equivalent sub-aggregate is materialized once, with the
//!   first registering view designated its **maintainer**. Other views
//!   bind the same storage read-only: their own statements targeting the
//!   shared map are skipped, so a shared map is written once per event,
//!   not once per interested view.
//! * **Per-group locking, sharded by relation** — base-relation maps
//!   live in per-*relation* groups, derived maps in per-*view* groups,
//!   each behind its own lock. Two views sharing `BASE_BIDS` contend
//!   only on that relation's lock, not on each other's derived state. A
//!   batch locks exactly the groups its affected views touch, in
//!   ascending group order; [`ViewServer::snapshot_all`] read-locks
//!   every group in the same order, so snapshots are one consistent cut
//!   of the stream and acquisition is deadlock-free. Batches over
//!   disjoint group sets ingest in parallel — [`ShardedDispatcher`]
//!   drives exactly that with a worker pool.
//! * **Batched ingestion and a single-event fast path** —
//!   [`ViewServer::apply_batch`] takes each affected group's write lock
//!   once per batch; [`ViewServer::apply`] runs a dedicated one-event
//!   path over the event's cached relation plan, reusing pooled
//!   [`ApplyCtx`] buffers, so per-event cost tracks the *interested*
//!   views, not the whole portfolio. Within the batch each event runs
//!   through a **dependency-ordered stage schedule** across its
//!   interested views: hierarchy retract statements (stage `-1`, which
//!   must observe every input pre-event) run for every view first, then
//!   all delta (`Update`) statements — shared maps are written exactly
//!   once, by their maintainer — then hierarchy rebuild and legacy
//!   re-evaluation statements (stage `+1`), which thereby observe fully
//!   post-event inputs. Stages a relation's views never compiled are
//!   not walked at all: an all-flat portfolio runs exactly one pass per
//!   event.
//! * **Pluggable sources** — [`ViewServer::run_source`] drains any
//!   [`EventSource`] (an archived CSV stream via [`CsvReplaySource`], a
//!   workload generator adapter, eventually a network socket) through
//!   the batched path.
//!
//! Ingestion methods take `&self`, so an `Arc<ViewServer>` can be fed
//! from many threads while other threads read results; per-view
//! statistics are atomics, updated while the group write locks are held
//! so consistent snapshots still observe counts and maps moving
//! together.
//!
//! ## Sharing semantics (and one caveat)
//!
//! Two maps are shared when their definitions are alpha-equivalent
//! ([`dbtoaster_compiler::MapDecl::fingerprint`]); a map's contents are a
//! pure function of its definition over the event stream, so every
//! sharer reads exactly what it would have maintained privately. One
//! shape is excluded at registration: when a view's *delta-stage*
//! statement reads a map in a trigger for a relation the map itself
//! depends on (a self-join on the update path), the read must observe
//! the map *pre-event* — in the view's own engine the map's update is
//! ordered after the read, but a shared map's maintainer would have
//! updated it earlier in the same event. Such maps are materialized
//! privately for that view (it can still *provide* them to later
//! hazard-free sharers). Statements outside the delta stage need no
//! such guard: hierarchy retracts (stage `-1`) run before every view's
//! deltas and so always see pre-event state, while rebuilds and legacy
//! `Replace` re-evaluations (stage `+1`) run after them and always see
//! post-event state — the stage schedule delivers both, whichever view
//! maintains the shared map.

pub mod audit;
pub mod csv;
pub mod shard;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use dbtoaster_common::{
    Catalog, Error, Event, EventBatch, EventKind, EventSource, FxHashMap, FxHashSet, Result, Tuple,
    Value,
};
use dbtoaster_compiler::{compile_sql, CompileOptions, Stage, TriggerProgram, STAGE_DELTA};
use dbtoaster_runtime::{
    apply_event_statements, assemble_result, lower_program, ordered_fallback, range_of_value,
    result_column_names, EventScratch, ExecProgram, FramePlan, LockWaitMetrics, MapRead,
    MapRegistration, MapWrite, ProfileReport, ResultRow, SharedMapStore, StatementPhase, StmtHooks,
    StmtProfile, StmtSpans, ViewBinding,
};
use dbtoaster_telemetry::{
    Counter, Gauge, Histogram, MetricsRegistry, SlowEventRing, TraceRecorder, TraceSpan, Unit,
    DEFAULT_TRACE_RING_CAPACITY, LAYER_LOCK, LAYER_STAGE,
};

pub use audit::{
    AuditHandle, AuditMismatch, ShadowAuditor, CHECK_CHAIN, CHECK_REPLAY,
    DEFAULT_AUDIT_RING_CAPACITY,
};
pub use csv::{to_csv_string, write_csv, CsvReplaySource};
pub use shard::{auto_workers, DispatchReport, ShardedDispatcher, MAX_AUTO_WORKERS};

/// Stable handle to a registered view (its registration index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewId(pub usize);

/// Pre-event capture of a sampled audit, taken under the group write
/// locks before the event runs (see [`ViewServer::audit_pre`]).
struct AuditPre {
    view: usize,
    seq: u64,
    event: Event,
    pre: Vec<Vec<(Tuple, Value)>>,
    events_before: u64,
}

/// One per-(relation, kind) ingestion counter of a view. The set of
/// trigger keys is fixed at registration, so updates are plain atomic
/// adds — no lock, no map insertion — performed while the group write
/// locks are held so snapshots observe counts and maps move together.
struct TriggerStat {
    relation: String,
    kind: EventKind,
    count: AtomicU64,
    nanos: AtomicU64,
}

/// Per-stage cost counters, one pair per scheduled statement stage
/// (interned registry-wide by stage label, so every relation plan with
/// a stage `-1` pass feeds the same series).
#[derive(Clone)]
struct StageMetrics {
    nanos: Arc<Counter>,
    events: Arc<Counter>,
}

/// The server's metric handles, registered once into a shared
/// [`MetricsRegistry`] — hot paths go through `Arc` handles, never a
/// by-name lookup. Histogram recording is off until
/// [`ViewServer::set_metrics_enabled`]; counters and gauges always
/// record (several replace pre-existing bookkeeping and must stay
/// exact).
/// Footprint gauges of one store slot (labels fixed at allocation).
struct SlotGauges {
    bytes: Arc<Gauge>,
    entries: Arc<Gauge>,
    index_bytes: Arc<Gauge>,
}

struct ServerMetrics {
    registry: Arc<MetricsRegistry>,
    /// Per-event apply latency: the single-event fast path end to end,
    /// and each event's share of the batched path.
    apply_event: Arc<Histogram>,
    /// Whole-batch apply latency (lock acquisition excluded, matching
    /// the trigger-stat clock).
    apply_batch: Arc<Histogram>,
    /// Events per applied batch.
    batch_size: Arc<Histogram>,
    /// Store footprint, refreshed by [`ViewServer::refresh_store_metrics`]
    /// (which [`ViewServer::store_report`] routes through).
    store_bytes: Arc<Gauge>,
    store_bytes_if_unshared: Arc<Gauge>,
    store_entries: Arc<Gauge>,
    /// Per-slot footprint gauges, indexed by slot id; extended as
    /// registration allocates slots.
    slot_gauges: Mutex<Vec<SlotGauges>>,
    /// Slow-event ring, when configured
    /// ([`ViewServer::set_slow_event_ring`]).
    slow: Option<Arc<SlowEventRing>>,
    /// `dbt_ordered_fallback_total{reason}` counters, aligned with
    /// [`ordered_fallback::REASONS`]. The engine keeps process-global
    /// relaxed atomics on its hot paths; [`ViewServer::store_report`]
    /// folds their growth into these registry counters by delta.
    ordered_fallback: Vec<Arc<Counter>>,
    /// Last engine counter values already claimed into the registry.
    ordered_fallback_seen: Mutex<[u64; ordered_fallback::REASONS.len()]>,
    /// Per-view last-claimed statement-profile stage totals
    /// (`(stage, nanos, runs)` rows, indexed by view id), mirrored into
    /// `dbt_stmt_nanos_total{view,stage}` / `dbt_stmt_runs_total{view,stage}`
    /// by delta at scrape time ([`ViewServer::store_report`]).
    stmt_seen: Mutex<Vec<Vec<(Stage, u64, u64)>>>,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let registry = Arc::new(MetricsRegistry::new());
        ServerMetrics {
            apply_event: registry.histogram(
                "dbt_apply_event_seconds",
                "Per-event apply latency through the stage schedule",
                &[],
                Unit::Nanos,
            ),
            apply_batch: registry.histogram(
                "dbt_apply_batch_seconds",
                "Whole-batch apply latency under the batch's group locks",
                &[],
                Unit::Nanos,
            ),
            batch_size: registry.histogram(
                "dbt_batch_size_events",
                "Events per applied batch",
                &[],
                Unit::Count,
            ),
            store_bytes: registry.gauge(
                "dbt_store_bytes",
                "Approximate bytes held by the shared store (each map once)",
                &[],
            ),
            store_bytes_if_unshared: registry.gauge(
                "dbt_store_bytes_if_unshared",
                "What per-view private maps would hold (each map once per sharer)",
                &[],
            ),
            store_entries: registry.gauge(
                "dbt_store_entries",
                "Live entries across all stored maps",
                &[],
            ),
            slot_gauges: Mutex::new(Vec::new()),
            slow: None,
            ordered_fallback: ordered_fallback::REASONS
                .iter()
                .map(|reason| {
                    registry.counter(
                        "dbt_ordered_fallback_total",
                        "Ordered-plan precondition failures that fell back to a scan",
                        &[("reason", reason)],
                    )
                })
                .collect(),
            ordered_fallback_seen: Mutex::new([0; ordered_fallback::REASONS.len()]),
            stmt_seen: Mutex::new(Vec::new()),
            registry,
        }
    }

    /// Claim the growth of the engine's process-global ordered-fallback
    /// counters into the registry. Deltas are tracked per server; with
    /// several servers in one process, whichever syncs first claims a
    /// given increment.
    fn sync_ordered_fallbacks(&self) {
        let counts = ordered_fallback::counts();
        let mut seen = self.ordered_fallback_seen.lock();
        for (i, &now) in counts.iter().enumerate() {
            let delta = now.saturating_sub(seen[i]);
            if delta > 0 {
                self.ordered_fallback[i].add(delta);
                seen[i] = now;
            }
        }
    }

    fn stage_metrics(&self, stage: Stage) -> StageMetrics {
        let label = stage.to_string();
        StageMetrics {
            nanos: self.registry.counter(
                "dbt_stage_nanos_total",
                "Cumulative nanoseconds spent executing statements of one stage",
                &[("stage", &label)],
            ),
            events: self.registry.counter(
                "dbt_stage_events_total",
                "Events that executed a pass of one stage",
                &[("stage", &label)],
            ),
        }
    }
}

/// One registered standing query.
struct View {
    name: String,
    sql: String,
    program: TriggerProgram,
    /// Lowered program, rebound from view-local map ids to store slots.
    exec: ExecProgram,
    /// This view's slots/maintainer flags/lock plan in the shared store.
    binding: ViewBinding,
    /// Cached slot-resolution table over `binding.groups` (the view's
    /// own read plan, for `result`/`profile`).
    plan: FramePlan,
    /// Store slot → skip statements targeting it (non-maintained shares).
    skip: Vec<bool>,
    /// Per (relation, kind): how many statements the dedup skips each
    /// time that trigger fires (static; × trigger count = writes saved).
    skipped_per_trigger: FxHashMap<(String, EventKind), u64>,
    compile_time: Duration,
    /// Events delivered to (and absorbed by) this view. A registry
    /// counter (`dbt_view_events_total{view=...}`), so the scraped
    /// series and every snapshot/profile read the same atomic.
    events_processed: Arc<Counter>,
    /// Fixed-key per-trigger counters (one per compiled trigger).
    trigger_stats: Vec<TriggerStat>,
    /// Cumulative per-statement self-profile (nanos + runs, relaxed
    /// atomics shared across ingestion workers). Credited whenever
    /// histograms are enabled; surfaced through `profile`/`profile_report`
    /// and delta-synced into `dbt_stmt_*_total{view,stage}` at scrape.
    stmt_profile: Arc<StmtProfile>,
    /// Freshness watermark: highest admission sequence this view has
    /// absorbed (`dbt_view_watermark_seq{view}`). Advanced with
    /// [`Gauge::set_max`], so concurrent shard workers only ratchet it
    /// forward.
    watermark: Arc<Gauge>,
}

impl View {
    /// Credit `n` absorbed events and `nanos` of processing time to the
    /// (relation, kind) trigger. Called with the group write locks held.
    fn record(&self, relation: &str, kind: EventKind, n: u64, nanos: u64) {
        self.events_processed.add(n);
        if let Some(stat) = self
            .trigger_stats
            .iter()
            .find(|s| s.kind == kind && s.relation == relation)
        {
            stat.count.fetch_add(n, Ordering::Relaxed);
            stat.nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    fn trigger_count(&self, relation: &str, kind: EventKind) -> u64 {
        self.trigger_stats
            .iter()
            .find(|s| s.kind == kind && s.relation == relation)
            .map(|s| s.count.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Everything the server precomputes about one dispatched relation: the
/// views interested in its events (ascending registration order, so a
/// shared map's maintainer runs before its sharers), their combined lock
/// plan, the cached frame table over it, and the dependency-ordered
/// stage schedule. Rebuilt on registration, read-only during ingestion —
/// the single-event fast path is one hash lookup away from its locks.
struct RelationPlan {
    views: Vec<usize>,
    groups: Vec<usize>,
    frame: FramePlan,
    /// The event's execution schedule: every distinct statement stage
    /// any interested view compiled for this relation, ascending, each
    /// with the views that actually have statements at that stage. The
    /// delta stage (`0`) always lists every interested view — it doubles
    /// as the delivery-detection pass — while extra stages (hierarchy
    /// retracts at `-1`, rebuilds / legacy `Replace` re-evaluations at
    /// `+1`) exist only when some view needs them, so an all-flat
    /// portfolio runs exactly one pass per event and a mixed portfolio
    /// pays for the views that need more, not for every view.
    stages: Vec<(Stage, Vec<usize>)>,
    /// Cost counters aligned with `stages` (interned registry-wide by
    /// stage label, resolved at plan-rebuild time so the hot path never
    /// looks a metric up by name).
    stage_metrics: Vec<StageMetrics>,
    /// Key-range sharding of this relation, when enabled
    /// ([`ViewServer::enable_range_sharding`]).
    shard: Option<RangeShardPlan>,
    /// Events applied for this relation (`dbt_relation_events_total`),
    /// the ingest-side half of the feed-lag gauge: lag = admitted −
    /// applied. A counter, so it records even with histograms disabled.
    events: Arc<Counter>,
}

/// Server-side key-range sharding state of one relation: the partition
/// column, the store's shard id, and one cached [`FramePlan`] per range
/// (a single replica group each), so range-routed ingestion neither
/// searches nor allocates.
struct RangeShardPlan {
    /// Partition column index into the relation's tuples.
    column: usize,
    /// Number of key ranges.
    ranges: usize,
    /// Shard id in the store's shard table.
    shard: usize,
    /// Per-range frame plans over the replica groups.
    frames: Vec<FramePlan>,
}

impl RangeShardPlan {
    /// Deterministic range of one event tuple — the same placement rule
    /// ([`range_of_value`]) shard-time redistribution used, so an
    /// event's triggers always find their keyed state in the replica
    /// the event is routed to.
    fn route(&self, tuple: &Tuple) -> usize {
        tuple
            .0
            .get(self.column)
            .map_or(0, |v| range_of_value(v, self.ranges))
    }
}

impl RelationPlan {
    /// Credit a flat (single-stage) plan's whole-event cost to its one
    /// stage. Multi-stage plans time each stage inside
    /// `run_event_stages`; a flat plan — the common case — reuses the
    /// caller's existing clock and pays no extra clock reads.
    fn credit_flat_stage(&self, nanos: u64) {
        if let [metrics] = self.stage_metrics.as_slice() {
            metrics.nanos.add(nanos);
            metrics.events.inc();
        }
    }
}

/// Per-event tracing context threaded through the scheduling loop: the
/// recorder, the event's admission sequence, and the hashed thread id
/// its spans are attributed to. Built only for sampled events, so the
/// unsampled path never formats or clocks anything.
struct TraceSpanCtx<'a> {
    recorder: &'a TraceRecorder,
    seq: u64,
    tid: u64,
}

/// Reusable per-caller ingestion state: the statement-evaluation scratch
/// buffers plus the staging vector for per-view counters. [`ViewServer`]
/// keeps a pool so plain [`ViewServer::apply`] / [`apply_batch`] calls
/// allocate nothing in steady state; callers that ingest from their own
/// threads (the sharded dispatcher's workers) own one ctx each and use
/// [`ViewServer::apply_with`] / [`ViewServer::apply_batch_with`].
///
/// [`apply_batch`]: ViewServer::apply_batch
#[derive(Default)]
pub struct ApplyCtx {
    scratch: EventScratch,
    /// Staged (view, relation, kind, absorbed) counter rows of the
    /// current batch, flushed into the views' atomics at the end.
    counts: Vec<(usize, String, EventKind, u64)>,
    /// Scratch for the batch lock plan (union of relation groups).
    groups: Vec<usize>,
    /// Views of the current single event that absorbed it (fast path).
    delivered: Vec<usize>,
}

/// A consistent per-view result capture from [`ViewServer::snapshot_all`].
/// Compares exactly (float values by IEEE equality), so two ingestion
/// paths over the same stream can be asserted bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewSnapshot {
    pub name: String,
    pub columns: Vec<String>,
    pub rows: Vec<ResultRow>,
    pub events_processed: u64,
}

/// Counters returned by [`ViewServer::run_source`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Batches pulled from the source.
    pub batches: usize,
    /// Events pulled from the source.
    pub events: usize,
    /// Sum over views of events delivered to that view (one event
    /// delivered to k interested views counts k times).
    pub deliveries: usize,
}

impl IngestReport {
    /// Merge another report into this one (a stream drained in several
    /// legs, e.g. a network feed's first frame plus the rest).
    pub fn absorb(&mut self, other: IngestReport) {
        self.batches += other.batches;
        self.events += other.events;
        self.deliveries += other.deliveries;
    }
}

/// Drain an [`EventSource`] through `apply`, pulling batches of at most
/// `batch_size` events and accumulating the [`IngestReport`].
///
/// This is the one drain loop every ingestion path shares:
/// [`ViewServer::run_source`] applies batches directly (with a pooled
/// context), [`ShardedDispatcher::run_source`] routes them through the
/// partitioned worker pool, and the network server's feed plane
/// enqueues them on its ingest queue — a new [`EventSource`] (an
/// archived CSV stream, a live socket) plugs into all of them without
/// duplicating the loop. Batches are handed to `apply` by value so
/// consumers that move them across threads pay no copy.
pub fn drain_source(
    source: &mut dyn EventSource,
    batch_size: usize,
    mut apply: impl FnMut(EventBatch) -> Result<usize>,
) -> Result<IngestReport> {
    let mut report = IngestReport::default();
    while let Some(batch) = source.next_batch(batch_size)? {
        report.batches += 1;
        report.events += batch.len();
        report.deliveries += apply(batch)?;
    }
    Ok(report)
}

/// Visit the selected events of a batch in order: all of them, or the
/// `indices` subset (the batched ingestion paths accept either).
fn for_each_selected<'b>(
    batch: &'b [Event],
    indices: Option<&[u32]>,
    mut f: impl FnMut(usize, &'b Event),
) {
    match indices {
        Some(ix) => {
            for &i in ix {
                f(i as usize, &batch[i as usize]);
            }
        }
        None => {
            for (i, event) in batch.iter().enumerate() {
                f(i, event);
            }
        }
    }
}

/// One deduplicated map in the [`StoreReport`].
#[derive(Debug, Clone)]
pub struct StoreMapReport {
    /// Store slot id.
    pub slot: usize,
    /// `(view name, view-local map name)` for every sharer, maintainer
    /// first.
    pub aliases: Vec<(String, String)>,
    /// Name of the view whose statements maintain the map.
    pub maintainer: String,
    pub arity: usize,
    pub is_base_relation: bool,
    /// Number of views bound to the slot.
    pub sharers: usize,
    /// Live entries.
    pub entries: usize,
    /// Approximate bytes (counted once, however many views share it).
    pub bytes: usize,
    /// Bytes of the map's secondary indexes (slice patterns + ordered
    /// cumulative indexes), already included in `bytes`.
    pub index_bytes: usize,
}

/// Shared-store introspection: what deduplicated, who maintains what,
/// and how much memory/write traffic the sharing saves.
#[derive(Debug, Clone, Default)]
pub struct StoreReport {
    /// Every stored map, in slot order.
    pub maps: Vec<StoreMapReport>,
    /// Approximate bytes of the store (each map once).
    pub total_bytes: usize,
    /// What the same views would hold without sharing (each map once
    /// per sharer) — the N× baseline.
    pub bytes_if_unshared: usize,
    /// Number of slots with more than one sharer.
    pub shared_slots: usize,
    /// Statement executions skipped so far because a map's maintainer
    /// already performs them (the per-event write-amplification saving).
    pub dedup_skipped_statements: u64,
}

/// A server maintaining many standing aggregate views over one shared
/// update stream, with materialized maps deduplicated across views.
pub struct ViewServer {
    catalog: Catalog,
    views: Vec<View>,
    /// relation name → precomputed dispatch plan (interested views,
    /// lock plan, frame table).
    dispatch: FxHashMap<String, RelationPlan>,
    store: SharedMapStore,
    /// Cached frame table over every group (snapshots, reports).
    all_plan: FramePlan,
    /// Pool of reusable ingestion contexts for `apply`/`apply_batch`.
    ctx_pool: Mutex<Vec<ApplyCtx>>,
    /// Metric handles over the server-wide registry.
    metrics: ServerMetrics,
    /// Event-flow trace recorder. Always constructed (admission
    /// sequencing and watermarks rely on its counter) but disabled by
    /// default, so the hot paths pay one relaxed load per event span
    /// site until tracing is switched on.
    trace: Arc<TraceRecorder>,
    /// Shadow auditor: sampled oracle re-execution of live events.
    /// Always constructed but disabled by default — the hot paths pay
    /// one relaxed load per event until auditing is switched on.
    audit: Arc<ShadowAuditor>,
}

impl ViewServer {
    /// Create an empty server over a catalog of stream relations.
    pub fn new(catalog: &Catalog) -> ViewServer {
        let metrics = ServerMetrics::new();
        let mut store = SharedMapStore::new();
        store.set_lock_wait_metrics(LockWaitMetrics {
            read: metrics.registry.histogram(
                "dbt_lock_wait_seconds",
                "Group-lock plan acquisition wait",
                &[("mode", "read")],
                Unit::Nanos,
            ),
            write: metrics.registry.histogram(
                "dbt_lock_wait_seconds",
                "Group-lock plan acquisition wait",
                &[("mode", "write")],
                Unit::Nanos,
            ),
        });
        ViewServer {
            catalog: catalog.clone(),
            views: Vec::new(),
            dispatch: FxHashMap::default(),
            store,
            all_plan: FramePlan::default(),
            ctx_pool: Mutex::new(Vec::new()),
            audit: Arc::new(ShadowAuditor::new(
                DEFAULT_AUDIT_RING_CAPACITY,
                Arc::clone(&metrics.registry),
            )),
            metrics,
            trace: Arc::new(TraceRecorder::new(DEFAULT_TRACE_RING_CAPACITY)),
        }
    }

    /// The event-flow trace recorder shared by every ingestion layer.
    /// Enable it (and pick a sampling rate) to capture queue/dispatch/
    /// lock/stage/statement spans; export with
    /// [`dbtoaster_telemetry::chrome_trace_json`].
    pub fn trace_recorder(&self) -> &Arc<TraceRecorder> {
        &self.trace
    }

    /// The shadow auditor: enable it (and pick a sampling rate) to
    /// re-run a sample of live events through the interpreter oracle
    /// and verify the maintained views bit-exactly. See
    /// [`audit::ShadowAuditor`].
    pub fn auditor(&self) -> &Arc<ShadowAuditor> {
        &self.audit
    }

    /// The server-wide metrics registry every layer records into. Wrap
    /// the server in an `Arc` and hand clones of this to the scrape
    /// endpoint or the wire stats plane.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics.registry
    }

    /// Enable or disable latency-histogram recording (counters and
    /// gauges always record). Off by default: the disabled hot path
    /// pays a single branch per record site.
    pub fn set_metrics_enabled(&self, on: bool) {
        self.metrics.registry.set_enabled(on);
    }

    /// Capture events at or above the ring's threshold into a bounded
    /// slow-event ring (configure before wrapping the server in an
    /// `Arc`). Active regardless of the histogram gate — it is opt-in
    /// by construction.
    pub fn set_slow_event_ring(&mut self, ring: Arc<SlowEventRing>) {
        self.metrics.slow = Some(ring);
    }

    /// The configured slow-event ring, if any.
    pub fn slow_event_ring(&self) -> Option<&Arc<SlowEventRing>> {
        self.metrics.slow.as_ref()
    }

    /// The shared catalog every view is compiled against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Register a standing query under `name` with full recursive
    /// compilation.
    pub fn register(&mut self, name: &str, sql: &str) -> Result<ViewId> {
        self.register_with(name, sql, &CompileOptions::full())
    }

    /// Register a standing query with explicit compile options. Maps of
    /// the new view whose canonical fingerprints match already-stored
    /// maps are *not* materialized again: the view binds the existing
    /// storage and leaves its maintenance to the map's maintainer view.
    /// Exception: a map this view must read *pre-event* — a delta
    /// statement reads it in a trigger for a relation the map itself
    /// depends on, the self-join shape — is materialized privately, so
    /// another view's earlier update within the same event can never
    /// leak into this view's delta.
    pub fn register_with(
        &mut self,
        name: &str,
        sql: &str,
        options: &CompileOptions,
    ) -> Result<ViewId> {
        if self.views.iter().any(|v| v.name == name) {
            return Err(Error::Runtime(format!(
                "view '{name}' is already registered"
            )));
        }
        let started = Instant::now();
        let program = compile_sql(sql, &self.catalog, options)?;
        let local = lower_program(&program)?;
        let id = self.views.len();

        // Describe every map to the store; dedupe is by fingerprint,
        // refused where a delta statement needs pre-event reads: in its
        // own engine the map's update is ordered after that read, but a
        // shared map's maintainer runs earlier in phase 1.
        // Only *delta-stage* reads are hazardous: hierarchy retract
        // statements (stage -1) run before every view's delta phase and
        // rebuild statements (stage +1) after it, so their pre-/post-
        // event visibility of a shared map is guaranteed by the stage
        // schedule no matter which view maintains the map.
        let needs_pre_event_read = |decl: &dbtoaster_compiler::MapDecl| {
            let input_relations = decl.definition.relations();
            program
                .triggers
                .iter()
                .filter(|t| input_relations.contains(&t.relation))
                .flat_map(|t| &t.statements)
                .any(|s| {
                    s.kind == dbtoaster_compiler::StatementKind::Update
                        && s.stage == STAGE_DELTA
                        && s.update.map_refs().contains(&decl.name)
                })
        };
        let registrations: Vec<MapRegistration> = program
            .maps
            .iter()
            .enumerate()
            .map(|(i, decl)| MapRegistration {
                name: decl.name.clone(),
                fingerprint: decl.fingerprint(),
                arity: decl.keys.len(),
                is_base_relation: decl.is_base_relation,
                patterns: local.patterns[i].clone(),
                ordered: local.ordered[i].clone(),
                shareable: !needs_pre_event_read(decl),
            })
            .collect();
        let binding = self.store.register_view(id, &registrations);
        let exec = local.with_remapped_maps(&binding.slots, self.store.slot_count());
        let skip = binding.skip_targets(self.store.slot_count());

        let mut skipped_per_trigger: FxHashMap<(String, EventKind), u64> = FxHashMap::default();
        let mut trigger_stats = Vec::new();
        for (key, trigger) in &exec.triggers {
            let skipped = trigger
                .statements
                .iter()
                .filter(|s| skip.get(s.target).copied().unwrap_or(false))
                .count() as u64;
            if skipped > 0 {
                skipped_per_trigger.insert(key.clone(), skipped);
            }
            trigger_stats.push(TriggerStat {
                relation: key.0.clone(),
                kind: key.1,
                count: AtomicU64::new(0),
                nanos: AtomicU64::new(0),
            });
        }

        // Dispatch: route events of each referenced relation here.
        let relations: FxHashSet<String> = program
            .triggers
            .iter()
            .map(|t| t.relation.clone())
            .collect();
        for rel in relations {
            let events = self.metrics.registry.counter(
                "dbt_relation_events_total",
                "Events applied for the relation (the feed-lag denominator)",
                &[("relation", &rel)],
            );
            self.dispatch
                .entry(rel)
                .or_insert_with(|| RelationPlan {
                    views: Vec::new(),
                    groups: Vec::new(),
                    frame: FramePlan::default(),
                    stages: Vec::new(),
                    stage_metrics: Vec::new(),
                    shard: None,
                    events,
                })
                .views
                .push(id);
        }
        let plan = self.store.plan(&binding.groups);
        let stmt_profile = Arc::new(StmtProfile::for_program(&exec));
        self.audit.register_view(id, name, program.clone());
        self.views.push(View {
            name: name.to_string(),
            sql: sql.to_string(),
            program,
            exec,
            binding,
            plan,
            skip,
            skipped_per_trigger,
            compile_time: started.elapsed(),
            events_processed: self.metrics.registry.counter(
                "dbt_view_events_total",
                "Events delivered to (and absorbed by) the view",
                &[("view", name)],
            ),
            trigger_stats,
            stmt_profile,
            watermark: self.metrics.registry.gauge(
                "dbt_view_watermark_seq",
                "Highest admission sequence the view has absorbed",
                &[("view", name)],
            ),
        });
        self.metrics.stmt_seen.lock().push(Vec::new());
        self.rebuild_plans();
        Ok(ViewId(id))
    }

    /// Recompute every cached dispatch plan. Registration-time only:
    /// a new view can extend a relation group another plan covers and
    /// grows the slot table every plan resolves against.
    fn rebuild_plans(&mut self) {
        for (relation, plan) in self.dispatch.iter_mut() {
            plan.groups.clear();
            for &i in &plan.views {
                plan.groups.extend(&self.views[i].binding.groups);
            }
            plan.groups.sort_unstable();
            plan.groups.dedup();
            plan.frame = self.store.plan(&plan.groups);
            // Range frames resolve against the store-wide slot table,
            // which later registrations grow; regenerate them so every
            // cached table is sized to the current slot count.
            if let Some(sp) = &mut plan.shard {
                sp.frames = (0..sp.ranges)
                    .map(|r| self.store.range_frame_plan(sp.shard, r))
                    .collect();
            }

            // Dependency-ordered stage schedule: the delta stage always
            // covers every interested view (it is also the pass that
            // detects deliveries); other stages list only the views
            // whose compiled triggers for this relation reach them.
            plan.stages.clear();
            plan.stages.push((STAGE_DELTA, plan.views.clone()));
            for &i in &plan.views {
                let view = &self.views[i];
                for kind in [EventKind::Insert, EventKind::Delete] {
                    let Some(trigger) = view.exec.trigger(relation, kind) else {
                        continue;
                    };
                    for statement in &trigger.statements {
                        let stage = statement.stage;
                        if stage == STAGE_DELTA {
                            continue;
                        }
                        match plan.stages.iter_mut().find(|(s, _)| *s == stage) {
                            Some((_, views)) => {
                                if !views.contains(&i) {
                                    views.push(i);
                                }
                            }
                            None => plan.stages.push((stage, vec![i])),
                        }
                    }
                }
            }
            plan.stages.sort_by_key(|(stage, _)| *stage);
            plan.stage_metrics = plan
                .stages
                .iter()
                .map(|(stage, _)| self.metrics.stage_metrics(*stage))
                .collect();
        }
        for view in &mut self.views {
            view.plan = self.store.plan(&view.binding.groups);
        }
        self.all_plan = self.store.plan(&self.store.all_groups());

        // Per-slot footprint gauges for any slot this registration
        // allocated (labels are fixed at allocation: the slot id and the
        // maintainer's name for the map).
        let mut slot_gauges = self.metrics.slot_gauges.lock();
        for slot in slot_gauges.len()..self.store.slot_count() {
            let meta = self.store.slot(slot);
            let slot_label = slot.to_string();
            let map_name = meta.aliases.first().map(|(_, n)| n.as_str()).unwrap_or("?");
            let labels = [("slot", slot_label.as_str()), ("map", map_name)];
            slot_gauges.push(SlotGauges {
                bytes: self.metrics.registry.gauge(
                    "dbt_store_map_bytes",
                    "Approximate bytes of one stored map",
                    &labels,
                ),
                entries: self.metrics.registry.gauge(
                    "dbt_store_map_entries",
                    "Live entries of one stored map",
                    &labels,
                ),
                index_bytes: self.metrics.registry.gauge(
                    "dbt_store_map_index_bytes",
                    "Approximate bytes of one stored map's secondary indexes",
                    &labels,
                ),
            });
        }
    }

    /// Run one event through a relation plan's stage schedule — the one
    /// scheduling loop shared by the single-event fast path and the
    /// batched path. Each stage runs across every view listed for it
    /// before the next stage begins, so hierarchy retract statements
    /// observe every shared input pre-event and rebuild / re-evaluation
    /// statements observe fully post-event inputs, regardless of which
    /// view maintains a shared map. `delivered` receives the views whose
    /// triggers absorbed the event (detected on the delta stage, which
    /// covers all interested views).
    ///
    /// With `timed` set, a multi-stage plan brackets each stage pass
    /// with its own clock and credits the plan's stage counters — the
    /// per-stage cost breakdown the hierarchy's O(P²) question needs.
    /// Single-stage plans are never timed here: their one stage *is*
    /// the event, so callers credit it from the clock they already run
    /// ([`RelationPlan::credit_flat_stage`]) and the flat hot path pays
    /// no extra clock reads.
    #[allow(clippy::too_many_arguments)]
    fn run_event_stages<M: MapWrite + ?Sized>(
        &self,
        plan: &RelationPlan,
        frame: &mut M,
        event: &Event,
        scratch: &mut EventScratch,
        delivered: &mut Vec<usize>,
        timed: bool,
        trace: Option<&TraceSpanCtx<'_>>,
    ) -> Result<()> {
        delivered.clear();
        let bracket = timed && plan.stages.len() > 1;
        for (index, (stage, views)) in plan.stages.iter().enumerate() {
            let stage_started = (bracket || trace.is_some()).then(Instant::now);
            for &i in views {
                let view = &self.views[i];
                let hooks = StmtHooks {
                    log: None,
                    profile: timed.then(|| &*view.stmt_profile),
                    spans: trace.map(|t| StmtSpans {
                        recorder: t.recorder,
                        seq: t.seq,
                        view: &view.name,
                        tid: t.tid,
                    }),
                };
                let absorbed = apply_event_statements(
                    &view.exec,
                    frame,
                    event,
                    scratch,
                    StatementPhase::Stage(*stage),
                    Some(&view.skip),
                    hooks,
                )?;
                if *stage == STAGE_DELTA && absorbed {
                    delivered.push(i);
                }
            }
            if let Some(started) = stage_started {
                if bracket {
                    let metrics = &plan.stage_metrics[index];
                    metrics.nanos.add(started.elapsed().as_nanos() as u64);
                    metrics.events.inc();
                }
                if let Some(t) = trace {
                    t.recorder.record(TraceSpan {
                        seq: t.seq,
                        layer: LAYER_STAGE.to_string(),
                        detail: format!("stage={} views={}", stage, views.len()),
                        start_ns: t.recorder.ns_of(started),
                        dur_ns: started.elapsed().as_nanos() as u64,
                        tid: t.tid,
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when no view is registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Registered view names, in registration order.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.iter().map(|v| v.name.as_str()).collect()
    }

    /// Handle of a view by name.
    pub fn id(&self, name: &str) -> Option<ViewId> {
        self.views.iter().position(|v| v.name == name).map(ViewId)
    }

    /// Name of a view by handle.
    pub fn name_of(&self, id: ViewId) -> Option<&str> {
        self.views.get(id.0).map(|v| v.name.as_str())
    }

    /// The SQL a view was registered with.
    pub fn sql_of(&self, name: &str) -> Result<&str> {
        Ok(self.resolve(name)?.sql.as_str())
    }

    /// The compiled trigger program of a view.
    pub fn program(&self, name: &str) -> Result<&TriggerProgram> {
        Ok(&self.resolve(name)?.program)
    }

    /// Names of views whose triggers reference `relation` (dispatch
    /// introspection). Relation names are upper-case throughout the
    /// runtime — the `Event` constructors normalize them — and dispatch
    /// matches exactly, so this lookup is deliberately not normalized:
    /// it answers precisely the question `apply` asks.
    pub fn interested_views(&self, relation: &str) -> Vec<&str> {
        match self.dispatch.get(relation) {
            Some(plan) => plan
                .views
                .iter()
                .map(|&i| self.views[i].name.as_str())
                .collect(),
            None => Vec::new(),
        }
    }

    /// All relations at least one view listens to.
    pub fn dispatched_relations(&self) -> Vec<&str> {
        let mut rels: Vec<&str> = self.dispatch.keys().map(String::as_str).collect();
        rels.sort_unstable();
        rels
    }

    /// The lock plan (ascending group ids) of one dispatched relation —
    /// the sharded dispatcher partitions batches by overlap of exactly
    /// these sets.
    pub fn relation_groups(&self, relation: &str) -> Option<&[usize]> {
        self.dispatch.get(relation).map(|p| p.groups.as_slice())
    }

    /// Split one relation's ingestion across `ranges` key-range shards.
    ///
    /// Requires the compiler's partition-key analysis to have qualified
    /// the relation in *every* interested view (all agreeing on the
    /// partition column), and the relation's map groups to be exclusive
    /// to it — no view listening to this relation may listen to another,
    /// or another relation's unsharded events would write sharded state
    /// behind the per-range locks' backs. Call after all views are
    /// registered.
    ///
    /// On success, events of the relation are routed by
    /// [`range_of_value`] of their partition column to one of `ranges`
    /// replica map groups, each behind its own lock, so ranges ingest
    /// concurrently. Keyed maps (read by the relation's own triggers at
    /// a key position carrying the partition column) are redistributed
    /// into the replicas; accumulator maps collect per-range partials
    /// that every read path folds back together with the commutative
    /// monoid — results, snapshots and map reads are bit-identical to
    /// the unsharded server over any stream. Returns the range count.
    pub fn enable_range_sharding(&mut self, relation: &str, ranges: usize) -> Result<usize> {
        if ranges == 0 {
            return Err(Error::Runtime("range count must be at least 1".into()));
        }
        let Some(plan) = self.dispatch.get(relation) else {
            return Err(Error::Runtime(format!(
                "no view listens to relation '{relation}'"
            )));
        };
        if plan.shard.is_some() {
            return Err(Error::Runtime(format!(
                "relation '{relation}' is already range-sharded"
            )));
        }
        for (other, other_plan) in &self.dispatch {
            if other != relation && other_plan.groups.iter().any(|g| plan.groups.contains(g)) {
                return Err(Error::Runtime(format!(
                    "cannot range-shard '{relation}': its map groups are also \
                     locked by relation '{other}'"
                )));
            }
        }
        // Every interested view must have a partition key for this
        // relation, all on the same column, and the per-slot roles of
        // views sharing a slot must agree.
        let mut column: Option<usize> = None;
        let mut roles: FxHashMap<usize, Option<usize>> = FxHashMap::default();
        for &i in &plan.views {
            let view = &self.views[i];
            let Some(pk) = view.program.partition_key(relation) else {
                return Err(Error::Runtime(format!(
                    "relation '{relation}' is not shardable for view '{}' \
                     (partition-key analysis found no qualifying column)",
                    view.name
                )));
            };
            match column {
                None => column = Some(pk.column),
                Some(c) if c == pk.column => {}
                Some(c) => {
                    return Err(Error::Runtime(format!(
                        "views disagree on the partition column of '{relation}' \
                         ({c} vs {})",
                        pk.column
                    )))
                }
            }
            for (decl, &slot) in view.program.maps.iter().zip(&view.binding.slots) {
                let Some((_, _, role)) = decl.shard_roles.iter().find(|(r, _, _)| r == relation)
                else {
                    continue;
                };
                if let Some(prev) = roles.insert(slot, *role) {
                    if prev != *role {
                        return Err(Error::Runtime(format!(
                            "views disagree on the shard role of map '{}'",
                            decl.name
                        )));
                    }
                }
            }
        }
        let column = column.expect("a dispatched relation has interested views");
        // The store panics on a missing role; surface it as an error
        // instead (a slot in the relation's groups no analysis covered).
        for (slot, meta) in self.store.slots().iter().enumerate() {
            if plan.groups.contains(&meta.group) && !roles.contains_key(&slot) {
                return Err(Error::Runtime(format!(
                    "map slot {slot} lives in '{relation}'s groups but has no \
                     partition-key role"
                )));
            }
        }
        let groups = plan.groups.clone();
        let shard = self.store.create_range_shard(&groups, &roles, ranges);
        let frames = (0..ranges)
            .map(|r| self.store.range_frame_plan(shard, r))
            .collect();
        let plan = self.dispatch.get_mut(relation).expect("checked above");
        plan.shard = Some(RangeShardPlan {
            column,
            ranges,
            shard,
            frames,
        });
        self.metrics
            .registry
            .gauge(
                "dbt_dispatch_ranges",
                "Key ranges a sharded relation's ingestion splits across",
                &[("relation", relation)],
            )
            .set(ranges as i64);
        Ok(ranges)
    }

    /// `(partition column, range count)` of a range-sharded relation —
    /// the routing rule the sharded dispatcher buckets by.
    pub fn range_sharding(&self, relation: &str) -> Option<(usize, usize)> {
        let sp = self.dispatch.get(relation)?.shard.as_ref()?;
        Some((sp.column, sp.ranges))
    }

    fn resolve(&self, name: &str) -> Result<&View> {
        self.views
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| Error::Runtime(format!("unknown view '{name}'")))
    }

    /// Check out a reusable ingestion context (returned on the next
    /// `apply`/`apply_batch` via the internal pool, or owned by callers
    /// using the `_with` variants from their own threads).
    pub fn make_ctx(&self) -> ApplyCtx {
        self.ctx_pool.lock().pop().unwrap_or_default()
    }

    fn return_ctx(&self, ctx: ApplyCtx) {
        self.ctx_pool.lock().push(ctx);
    }

    /// Apply one event, routed only to interested views. Returns the
    /// number of views the event was delivered to. Dispatch matches the
    /// event's relation exactly; the `Event` constructors upper-case
    /// relation names, so hand-built events must do the same.
    ///
    /// This is the dedicated single-event fast path: one dispatch
    /// lookup reaches the relation's cached plan (interested views, lock
    /// plan, frame table), locks are taken over exactly those groups,
    /// and all buffers come from a pooled [`ApplyCtx`] — per-event cost
    /// tracks the relation's views, not the portfolio size.
    pub fn apply(&self, event: &Event) -> Result<usize> {
        let mut ctx = self.make_ctx();
        let result = self.apply_with(event, &mut ctx);
        self.return_ctx(ctx);
        result
    }

    /// Capture the audit pre-state of a sampled event, under the
    /// already-held group write locks: which view to audit (rotating
    /// through the relation's views so a low sample rate still covers
    /// all of them), the view's map entries before the event, and its
    /// exact delivered-event count. `span_counts` carries the not-yet-
    /// flushed per-view delivery counts of an in-progress batch span.
    /// Returns `None` off-sample, and under range sharding (a replica
    /// frame holds partial map state the oracle cannot replay).
    fn audit_pre<M: MapRead + ?Sized>(
        &self,
        plan: &RelationPlan,
        event: &Event,
        seq: u64,
        frame: &M,
        span_counts: Option<&[(usize, String, EventKind, u64)]>,
    ) -> Option<AuditPre> {
        if !self.audit.sampled(seq) || plan.views.is_empty() || self.store.any_sharded() {
            return None;
        }
        let rotation = (seq / self.audit.sample_one_in()) as usize;
        let index = plan.views[rotation % plan.views.len()];
        let view = &self.views[index];
        let pre = view
            .binding
            .slots
            .iter()
            .map(|&slot| {
                frame
                    .map(slot)
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect()
            })
            .collect();
        let pending: u64 = span_counts
            .into_iter()
            .flatten()
            .filter(|(v, _, _, _)| *v == index)
            .map(|(_, _, _, n)| *n)
            .sum();
        Some(AuditPre {
            view: index,
            seq,
            event: event.clone(),
            pre,
            events_before: view.events_processed.get() + pending,
        })
    }

    /// Complete a sampled audit after the event ran, still under the
    /// same write locks: assemble the audited view's post-event rows
    /// from the live frame and hand the bundle to the audit worker.
    fn audit_post<M: MapRead + ?Sized>(&self, pre: AuditPre, frame: &M, delivered: bool) {
        let view = &self.views[pre.view];
        let post_rows = assemble_result(&view.exec, frame);
        self.audit.submit(audit::AuditJob {
            view: pre.view,
            seq: pre.seq,
            event: pre.event,
            pre: pre.pre,
            post_rows,
            events_before: pre.events_before,
            delivered,
        });
    }

    /// Deliberately corrupt one live entry of a view's map: under the
    /// view's group write locks, add 1 to the first entry's value (via
    /// the storage's own `add`, so secondary indexes stay internally
    /// consistent — the corruption is that the state no longer matches
    /// the stream). An empty `map` name picks the view's first map
    /// holding a live entry. Returns whether an entry existed to
    /// corrupt. This is the audit plane's fault-injection hook: a chaos
    /// test flips an entry and asserts the auditor reports the
    /// divergence.
    pub fn corrupt_map_entry(&self, view: &str, map: &str) -> Result<bool> {
        let view = self.resolve(view)?;
        let mut guards = self.store.lock_write(view.plan.groups());
        let mut frame = view.plan.write_frame(&mut guards);
        let slots: Vec<usize> = if map.is_empty() {
            view.binding.slots.clone()
        } else {
            let index = view
                .program
                .maps
                .iter()
                .position(|d| d.name == map)
                .ok_or_else(|| Error::Runtime(format!("view has no map named '{map}'")))?;
            vec![view.binding.slots[index]]
        };
        for slot in slots {
            let storage = frame.map_mut(slot);
            let key = storage.iter().next().map(|(k, _)| k.clone());
            if let Some(key) = key {
                storage.add(key, Value::Int(1));
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// [`ViewServer::apply`] with a caller-owned context (for threads
    /// that ingest continuously and want zero pool traffic).
    pub fn apply_with(&self, event: &Event, ctx: &mut ApplyCtx) -> Result<usize> {
        let Some(plan) = self.dispatch.get(&event.relation) else {
            return Ok(0);
        };
        let timed = self.metrics.registry.enabled();
        // Admission sequencing is unconditional (it feeds the view
        // watermarks); span recording happens only for sampled events.
        let seq = self.trace.admit(1);
        let trace_ctx = self.trace.sampled(seq).then(|| TraceSpanCtx {
            recorder: &self.trace,
            seq,
            tid: TraceRecorder::current_tid(),
        });
        // Range-sharded relations run the event against the replica
        // frame its partition key hashes to — one range lock, not the
        // relation's whole plan — so appliers on different ranges
        // proceed concurrently.
        let frame_plan: &FramePlan = match &plan.shard {
            Some(sp) => &sp.frames[sp.route(&event.tuple)],
            None => &plan.frame,
        };
        let lock_started = trace_ctx.as_ref().map(|_| Instant::now());
        let mut guards = self.store.lock_write(frame_plan.groups());
        if let (Some(t), Some(lock_started)) = (&trace_ctx, lock_started) {
            t.recorder.record(TraceSpan {
                seq: t.seq,
                layer: LAYER_LOCK.to_string(),
                detail: format!("groups={}", frame_plan.groups().len()),
                start_ns: t.recorder.ns_of(lock_started),
                dur_ns: lock_started.elapsed().as_nanos() as u64,
                tid: t.tid,
            });
        }
        let started = Instant::now();
        ctx.delivered.clear();
        let mut failure: Option<Error> = None;
        {
            let mut frame = frame_plan.write_frame(&mut guards);
            let audit = self.audit_pre(plan, event, seq, &frame, None);
            if let Err(e) = self.run_event_stages(
                plan,
                &mut frame,
                event,
                &mut ctx.scratch,
                &mut ctx.delivered,
                timed,
                trace_ctx.as_ref(),
            ) {
                failure = Some(e);
            }
            if let Some(pre) = audit {
                let delivered = ctx.delivered.contains(&pre.view);
                self.audit_post(pre, &frame, delivered);
            }
        }
        // Credit stats while still holding the write locks, so a
        // consistent snapshot sees counts and maps move together. The
        // event's wall clock is split evenly across its deliveries.
        let deliveries = ctx.delivered.len();
        let elapsed = started.elapsed().as_nanos() as u64;
        let nanos = elapsed / deliveries.max(1) as u64;
        for &i in &ctx.delivered {
            let view = &self.views[i];
            view.record(&event.relation, event.kind, 1, nanos);
            view.watermark.set_max(seq as i64);
        }
        plan.events.inc();
        drop(guards);
        // Latency recording stays outside the lock scope: neither the
        // histogram atomics nor the slow ring's mutex ever extend the
        // hold time other ingesters and snapshots wait on. The clock is
        // the one the trigger stats already read — enabling metrics
        // adds atomic ops to this path, not clock reads.
        if timed {
            self.metrics.apply_event.record_unchecked(elapsed);
            plan.credit_flat_stage(elapsed);
        }
        if let Some(ring) = &self.metrics.slow {
            ring.observe_with(
                &event.relation,
                event.kind == EventKind::Delete,
                elapsed / 1_000,
                || event.tuple.to_string(),
            );
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(deliveries),
        }
    }

    /// Apply a whole batch through the dispatch index: the groups of all
    /// affected views are write-locked once (ascending group order, the
    /// same order `snapshot_all` reads in, so concurrent snapshots see
    /// either none or all of the batch), then each event runs through
    /// its relation's stage schedule across the interested views —
    /// hierarchy retracts, every view's delta updates, then rebuilds and
    /// re-evaluations. Statements targeting a shared map are executed
    /// only by the map's maintainer view, so per event each shared map
    /// is written once. Returns the total number of deliveries.
    pub fn apply_batch(&self, batch: &[Event]) -> Result<usize> {
        let mut ctx = self.make_ctx();
        let result = self.apply_batch_with(batch, &mut ctx);
        self.return_ctx(ctx);
        result
    }

    /// [`ViewServer::apply_batch`] with a caller-owned context.
    pub fn apply_batch_with(&self, batch: &[Event], ctx: &mut ApplyCtx) -> Result<usize> {
        // Accepts any event slice; `&EventBatch` coerces via Deref, and
        // `UpdateStream::events.chunks(n)` feeds it zero-copy.
        let base = self.trace.admit(batch.len() as u64);
        self.apply_batch_routed(batch, None, base, ctx)
    }

    /// [`ViewServer::apply_batch`] against admission sequences the
    /// caller already allocated with [`TraceRecorder::admit`] — the
    /// entry point for upstream layers (the net ingest queue, the
    /// sharded dispatcher) that stamp seqs at admission so queue and
    /// dispatch spans correlate with the apply-side spans. Event `i` of
    /// the batch carries sequence `base + i`.
    pub fn apply_batch_at(&self, batch: &[Event], base: u64) -> Result<usize> {
        let mut ctx = self.make_ctx();
        let result = self.apply_batch_routed(batch, None, base, &mut ctx);
        self.return_ctx(ctx);
        result
    }

    /// [`ViewServer::apply_batch_with`] restricted to an index subset of
    /// the batch (processed in the given order) — the entry point the
    /// zero-copy sharded dispatcher's workers use, so bucketed jobs
    /// borrow the caller's events instead of cloning them.
    pub fn apply_batch_indices(
        &self,
        batch: &[Event],
        indices: &[u32],
        ctx: &mut ApplyCtx,
    ) -> Result<usize> {
        let base = self.trace.admit(batch.len() as u64);
        self.apply_batch_routed(batch, Some(indices), base, ctx)
    }

    /// [`ViewServer::apply_batch_indices`] with caller-allocated
    /// admission sequences (see [`ViewServer::apply_batch_at`]); the
    /// selected event at batch position `i` carries sequence `base + i`.
    pub fn apply_batch_indices_at(
        &self,
        batch: &[Event],
        indices: &[u32],
        base: u64,
        ctx: &mut ApplyCtx,
    ) -> Result<usize> {
        self.apply_batch_routed(batch, Some(indices), base, ctx)
    }

    /// The shared batch front end: scan the selected events' relations,
    /// then either run them as one locked span over the union lock plan
    /// (no sharded relation present — the common path) or bucket them by
    /// key range first ([`ViewServer::apply_batch_ranged`]).
    fn apply_batch_routed(
        &self,
        batch: &[Event],
        indices: Option<&[u32]>,
        base: u64,
        ctx: &mut ApplyCtx,
    ) -> Result<usize> {
        // The batch lock plan is the union of the cached relation plans
        // of the distinct relations present.
        let mut relations: Vec<&str> = Vec::new();
        let mut sharded = false;
        ctx.groups.clear();
        for_each_selected(batch, indices, |_, event| {
            if relations.contains(&event.relation.as_str()) {
                return;
            }
            if let Some(plan) = self.dispatch.get(&event.relation) {
                relations.push(&event.relation);
                ctx.groups.extend(&plan.groups);
                sharded |= plan.shard.is_some();
            }
        });
        if relations.is_empty() {
            return Ok(0);
        }
        if sharded {
            return self.apply_batch_ranged(batch, indices, base, ctx);
        }
        ctx.groups.sort_unstable();
        ctx.groups.dedup();

        // Single-relation batches (the sharded dispatcher's partitions
        // are often exactly that) reuse the relation's cached frame
        // table; mixed batches build one table for the whole batch.
        let built;
        let frame_plan: &FramePlan = if relations.len() == 1 {
            &self.dispatch[relations[0]].frame
        } else {
            built = self.store.plan(&ctx.groups);
            &built
        };
        self.apply_span(batch, indices, frame_plan, base, ctx)
    }

    /// Batch path for batches touching at least one range-sharded
    /// relation: events are bucketed by destination — one default bucket
    /// for the unsharded relations (run over their union lock plan), one
    /// bucket per (sharded relation, key range) — and each bucket runs
    /// as its own locked span. Buckets write disjoint group sets
    /// (sharding requires relation-exclusive groups) and each preserves
    /// arrival order, so the final state is identical to the sequential
    /// batch path.
    fn apply_batch_ranged(
        &self,
        batch: &[Event],
        indices: Option<&[u32]>,
        base: u64,
        ctx: &mut ApplyCtx,
    ) -> Result<usize> {
        let mut default_indices: Vec<u32> = Vec::new();
        let mut default_relations: Vec<&str> = Vec::new();
        let mut buckets: Vec<(&str, usize, Vec<u32>)> = Vec::new();
        for_each_selected(batch, indices, |position, event| {
            let Some(plan) = self.dispatch.get(&event.relation) else {
                return;
            };
            match &plan.shard {
                Some(sp) => {
                    let range = sp.route(&event.tuple);
                    match buckets
                        .iter_mut()
                        .find(|(r, g, _)| *r == event.relation.as_str() && *g == range)
                    {
                        Some((_, _, v)) => v.push(position as u32),
                        None => {
                            buckets.push((event.relation.as_str(), range, vec![position as u32]))
                        }
                    }
                }
                None => {
                    if !default_relations.contains(&event.relation.as_str()) {
                        default_relations.push(&event.relation);
                    }
                    default_indices.push(position as u32);
                }
            }
        });
        let mut deliveries = 0usize;
        if !default_indices.is_empty() {
            let built;
            let frame_plan: &FramePlan = if default_relations.len() == 1 {
                &self.dispatch[default_relations[0]].frame
            } else {
                ctx.groups.clear();
                for rel in &default_relations {
                    ctx.groups.extend(&self.dispatch[*rel].groups);
                }
                ctx.groups.sort_unstable();
                ctx.groups.dedup();
                built = self.store.plan(&ctx.groups);
                &built
            };
            deliveries += self.apply_span(batch, Some(&default_indices), frame_plan, base, ctx)?;
        }
        for (rel, range, bucket) in &buckets {
            let sp = self.dispatch[*rel]
                .shard
                .as_ref()
                .expect("bucketed as sharded");
            deliveries += self.apply_span(batch, Some(bucket), &sp.frames[*range], base, ctx)?;
        }
        Ok(deliveries)
    }

    /// The batch execution core: write-lock one frame plan, run the
    /// selected events through their relations' stage schedules, credit
    /// stats and latency. Callers pick the frame — the batch's union
    /// plan, or one range replica of a sharded relation.
    fn apply_span(
        &self,
        batch: &[Event],
        indices: Option<&[u32]>,
        frame_plan: &FramePlan,
        base: u64,
        ctx: &mut ApplyCtx,
    ) -> Result<usize> {
        // Every lock plan in the server acquires groups in ascending id
        // order, so concurrent batches and snapshots cannot deadlock,
        // and a snapshot (which locks every group) observes either none
        // or all of this span.
        let timed = self.metrics.registry.enabled();
        let slow = self.metrics.slow.as_deref();
        // Per-event clocks inside the batch loop only when something
        // consumes them — the default path keeps one clock per batch.
        let per_event_clock = timed || slow.is_some();
        // Slow events are detected under the locks but reported after
        // release (the ring takes a mutex). By definition they are rare,
        // so the buffer normally never allocates.
        let mut slow_hits: Vec<(usize, u64)> = Vec::new();
        let count = indices.map_or(batch.len(), <[u32]>::len);
        // Tracing state is hoisted: one relaxed load decides the span,
        // and the lock span is recorded once, attributed to the first
        // sampled sequence present (a span shares one acquisition — one
        // span per sampled event would just duplicate it).
        let tracing = self.trace.is_enabled();
        let tid = if tracing {
            TraceRecorder::current_tid()
        } else {
            0
        };
        let mut lock_seq: Option<u64> = None;
        if tracing {
            for pos in 0..count {
                let position = indices.map_or(pos, |ix| ix[pos] as usize);
                let seq = base + position as u64;
                if self.trace.sampled(seq) {
                    lock_seq = Some(seq);
                    break;
                }
            }
        }
        let lock_started = lock_seq.map(|_| Instant::now());
        let mut guards = self.store.lock_write(frame_plan.groups());
        if let (Some(seq), Some(lock_started)) = (lock_seq, lock_started) {
            self.trace.record(TraceSpan {
                seq,
                layer: LAYER_LOCK.to_string(),
                detail: format!("groups={} events={}", frame_plan.groups().len(), count),
                start_ns: self.trace.ns_of(lock_started),
                dur_ns: lock_started.elapsed().as_nanos() as u64,
                tid,
            });
        }

        let started = Instant::now();
        let mut deliveries = 0usize;
        // Highest sequence run through a relation plan in this span —
        // the span-granular watermark every delivered-to view ratchets
        // to at the counter flush.
        let mut last_seq: Option<u64> = None;
        ctx.counts.clear();
        let mut failure: Option<Error> = None;
        {
            let mut frame = frame_plan.write_frame(&mut guards);
            for pos in 0..count {
                let position = indices.map_or(pos, |ix| ix[pos] as usize);
                let event = &batch[position];
                let Some(plan) = self.dispatch.get(&event.relation) else {
                    continue;
                };
                let seq = base + position as u64;
                last_seq = Some(seq);
                plan.events.inc();
                let event_trace = if tracing && self.trace.sampled(seq) {
                    Some(TraceSpanCtx {
                        recorder: &self.trace,
                        seq,
                        tid,
                    })
                } else {
                    None
                };
                let audit = self.audit_pre(plan, event, seq, &frame, Some(&ctx.counts));
                let event_started = per_event_clock.then(Instant::now);
                if let Err(e) = self.run_event_stages(
                    plan,
                    &mut frame,
                    event,
                    &mut ctx.scratch,
                    &mut ctx.delivered,
                    timed,
                    event_trace.as_ref(),
                ) {
                    failure = Some(e);
                    break;
                }
                if let Some(event_started) = event_started {
                    let nanos = event_started.elapsed().as_nanos() as u64;
                    if timed {
                        self.metrics.apply_event.record_unchecked(nanos);
                        plan.credit_flat_stage(nanos);
                    }
                    if let Some(ring) = slow {
                        if nanos / 1_000 >= ring.threshold_us() {
                            slow_hits.push((position, nanos));
                        }
                    }
                }
                if let Some(pre) = audit {
                    let delivered = ctx.delivered.contains(&pre.view);
                    self.audit_post(pre, &frame, delivered);
                }
                deliveries += ctx.delivered.len();
                for &i in &ctx.delivered {
                    match ctx
                        .counts
                        .iter_mut()
                        .find(|(v, r, k, _)| *v == i && *k == event.kind && *r == event.relation)
                    {
                        Some((_, _, _, n)) => *n += 1,
                        None => ctx.counts.push((i, event.relation.clone(), event.kind, 1)),
                    }
                }
            }
        }

        // Flush per-view counters while still holding the write locks so
        // snapshot_all sees counts and maps move together. The batch is
        // timed once; each view is charged by its delivery count, so
        // per-trigger and per-view profile times both sum to the batch's
        // wall clock (an estimate, not a per-trigger measurement — the
        // price of one clock read per batch).
        let batch_nanos = started.elapsed().as_nanos() as u64;
        let per_delivery = batch_nanos / deliveries.max(1) as u64;
        for (view, relation, kind, n) in ctx.counts.drain(..) {
            let v = &self.views[view];
            v.record(&relation, kind, n, per_delivery * n);
            if let Some(seq) = last_seq {
                v.watermark.set_max(seq as i64);
            }
        }
        drop(guards);
        // Whole-batch latency and the slow-event ring record outside
        // the lock scope.
        if timed {
            self.metrics.apply_batch.record_unchecked(batch_nanos);
            self.metrics.batch_size.record_unchecked(count as u64);
        }
        if let Some(ring) = slow {
            for (position, nanos) in slow_hits {
                let event = &batch[position];
                ring.observe_with(
                    &event.relation,
                    event.kind == EventKind::Delete,
                    nanos / 1_000,
                    || event.tuple.to_string(),
                );
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(deliveries),
        }
    }

    /// Drain an [`EventSource`] through the batched ingestion path,
    /// pulling batches of at most `batch_size` events.
    pub fn run_source(
        &self,
        source: &mut dyn EventSource,
        batch_size: usize,
    ) -> Result<IngestReport> {
        let mut ctx = self.make_ctx();
        let result = drain_source(source, batch_size, |batch| {
            self.apply_batch_with(&batch, &mut ctx)
        });
        self.return_ctx(ctx);
        result
    }

    /// The current result rows of one view. With range-sharded
    /// relations in play, sharded maps are read *merged* — base plus the
    /// pointwise monoid sum of every range replica — so the rows are
    /// bit-identical to an unsharded server's.
    pub fn result(&self, name: &str) -> Result<Vec<ResultRow>> {
        let view = self.resolve(name)?;
        if self.store.any_sharded() {
            let guard = self.store.lock_read_merged(view.plan.groups());
            return Ok(assemble_result(&view.exec, &guard.frame()));
        }
        let guards = self.store.lock_read(view.plan.groups());
        let frame = view.plan.read_frame(&guards);
        Ok(assemble_result(&view.exec, &frame))
    }

    /// The single value of a scalar view.
    pub fn scalar(&self, name: &str) -> Result<Value> {
        Ok(self
            .result(name)?
            .first()
            .and_then(|r| r.values.first().cloned())
            .unwrap_or(Value::ZERO))
    }

    /// Output column names of one view, in `SELECT` order.
    pub fn column_names(&self, name: &str) -> Result<Vec<String>> {
        Ok(result_column_names(&self.resolve(name)?.exec))
    }

    /// Read-only snapshot of one internal map of a view (the ad-hoc
    /// query interface). The name is the view-local map name; the
    /// storage read may be shared with other views.
    pub fn map_snapshot(&self, name: &str, map: &str) -> Result<Option<Vec<(Tuple, Value)>>> {
        let view = self.resolve(name)?;
        let Some(slot) = view.exec.map_id(map) else {
            return Ok(None);
        };
        let mut entries: Vec<(Tuple, Value)> = self.store.with_map_merged(slot, |m| {
            m.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        });
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Some(entries))
    }

    /// Events delivered to (and absorbed by) one view so far.
    pub fn events_processed(&self, name: &str) -> Result<u64> {
        Ok(self.resolve(name)?.events_processed.get())
    }

    /// Profiling report of one view. `per_map` lists the view's maps
    /// under their view-local names; entries and bytes are read from the
    /// (possibly shared) store slots.
    pub fn profile(&self, name: &str) -> Result<ProfileReport> {
        let view = self.resolve(name)?;
        Ok(self.profile_view(view))
    }

    fn profile_view(&self, view: &View) -> ProfileReport {
        let collect = |frame: &dyn MapRead| -> Vec<(String, usize, usize)> {
            view.program
                .maps
                .iter()
                .zip(&view.binding.slots)
                .map(|(decl, &slot)| {
                    let m = frame.map(slot);
                    (decl.name.clone(), m.len(), m.approx_bytes())
                })
                .collect()
        };
        let per_map: Vec<(String, usize, usize)> = if self.store.any_sharded() {
            let guard = self.store.lock_read_merged(view.plan.groups());
            collect(&guard.frame())
        } else {
            let guards = self.store.lock_read(view.plan.groups());
            collect(&view.plan.read_frame(&guards))
        };
        let mut per_trigger: Vec<(String, u64, Duration)> = view
            .trigger_stats
            .iter()
            .filter(|s| s.count.load(Ordering::Relaxed) > 0)
            .map(|s| {
                (
                    format!("on_{}_{}", s.kind.label(), s.relation),
                    s.count.load(Ordering::Relaxed),
                    Duration::from_nanos(s.nanos.load(Ordering::Relaxed)),
                )
            })
            .collect();
        per_trigger.sort();
        ProfileReport {
            events_processed: view.events_processed.get(),
            per_trigger,
            total_bytes: per_map.iter().map(|(_, _, b)| b).sum(),
            per_map,
            statement_count: view.program.statement_count(),
            code_size: view.program.code_size(),
            compile_time: view.compile_time,
            statements: view.stmt_profile.entries(&view.exec),
            ordered_probes: ordered_fallback::probes(),
            ordered_fallbacks: ordered_fallback::REASONS
                .iter()
                .map(|r| r.to_string())
                .zip(ordered_fallback::counts())
                .collect(),
        }
    }

    /// Profiling reports of every view, in registration order.
    pub fn profiles(&self) -> Vec<(String, ProfileReport)> {
        self.views
            .iter()
            .map(|v| (v.name.clone(), self.profile_view(v)))
            .collect()
    }

    /// Approximate bytes held by the shared store — every map counted
    /// once, however many views share it.
    pub fn memory_bytes(&self) -> usize {
        self.store.approx_bytes()
    }

    /// What the same portfolio would hold with per-view private maps
    /// (every map counted once per sharer): the N× baseline the shared
    /// store collapses.
    pub fn memory_bytes_if_unshared(&self) -> usize {
        if self.store.any_sharded() {
            // Sharded slots spread over base plus range replicas;
            // `slot_bytes` sums the pieces.
            return self
                .views
                .iter()
                .flat_map(|v| v.binding.slots.iter())
                .map(|&slot| self.store.slot_bytes(slot))
                .sum();
        }
        let guards = self.store.lock_read(self.all_plan.groups());
        let frame = self.all_plan.read_frame(&guards);
        self.views
            .iter()
            .flat_map(|v| v.binding.slots.iter())
            .map(|&slot| frame.map(slot).approx_bytes())
            .sum()
    }

    /// Shared-store introspection: per-map sharers/maintainer/footprint
    /// plus the memory and write-amplification savings.
    ///
    /// This walk is also the single source for the registry's map-size
    /// gauges (`dbt_store_bytes`, `dbt_store_map_bytes{slot,map}`, ...):
    /// every caller — the CLI memory panel, the metrics endpoint's
    /// prepare hook — refreshes them through here, so the panel and a
    /// concurrent scrape cannot disagree about the same walk.
    pub fn store_report(&self) -> StoreReport {
        let report = if self.store.any_sharded() {
            let guard = self.store.lock_read_merged(self.all_plan.groups());
            self.store_report_from(&guard.frame())
        } else {
            let guards = self.store.lock_read(self.all_plan.groups());
            self.store_report_from(&self.all_plan.read_frame(&guards))
        };
        // The scrape-prepare walk is also where the engine's process-
        // global ordered-fallback counters and the views' statement
        // self-profiles surface in the registry.
        self.metrics.sync_ordered_fallbacks();
        self.sync_stmt_profiles();
        report
    }

    /// Claim the growth of each view's statement self-profile into the
    /// bounded-cardinality registry series `dbt_stmt_nanos_total{view,
    /// stage}` / `dbt_stmt_runs_total{view,stage}` (per stage, not per
    /// statement — full per-statement detail stays in
    /// [`ViewServer::profile`]). Same delta-claim idiom as the ordered-
    /// fallback sync: the hot path keeps relaxed atomics, the scrape
    /// folds their growth into counters.
    fn sync_stmt_profiles(&self) {
        let mut seen = self.metrics.stmt_seen.lock();
        for (view, last) in self.views.iter().zip(seen.iter_mut()) {
            let totals = view.stmt_profile.stage_totals(&view.exec);
            for (stage, nanos, runs) in totals {
                let claimed = match last.iter_mut().find(|(s, _, _)| *s == stage) {
                    Some(entry) => entry,
                    None => {
                        last.push((stage, 0, 0));
                        last.last_mut().expect("just pushed")
                    }
                };
                let stage_label = stage.to_string();
                let labels = [
                    ("view", view.name.as_str()),
                    ("stage", stage_label.as_str()),
                ];
                let dn = nanos.saturating_sub(claimed.1);
                if dn > 0 {
                    self.metrics
                        .registry
                        .counter(
                            "dbt_stmt_nanos_total",
                            "Cumulative nanoseconds in the view's statements of one stage",
                            &labels,
                        )
                        .add(dn);
                    claimed.1 = nanos;
                }
                let dr = runs.saturating_sub(claimed.2);
                if dr > 0 {
                    self.metrics
                        .registry
                        .counter(
                            "dbt_stmt_runs_total",
                            "Statement executions in the view's statements of one stage",
                            &labels,
                        )
                        .add(dr);
                    claimed.2 = runs;
                }
            }
        }
    }

    /// Events applied so far for one dispatched relation (the registry's
    /// `dbt_relation_events_total{relation}` reading) — `None` when no
    /// view listens to the relation. The net layer's feed-lag gauge is
    /// its per-relation admitted count minus this.
    pub fn relation_events(&self, relation: &str) -> Option<u64> {
        self.dispatch.get(relation).map(|p| p.events.get())
    }

    fn store_report_from(&self, frame: &dyn MapRead) -> StoreReport {
        let slot_gauges = self.metrics.slot_gauges.lock();
        let mut entries_total = 0usize;
        let mut report = StoreReport::default();
        for (slot, meta) in self.store.slots().iter().enumerate() {
            let m = frame.map(slot);
            let bytes = m.approx_bytes();
            let index_bytes = m.index_bytes();
            report.total_bytes += bytes;
            report.bytes_if_unshared += bytes * meta.sharers();
            if meta.sharers() > 1 {
                report.shared_slots += 1;
            }
            entries_total += m.len();
            if let Some(g) = slot_gauges.get(slot) {
                g.bytes.set(bytes as i64);
                g.entries.set(m.len() as i64);
                g.index_bytes.set(index_bytes as i64);
            }
            report.maps.push(StoreMapReport {
                slot,
                aliases: meta
                    .aliases
                    .iter()
                    .map(|(v, n)| (self.views[*v].name.clone(), n.clone()))
                    .collect(),
                maintainer: self.views[meta.maintainer].name.clone(),
                arity: meta.arity,
                is_base_relation: meta.is_base_relation,
                sharers: meta.sharers(),
                entries: m.len(),
                bytes,
                index_bytes,
            });
        }
        for view in &self.views {
            for ((relation, kind), skipped) in &view.skipped_per_trigger {
                report.dedup_skipped_statements += view.trigger_count(relation, *kind) * skipped;
            }
        }
        self.metrics.store_bytes.set(report.total_bytes as i64);
        self.metrics
            .store_bytes_if_unshared
            .set(report.bytes_if_unshared as i64);
        self.metrics.store_entries.set(entries_total as i64);
        report
    }

    /// Refresh the registry's store-footprint gauges (one store walk).
    /// This is [`ViewServer::store_report`] with the report discarded —
    /// the natural prepare hook for a scrape endpoint.
    pub fn refresh_store_metrics(&self) {
        let _ = self.store_report();
    }

    /// A consistent capture of one view's result, read-locking only
    /// that view's own map groups — the cheap path for per-view polling
    /// (the network `snapshot` request), independent of portfolio size.
    pub fn snapshot(&self, name: &str) -> Result<ViewSnapshot> {
        let view = self.resolve(name)?;
        let rows = if self.store.any_sharded() {
            let guard = self.store.lock_read_merged(view.plan.groups());
            assemble_result(&view.exec, &guard.frame())
        } else {
            let guards = self.store.lock_read(view.plan.groups());
            assemble_result(&view.exec, &view.plan.read_frame(&guards))
        };
        Ok(ViewSnapshot {
            name: view.name.clone(),
            columns: result_column_names(&view.exec),
            rows,
            events_processed: view.events_processed.get(),
        })
    }

    /// A consistent capture of every view's result.
    ///
    /// Every map group is read-locked (ascending order) before any
    /// result is read, so the snapshot reflects one cut of the event
    /// stream even while another thread is applying batches.
    pub fn snapshot_all(&self) -> Vec<ViewSnapshot> {
        let capture = |frame: &dyn MapRead| -> Vec<ViewSnapshot> {
            self.views
                .iter()
                .map(|v| ViewSnapshot {
                    name: v.name.clone(),
                    columns: result_column_names(&v.exec),
                    rows: assemble_result(&v.exec, frame),
                    events_processed: v.events_processed.get(),
                })
                .collect()
        };
        if self.store.any_sharded() {
            let guard = self.store.lock_read_merged(self.all_plan.groups());
            capture(&guard.frame())
        } else {
            let guards = self.store.lock_read(self.all_plan.groups());
            capture(&self.all_plan.read_frame(&guards))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{
        tuple, ColumnType, EventBatch, EventKind, Schema, StreamSource, UpdateStream,
    };

    fn rst_catalog() -> Catalog {
        Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
            .with(Schema::new(
                "T",
                vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
            ))
    }

    const FIGURE2: &str = "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C";

    fn three_view_server() -> ViewServer {
        let mut server = ViewServer::new(&rst_catalog());
        server.register("figure2", FIGURE2).unwrap();
        server
            .register("r_by_b", "select B, sum(A) from R group by B")
            .unwrap();
        server
            .register("s_count", "select count(*) from S")
            .unwrap();
        server
    }

    #[test]
    fn registration_builds_the_dispatch_index() {
        let server = three_view_server();
        assert_eq!(server.len(), 3);
        assert_eq!(server.interested_views("R"), vec!["figure2", "r_by_b"]);
        // Dispatch is exact-match on the normalized (upper-case) names
        // the Event constructors produce; both APIs agree on misses.
        assert!(server.interested_views("r").is_empty());
        assert_eq!(
            server
                .apply(&Event {
                    relation: "r".into(),
                    kind: EventKind::Insert,
                    tuple: tuple![1i64, 1i64]
                })
                .unwrap(),
            0
        );
        assert_eq!(server.interested_views("S"), vec!["figure2", "s_count"]);
        assert_eq!(server.interested_views("T"), vec!["figure2"]);
        assert_eq!(server.dispatched_relations(), vec!["R", "S", "T"]);
        assert_eq!(server.id("figure2"), Some(ViewId(0)));
        assert_eq!(server.name_of(ViewId(2)), Some("s_count"));
        assert!(server.sql_of("r_by_b").unwrap().contains("group by B"));
    }

    #[test]
    fn relation_plans_cover_interested_views_lock_plans() {
        let server = three_view_server();
        // R's plan must include figure2's and r_by_b's groups; T's only
        // figure2's.
        let r = server.relation_groups("R").unwrap();
        let t = server.relation_groups("T").unwrap();
        assert!(t.iter().all(|g| r.contains(g)), "r={r:?} t={t:?}");
        assert!(server.relation_groups("NOPE").is_none());
        assert!(r.windows(2).all(|w| w[0] < w[1]), "ascending lock plan");
    }

    #[test]
    fn duplicate_names_and_bad_sql_are_rejected() {
        let mut server = three_view_server();
        assert!(server
            .register("figure2", "select count(*) from R")
            .is_err());
        assert!(server
            .register("broken", "select nothing from NOWHERE")
            .is_err());
        assert_eq!(server.len(), 3, "failed registrations leave no residue");
    }

    #[test]
    fn events_are_routed_only_to_interested_views() {
        let server = three_view_server();
        assert_eq!(
            server
                .apply(&Event::insert("R", tuple![2i64, 1i64]))
                .unwrap(),
            2
        );
        assert_eq!(
            server
                .apply(&Event::insert("T", tuple![3i64, 10i64]))
                .unwrap(),
            1
        );
        assert_eq!(
            server
                .apply(&Event::insert("UNKNOWN", tuple![1i64]))
                .unwrap(),
            0
        );
        assert_eq!(server.events_processed("figure2").unwrap(), 2);
        assert_eq!(server.events_processed("r_by_b").unwrap(), 1);
        assert_eq!(server.events_processed("s_count").unwrap(), 0);
    }

    #[test]
    fn apply_batch_matches_per_event_application() {
        let per_event = three_view_server();
        let batched = three_view_server();
        let events = vec![
            Event::insert("R", tuple![2i64, 1i64]),
            Event::insert("S", tuple![1i64, 3i64]),
            Event::insert("T", tuple![3i64, 10i64]),
            Event::insert("R", tuple![7i64, 1i64]),
            Event::delete("R", tuple![7i64, 1i64]),
        ];
        let mut per_event_deliveries = 0;
        for e in &events {
            per_event_deliveries += per_event.apply(e).unwrap();
        }
        let batch: EventBatch = events.into();
        let batched_deliveries = batched.apply_batch(&batch).unwrap();
        assert_eq!(batched_deliveries, per_event_deliveries);
        for name in ["figure2", "r_by_b", "s_count"] {
            assert_eq!(
                per_event.result(name).unwrap(),
                batched.result(name).unwrap(),
                "view {name} diverged between ingestion paths"
            );
            assert_eq!(
                per_event.events_processed(name).unwrap(),
                batched.events_processed(name).unwrap()
            );
        }
        assert_eq!(batched.scalar("figure2").unwrap(), Value::Int(20));
    }

    #[test]
    fn run_source_drains_a_stream_source_in_batches() {
        let server = three_view_server();
        let mut stream = UpdateStream::new();
        for i in 0..25i64 {
            stream.push(Event::insert("R", tuple![i, i % 3]));
            stream.push(Event::insert("S", tuple![i % 3, i]));
        }
        let mut source = StreamSource::new("unit", stream);
        let report = server.run_source(&mut source, 8).unwrap();
        assert_eq!(report.events, 50);
        assert_eq!(report.batches, 50usize.div_ceil(8));
        // R events reach figure2 + r_by_b, S events reach figure2 + s_count.
        assert_eq!(report.deliveries, 100);
        assert_eq!(server.events_processed("figure2").unwrap(), 50);
        assert_eq!(server.events_processed("r_by_b").unwrap(), 25);
        assert_eq!(server.scalar("s_count").unwrap(), Value::Int(25));
    }

    #[test]
    fn snapshot_all_reports_every_view_consistently() {
        let server = three_view_server();
        server
            .apply_batch(&[
                Event::insert("R", tuple![2i64, 1i64]),
                Event::insert("S", tuple![1i64, 3i64]),
                Event::insert("T", tuple![3i64, 10i64]),
            ])
            .unwrap();
        let snapshots = server.snapshot_all();
        assert_eq!(snapshots.len(), 3);
        assert_eq!(snapshots[0].name, "figure2");
        assert_eq!(snapshots[0].rows[0].values[0], Value::Int(20));
        assert_eq!(snapshots[2].events_processed, 1);
    }

    #[test]
    fn concurrent_feeder_and_snapshot_readers_agree_at_the_end() {
        let server = std::sync::Arc::new(three_view_server());
        let feeder = {
            let server = std::sync::Arc::clone(&server);
            std::thread::spawn(move || {
                for chunk in 0..20i64 {
                    let batch: EventBatch = (0..10i64)
                        .map(|i| Event::insert("R", tuple![chunk * 10 + i, chunk % 4]))
                        .collect();
                    server.apply_batch(&batch).unwrap();
                }
            })
        };
        // Both figure2 and r_by_b listen to R and batches are applied
        // under all affected locks at once, so any consistent snapshot
        // sees them at the same event count.
        for _ in 0..50 {
            let snap = server.snapshot_all();
            assert_eq!(snap[0].events_processed, snap[1].events_processed);
        }
        feeder.join().unwrap();
        assert_eq!(server.events_processed("r_by_b").unwrap(), 200);
        let rows = server.result("r_by_b").unwrap();
        assert_eq!(rows.len(), 4, "four groups of chunk % 4");
    }

    #[test]
    fn profiles_cover_every_view() {
        let server = three_view_server();
        server
            .apply(&Event::insert("R", tuple![1i64, 1i64]))
            .unwrap();
        let profiles = server.profiles();
        assert_eq!(profiles.len(), 3);
        assert!(profiles[0].1.statement_count > 0);
        assert_eq!(server.profile("s_count").unwrap().events_processed, 0);
        assert!(server.profile("nope").is_err());
        assert!(server.memory_bytes() > 0);
    }

    // -----------------------------------------------------------------
    // shared map store
    // -----------------------------------------------------------------

    #[test]
    fn identical_views_share_every_map_and_still_answer() {
        let mut server = ViewServer::new(&rst_catalog());
        server.register("a", FIGURE2).unwrap();
        server.register("b", FIGURE2).unwrap();
        let report = server.store_report();
        // The second registration materialized nothing new.
        assert!(report.maps.iter().all(|m| m.sharers == 2), "{report:#?}");
        assert_eq!(report.shared_slots, report.maps.len());
        assert!(report.maps.iter().all(|m| m.maintainer == "a"));

        server
            .apply_batch(&[
                Event::insert("R", tuple![2i64, 1i64]),
                Event::insert("S", tuple![1i64, 3i64]),
                Event::insert("T", tuple![3i64, 10i64]),
            ])
            .unwrap();
        assert_eq!(server.scalar("a").unwrap(), Value::Int(20));
        assert_eq!(server.scalar("b").unwrap(), Value::Int(20));
        // All of b's statements were skipped (a maintains everything),
        // but b still counted its deliveries.
        assert_eq!(server.events_processed("b").unwrap(), 3);
        assert!(server.store_report().dedup_skipped_statements > 0);
        // Memory: the pair costs 1×, the unshared baseline 2×.
        assert_eq!(server.memory_bytes_if_unshared(), 2 * server.memory_bytes());
    }

    #[test]
    fn overlapping_views_share_only_equivalent_maps() {
        let mut server = ViewServer::new(&rst_catalog());
        server.register("figure2", FIGURE2).unwrap();
        server
            .register("r_by_b", "select B, sum(A) from R group by B")
            .unwrap();
        let report = server.store_report();
        assert!(report.maps.iter().any(|m| m.sharers == 1));
        assert_eq!(
            server.memory_bytes(),
            server.memory_bytes_if_unshared(),
            "disjoint structures share nothing, so both measures agree"
        );
    }

    #[test]
    fn base_maps_of_first_order_views_are_materialized_once() {
        let mut server = ViewServer::new(&rst_catalog());
        server
            .register_with("q1", FIGURE2, &CompileOptions::first_order())
            .unwrap();
        server
            .register_with(
                "q2",
                "select count(*) from R, S where R.B = S.B",
                &CompileOptions::first_order(),
            )
            .unwrap();
        let report = server.store_report();
        let base_r: Vec<_> = report
            .maps
            .iter()
            .filter(|m| m.aliases.iter().any(|(_, n)| n == "BASE_R"))
            .collect();
        assert_eq!(base_r.len(), 1, "one BASE_R slot: {report:#?}");
        assert_eq!(base_r[0].sharers, 2);
        assert_eq!(base_r[0].maintainer, "q1");

        // Feed events; the shared base map is written once per event by
        // q1 and both views agree with a reference engine.
        let events = [
            Event::insert("R", tuple![1i64, 1i64]),
            Event::insert("S", tuple![1i64, 2i64]),
            Event::insert("R", tuple![5i64, 1i64]),
            Event::delete("R", tuple![1i64, 1i64]),
            Event::insert("T", tuple![2i64, 4i64]),
        ];
        server.apply_batch(&events).unwrap();
        assert_eq!(server.scalar("q2").unwrap(), Value::Int(1));
        let base = server.map_snapshot("q2", "BASE_R").unwrap().unwrap();
        assert_eq!(base.len(), 1);
        assert_eq!(base[0].0, tuple![5i64, 1i64]);
        assert!(server.store_report().dedup_skipped_statements > 0);
    }

    #[test]
    fn self_join_views_keep_private_copies_of_pre_event_read_maps() {
        use dbtoaster_runtime::Engine;
        // Both self-join views materialize an alpha-equivalent
        // sum-of-volume-by-price map over BIDS, but each reads it in
        // its own BIDS triggers' *delta* statements — a pre-event read.
        // Sharing it would let view A's update land before view B's
        // read within one event; registration must give each view a
        // private copy instead.
        let catalog = Catalog::new().with(dbtoaster_common::Schema::new(
            "BIDS",
            vec![
                ("PRICE", dbtoaster_common::ColumnType::Int),
                ("VOLUME", dbtoaster_common::ColumnType::Int),
            ],
        ));
        let a = "select sum(b1.VOLUME * b2.VOLUME) from BIDS b1, BIDS b2 \
                 where b1.PRICE = b2.PRICE";
        let b = "select sum(b1.VOLUME) from BIDS b1, BIDS b2 where b1.PRICE = b2.PRICE";
        let mut server = ViewServer::new(&catalog);
        server.register("a", a).unwrap();
        server.register("b", b).unwrap();

        let events = [
            Event::insert("BIDS", tuple![10i64, 3i64]),
            Event::insert("BIDS", tuple![10i64, 5i64]),
            Event::insert("BIDS", tuple![20i64, 7i64]),
        ];
        server.apply_batch(&events).unwrap();
        for (name, sql) in [("a", a), ("b", b)] {
            let program = compile_sql(sql, &catalog, &CompileOptions::full()).unwrap();
            let mut engine = Engine::new(&program).unwrap();
            engine.process(&events).unwrap();
            assert_eq!(
                server.scalar(name).unwrap(),
                engine.scalar_result(),
                "{name} diverged from its private engine"
            );
        }
        // sum(b1.V) over the self-join at equal prices: groups of sizes
        // {2, 1} contribute (3+5)*2 + 7*1.
        assert_eq!(server.scalar("b").unwrap(), Value::Int(23));
    }

    #[test]
    fn shared_views_match_independent_engines_exactly() {
        use dbtoaster_runtime::Engine;
        let catalog = rst_catalog();
        let queries = [
            ("figure2", FIGURE2),
            ("figure2_again", FIGURE2),
            ("r_by_b", "select B, sum(A) from R group by B"),
            ("joined", "select count(*) from R, S where R.B = S.B"),
        ];
        let mut server = ViewServer::new(&catalog);
        let mut engines = Vec::new();
        for (name, sql) in queries {
            server.register(name, sql).unwrap();
            let program = compile_sql(sql, &catalog, &CompileOptions::full()).unwrap();
            engines.push(Engine::new(&program).unwrap());
        }
        let mut stream = UpdateStream::new();
        for i in 0..60i64 {
            stream.push(Event::insert("R", tuple![i % 11, i % 4]));
            stream.push(Event::insert("S", tuple![i % 4, i % 6]));
            stream.push(Event::insert("T", tuple![i % 6, i]));
            if i % 3 == 0 {
                stream.push(Event::delete("R", tuple![i % 11, i % 4]));
            }
        }
        for chunk in stream.events.chunks(17) {
            server.apply_batch(chunk).unwrap();
        }
        for engine in &mut engines {
            engine.process(&stream).unwrap();
        }
        for ((name, _), engine) in queries.iter().zip(&engines) {
            assert_eq!(
                server.result(name).unwrap(),
                engine.result(),
                "{name} diverged from its private engine"
            );
        }
    }
}
