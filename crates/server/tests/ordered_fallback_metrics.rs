//! Integration coverage for `dbt_ordered_fallback_total{reason}`.
//!
//! The engine counts ordered-plan precondition failures in
//! process-global relaxed atomics; the server claims their growth into
//! registry counters by delta at scrape time. This test forces two
//! distinct fallback reasons through a live server — a negative inner
//! aggregate (deleting a never-inserted bid) and incomparable outer
//! keys (a string smuggled into the PRICE column) — and checks the
//! delta-sync counts every increment exactly once: a second scrape with
//! no new events adds nothing.
//!
//! Everything lives in one `#[test]` because the engine's fallback
//! counters are process-global: a single function keeps the deltas this
//! test observes unentangled from any sibling test.

use dbtoaster_common::{tuple, Event, Value};
use dbtoaster_runtime::ordered_fallback;
use dbtoaster_server::ViewServer;
use dbtoaster_workloads::orderbook::{orderbook_catalog, VWAP_NESTED};

/// `(negative_inner, incomparable_keys)` readings of the engine's
/// process-global counters.
fn engine_counts() -> (u64, u64) {
    let counts = ordered_fallback::counts();
    (
        counts[ordered_fallback::NEGATIVE_INNER],
        counts[ordered_fallback::INCOMPARABLE_KEYS],
    )
}

/// The registry's `dbt_ordered_fallback_total{reason="..."}` reading,
/// parsed from the Prometheus text rendering (0 when absent).
fn scraped_count(text: &str, reason: &str) -> u64 {
    let needle = format!("dbt_ordered_fallback_total{{reason=\"{reason}\"}} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&needle))
        .map(|v| v.trim().parse().expect("counter value"))
        .unwrap_or(0)
}

/// An orderbook bid event; the schema is `BIDS(T, ID, BROKER_ID,
/// VOLUME, PRICE)`.
fn bid(delete: bool, volume: f64, price: f64) -> Event {
    let t = tuple![1.0f64, 1i64, 1i64, volume, price];
    if delete {
        Event::delete("BIDS", t)
    } else {
        Event::insert("BIDS", t)
    }
}

#[test]
fn fallback_reasons_sync_into_the_registry_exactly_once() {
    let catalog = orderbook_catalog();
    let mut server = ViewServer::new(&catalog);
    server.register("vwap", VWAP_NESTED).unwrap();
    let (neg0, inc0) = engine_counts();

    // A healthy book first: the nested VWAP's monotone-guard statement
    // runs on the ordered fast path, no fallbacks.
    server.apply(&bid(false, 10.0, 100.0)).unwrap();
    server.apply(&bid(false, 5.0, 102.0)).unwrap();

    // Reason 1 — incomparable_keys: a string PRICE gives the outer
    // ordered index mixed key classes, so the flip-point search is
    // ill-defined and the statement falls back to the loop.
    server
        .apply(&Event::insert(
            "BIDS",
            tuple![1.0f64, 2i64, 1i64, 3.0f64, Value::str("oops")],
        ))
        .unwrap();
    server.apply(&bid(false, 2.0, 101.0)).unwrap();
    let (_, inc1) = engine_counts();
    assert!(
        inc1 > inc0,
        "a mixed-class outer key must force incomparable_keys fallbacks"
    );

    // Undo the poison pill so the outer keys are numeric again...
    server
        .apply(&Event::delete(
            "BIDS",
            tuple![1.0f64, 2i64, 1i64, 3.0f64, Value::str("oops")],
        ))
        .unwrap();

    // ...then reason 2 — negative_inner: deleting a bid that was never
    // inserted drives its volume sum to −7, breaking the monotonicity
    // the probe needs (a shrinking range could grow in value).
    server.apply(&bid(true, 7.0, 50.0)).unwrap();
    server.apply(&bid(false, 4.0, 103.0)).unwrap();
    let (neg2, inc2) = engine_counts();
    assert!(
        neg2 > neg0,
        "a negative inner aggregate must force negative_inner fallbacks"
    );

    // First scrape: the prepare walk claims the engine deltas into the
    // registry counters, each increment exactly once.
    server.refresh_store_metrics();
    let text = server.metrics().render_prometheus();
    let neg_scraped = scraped_count(&text, "negative_inner");
    let inc_scraped = scraped_count(&text, "incomparable_keys");
    // >= rather than ==: sibling tests in this process may also run
    // interval statements; the registry can only be ahead of what this
    // test saw before its own scrape, never behind.
    assert!(
        neg_scraped >= neg2 - neg0,
        "registry negative_inner {neg_scraped} lost increments (engine grew by {})",
        neg2 - neg0
    );
    assert!(
        inc_scraped >= inc2 - inc0,
        "registry incomparable_keys {inc_scraped} lost increments (engine grew by {})",
        inc2 - inc0
    );

    // Second scrape with no events in between: the delta-sync must add
    // nothing — each engine increment is claimed exactly once.
    let (neg3, inc3) = engine_counts();
    assert_eq!((neg3, inc3), (neg2, inc2), "no events ran since");
    server.refresh_store_metrics();
    let again = server.metrics().render_prometheus();
    assert_eq!(
        scraped_count(&again, "negative_inner"),
        neg_scraped,
        "re-scraping without new events must not double-count"
    );
    assert_eq!(
        scraped_count(&again, "incomparable_keys"),
        inc_scraped,
        "re-scraping without new events must not double-count"
    );
}
