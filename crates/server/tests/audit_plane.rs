//! Integration coverage for the shadow audit plane.
//!
//! Two claims, both load-bearing for trusting the auditor in
//! production:
//!
//! 1. **No false positives.** A randomized order-book run over a
//!    multi-view portfolio, audited end to end, reports zero
//!    mismatches — the delta-maintained views really do equal the
//!    oracle at every sampled point, across both the single-event and
//!    the batched ingestion paths.
//! 2. **Real corruption is detected.** Deliberately corrupting one
//!    live map entry between events (the fault-injection hook) breaks
//!    the audit chain: the next audited event's pre-state no longer
//!    matches the oracle's retained post-state, and the mismatch lands
//!    in the counters and the ring. A detector that cannot fail its
//!    fault-injection test is indistinguishable from one that checks
//!    nothing.

use dbtoaster_common::{tuple, Event};
use dbtoaster_server::{ViewServer, CHECK_CHAIN};
use dbtoaster_workloads::orderbook::{
    orderbook_catalog, OrderBookConfig, OrderBookGenerator, MARKET_MAKER, VWAP_COMPONENTS,
};

fn bid(volume: f64, price: f64) -> Event {
    Event::insert("BIDS", tuple![1.0f64, 1i64, 1i64, volume, price])
}

#[test]
fn a_clean_randomized_run_audits_with_zero_mismatches() {
    let catalog = orderbook_catalog();
    let mut server = ViewServer::new(&catalog);
    server.register("vwap", VWAP_COMPONENTS).unwrap();
    server.register("mm", MARKET_MAKER).unwrap();
    server.auditor().set_sample_one_in(7);
    server.auditor().set_enabled(true);

    let stream = OrderBookGenerator::new(OrderBookConfig {
        messages: 2_000,
        book_depth: 200,
        ..OrderBookConfig::default()
    })
    .generate();
    // Mixed ingestion: singles exercise the apply_with hook, batches
    // the apply_span hook.
    let (singles, rest) = stream.events.split_at(200);
    for event in singles {
        server.apply(event).unwrap();
    }
    for chunk in rest.chunks(256) {
        server.apply_batch(chunk).unwrap();
    }

    let audit = server.auditor().handle();
    audit.drain();
    assert!(audit.checks_total() > 100, "sampled audits actually ran");
    assert_eq!(
        audit.mismatch_total(),
        0,
        "clean run must not report mismatches: {:?}",
        audit.mismatches()
    );
    assert_eq!(audit.dropped_total(), 0, "worker kept up with sample 1/7");
    let text = server.metrics().render_prometheus();
    assert!(text.contains("dbt_audit_checks_total{view=\"vwap\"}"));
    assert!(text.contains("dbt_audit_checks_total{view=\"mm\"}"));
    assert!(!text.contains("dbt_audit_mismatch_total"));
}

#[test]
fn corrupting_a_map_entry_breaks_the_audit_chain() {
    let catalog = orderbook_catalog();
    let mut server = ViewServer::new(&catalog);
    // A single view at sample 1: consecutive events audit the same
    // view, so every audit chains off the previous one and the
    // between-events corruption window is provably covered.
    server.register("vwap", VWAP_COMPONENTS).unwrap();
    server.auditor().set_sample_one_in(1);
    server.auditor().set_enabled(true);

    for i in 0..10 {
        server.apply(&bid(10.0 + f64::from(i), 100.0)).unwrap();
    }
    let audit = server.auditor().handle();
    audit.drain();
    assert_eq!(audit.mismatch_total(), 0, "no mismatch before injection");

    // Corrupt a live entry of some view map, then keep feeding.
    let map = server
        .profile("vwap")
        .unwrap()
        .per_map
        .into_iter()
        .find(|(_, entries, _)| *entries > 0)
        .map(|(name, _, _)| name)
        .expect("a live map to corrupt");
    assert!(server.corrupt_map_entry("vwap", &map).unwrap());
    for i in 0..5 {
        server.apply(&bid(20.0 + f64::from(i), 101.0)).unwrap();
    }
    audit.drain();

    assert!(
        audit.mismatch_total() >= 1,
        "injected corruption must be detected"
    );
    let mismatches = audit.mismatches();
    let hit = mismatches
        .iter()
        .find(|m| m.kind == CHECK_CHAIN)
        .expect("a chain-check mismatch");
    assert_eq!(hit.view, "vwap");
    assert!(
        !hit.expected.is_empty() || !hit.actual.is_empty(),
        "the mismatch record carries the differing entries"
    );
    let text = server.metrics().render_prometheus();
    assert!(text.contains("dbt_audit_mismatch_total{view=\"vwap\"}"));
}

#[test]
fn corrupt_map_entry_rejects_unknown_names() {
    let catalog = orderbook_catalog();
    let mut server = ViewServer::new(&catalog);
    server.register("vwap", VWAP_COMPONENTS).unwrap();
    assert!(server.corrupt_map_entry("nope", "m").is_err());
    assert!(server.corrupt_map_entry("vwap", "no_such_map").is_err());
}
