//! Relational executor substrate.
//!
//! The bakeoff baselines (and the correctness oracle used by the test
//! suite) need a conventional way to evaluate queries: store base
//! relations as multisets and evaluate calculus expressions by
//! interpretation — nested-loop enumeration over table contents, exactly
//! the work a query-plan interpreter performs for every re-evaluation.
//! This crate provides that substrate:
//!
//! * [`Database`] — multiset storage for base relations, updated by
//!   update-stream events,
//! * [`evaluate_groups`] / [`evaluate_scalar`] — a reference interpreter
//!   for calculus expressions over a [`Database`], used by the
//!   naive-re-evaluation and first-order-IVM baseline engines and as the
//!   ground truth the DBToaster engine is tested against.

use std::collections::BTreeSet;

use dbtoaster_calculus::{CalcExpr, QueryCalc, ResultColumn, ValExpr, Var};
use dbtoaster_common::{Error, Event, FxHashMap, Result, Tuple, Value};

/// Multiset storage for base relations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: FxHashMap<String, FxHashMap<Tuple, i64>>,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    /// Apply one update-stream event.
    pub fn apply(&mut self, event: &Event) {
        let table = self.tables.entry(event.relation.clone()).or_default();
        let entry = table.entry(event.tuple.clone()).or_insert(0);
        *entry += event.kind.sign();
        if *entry == 0 {
            table.remove(&event.tuple);
        }
    }

    /// The multiset of tuples of a relation (empty if never touched).
    pub fn table(&self, relation: &str) -> impl Iterator<Item = (&Tuple, i64)> {
        self.tables
            .get(relation)
            .into_iter()
            .flat_map(|t| t.iter().map(|(k, m)| (k, *m)))
    }

    /// Number of live tuples in a relation.
    pub fn cardinality(&self, relation: &str) -> usize {
        self.tables.get(relation).map(|t| t.len()).unwrap_or(0)
    }

    /// Approximate memory footprint of all stored tuples in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.tables
            .values()
            .flat_map(|t| t.keys())
            .map(|k| k.approx_bytes() + std::mem::size_of::<i64>())
            .sum()
    }
}

/// Variable bindings used by the interpreter.
pub type Env = FxHashMap<Var, Value>;

/// Evaluate a grouped calculus expression (typically `AggSum(group,
/// body)`) over the database, returning the non-zero group aggregates.
pub fn evaluate_groups(
    expr: &CalcExpr,
    group: &[Var],
    db: &Database,
    outer: &Env,
) -> Result<FxHashMap<Tuple, Value>> {
    let mut out: FxHashMap<Tuple, Value> = FxHashMap::default();
    let body = match expr {
        CalcExpr::AggSum { body, .. } => body,
        other => other,
    };
    let mut env = outer.clone();
    enumerate(body, db, &mut env, Value::ONE, &mut |env, weight| {
        let key: Tuple = group
            .iter()
            .map(|g| env.get(g).cloned().unwrap_or(Value::Null))
            .collect();
        let slot = out.entry(key).or_insert(Value::ZERO);
        *slot = slot.add(weight);
        Ok(())
    })?;
    out.retain(|_, v| !v.is_zero());
    Ok(out)
}

/// Evaluate a calculus expression as a single scalar (no group).
pub fn evaluate_scalar(expr: &CalcExpr, db: &Database, outer: &Env) -> Result<Value> {
    let groups = evaluate_groups(expr, &[], db, outer)?;
    Ok(groups.into_values().next().unwrap_or(Value::ZERO))
}

/// Evaluate a full query (all result columns) against the database —
/// exactly what a conventional engine does when it re-runs a view query.
pub fn evaluate_query(qc: &QueryCalc, db: &Database) -> Result<Vec<(Tuple, Vec<Value>)>> {
    let env = Env::default();
    // Evaluate every backing map.
    let mut maps: FxHashMap<String, FxHashMap<Tuple, Value>> = FxHashMap::default();
    for spec in &qc.maps {
        maps.insert(
            spec.name.clone(),
            evaluate_groups(&spec.definition, &spec.keys, db, &env)?,
        );
    }
    assemble_from_maps(qc, &maps)
}

/// Assemble result rows from already-computed backing maps (shared by the
/// re-evaluation path above and by the incremental baseline engines,
/// which maintain the maps themselves).
pub fn assemble_from_maps(
    qc: &QueryCalc,
    maps: &FxHashMap<String, FxHashMap<Tuple, Value>>,
) -> Result<Vec<(Tuple, Vec<Value>)>> {
    // Group keys: union over driver maps.
    let mut keys: BTreeSet<Tuple> = BTreeSet::new();
    if qc.group_vars.is_empty() {
        keys.insert(Tuple::empty());
    } else {
        for col in &qc.columns {
            match col {
                ResultColumn::Sum { map, .. } | ResultColumn::Avg { count_map: map, .. } => {
                    keys.extend(maps[map].keys().cloned());
                }
                ResultColumn::Extremum { map, .. } => {
                    keys.extend(
                        maps[map]
                            .keys()
                            .map(|k| Tuple::new(k.0[..qc.group_vars.len()].to_vec())),
                    );
                }
                ResultColumn::Group { .. } => {}
            }
        }
    }

    let mut rows = Vec::new();
    for key in keys {
        let mut values = Vec::new();
        for col in &qc.columns {
            let v = match col {
                ResultColumn::Group { var, .. } => {
                    let idx = qc.group_vars.iter().position(|g| g == var).ok_or_else(|| {
                        Error::Compile(format!("group column {var} not in group variables"))
                    })?;
                    key[idx].clone()
                }
                ResultColumn::Sum { map, .. } => {
                    maps[map].get(&key).cloned().unwrap_or(Value::ZERO)
                }
                ResultColumn::Avg {
                    sum_map, count_map, ..
                } => {
                    let s = maps[sum_map].get(&key).cloned().unwrap_or(Value::ZERO);
                    let c = maps[count_map].get(&key).cloned().unwrap_or(Value::ZERO);
                    s.div(&c)
                }
                ResultColumn::Extremum { map, is_min, .. } => {
                    let mut best: Option<Value> = None;
                    for (k, v) in &maps[map] {
                        if k.0[..key.arity()] == key.0[..] && v.as_f64() > 0.0 {
                            let candidate = k.0[key.arity()].clone();
                            best = Some(match best {
                                None => candidate,
                                Some(b) => {
                                    if *is_min {
                                        b.min_of(&candidate)
                                    } else {
                                        b.max_of(&candidate)
                                    }
                                }
                            });
                        }
                    }
                    best.unwrap_or(Value::Null)
                }
            };
            values.push(v);
        }
        rows.push((key, values));
    }
    // Scalar queries always produce their single row; grouped queries drop
    // empty groups (all aggregates zero) to mirror SQL semantics.
    if !qc.group_vars.is_empty() {
        rows.retain(|(_, vals)| {
            vals.iter()
                .zip(&qc.columns)
                .any(|(v, c)| !matches!(c, ResultColumn::Group { .. }) && !v.is_zero())
        });
    }
    Ok(rows)
}

/// Recursive enumeration of the bindings of a calculus expression.
/// `weight` accumulates multiplicities and numeric factors; `emit` is
/// called once per complete binding with the final weight.
fn enumerate(
    expr: &CalcExpr,
    db: &Database,
    env: &mut Env,
    weight: Value,
    emit: &mut dyn FnMut(&Env, &Value) -> Result<()>,
) -> Result<()> {
    if weight.is_zero() {
        return Ok(());
    }
    match expr {
        CalcExpr::Val(v) => {
            let value = eval_val(v, env)?;
            emit(env, &weight.mul(&value))
        }
        CalcExpr::Cmp { op, left, right } => {
            // An equality one side of which is a not-yet-bound variable
            // *binds* that variable (this is how trigger-argument
            // equalities produced by the delta transformation constrain
            // the key of a maintenance query).
            if *op == dbtoaster_calculus::CmpOp::Eq {
                if let ValExpr::Var(x) = left {
                    if !env.contains_key(x) {
                        if let Ok(r) = eval_val(right, env) {
                            env.insert(x.clone(), r);
                            emit(env, &weight)?;
                            env.remove(x);
                            return Ok(());
                        }
                    }
                }
                if let ValExpr::Var(y) = right {
                    if !env.contains_key(y) {
                        if let Ok(l) = eval_val(left, env) {
                            env.insert(y.clone(), l);
                            emit(env, &weight)?;
                            env.remove(y);
                            return Ok(());
                        }
                    }
                }
            }
            let l = eval_val(left, env)?;
            let r = eval_val(right, env)?;
            if op.eval(&l, &r) {
                emit(env, &weight)
            } else {
                Ok(())
            }
        }
        CalcExpr::Rel { name, vars } => {
            // Enumerate tuples consistent with the current bindings.
            let snapshot: Vec<(Tuple, i64)> = db.table(name).map(|(t, m)| (t.clone(), m)).collect();
            'tuples: for (tuple, mult) in snapshot {
                let mut added: Vec<Var> = Vec::new();
                for (var, value) in vars.iter().zip(tuple.iter()) {
                    match env.get(var) {
                        Some(existing) if existing == value => {}
                        Some(_) => {
                            for a in added.drain(..) {
                                env.remove(&a);
                            }
                            continue 'tuples;
                        }
                        None => {
                            env.insert(var.clone(), value.clone());
                            added.push(var.clone());
                        }
                    }
                }
                emit(env, &weight.scale(mult))?;
                for a in added {
                    env.remove(&a);
                }
            }
            Ok(())
        }
        CalcExpr::MapRef { name, .. } => Err(Error::Runtime(format!(
            "the reference interpreter evaluates base relations only, found map {name}"
        ))),
        CalcExpr::Neg(e) => enumerate(e, db, env, weight.neg(), emit),
        CalcExpr::Sum(ts) => {
            for t in ts {
                enumerate(t, db, env, weight.clone(), emit)?;
            }
            Ok(())
        }
        CalcExpr::Prod(factors) => enumerate_product(factors, db, env, weight, emit),
        CalcExpr::AggSum { group, body } => {
            // A nested aggregation evaluated in the current environment:
            // its value per group is computed and the groups are emitted.
            let groups = evaluate_groups_inner(body, group, db, env)?;
            for (key, value) in groups {
                let mut added = Vec::new();
                let mut consistent = true;
                for (g, v) in group.iter().zip(key.iter()) {
                    match env.get(g) {
                        Some(existing) if existing == v => {}
                        Some(_) => {
                            consistent = false;
                            break;
                        }
                        None => {
                            env.insert(g.clone(), v.clone());
                            added.push(g.clone());
                        }
                    }
                }
                if consistent {
                    emit(env, &weight.mul(&value))?;
                }
                for a in added {
                    env.remove(&a);
                }
            }
            Ok(())
        }
        CalcExpr::Lift { var, body } => {
            let value = evaluate_scalar_inner(body, db, env)?;
            let already = env.contains_key(var);
            if already {
                // The lifted variable is constrained: multiplicity 1 only
                // when the values agree.
                if env[var] == value {
                    emit(env, &weight)?;
                }
                Ok(())
            } else {
                env.insert(var.clone(), value);
                emit(env, &weight)?;
                env.remove(var);
                Ok(())
            }
        }
        CalcExpr::Exists(body) => {
            let value = evaluate_scalar_inner(body, db, env)?;
            if value.is_zero() {
                Ok(())
            } else {
                emit(env, &weight)
            }
        }
    }
}

fn enumerate_product(
    factors: &[CalcExpr],
    db: &Database,
    env: &mut Env,
    weight: Value,
    emit: &mut dyn FnMut(&Env, &Value) -> Result<()>,
) -> Result<()> {
    match factors.len() {
        0 => emit(env, &weight),
        _ => {
            let (head, rest) = factors.split_first().expect("non-empty");
            // For each binding/weight of the head, enumerate the rest.
            // Reorder so relation atoms come before value/comparison
            // factors that depend on their variables being bound.
            let mut result = Ok(());
            let mut inner = |env: &Env, w: &Value| -> Result<()> {
                let mut env2 = env.clone();
                enumerate_product(rest, db, &mut env2, w.clone(), emit)
            };
            if let Err(e) = enumerate(head, db, env, weight, &mut inner) {
                result = Err(e);
            }
            result
        }
    }
}

fn evaluate_groups_inner(
    body: &CalcExpr,
    group: &[Var],
    db: &Database,
    outer: &Env,
) -> Result<FxHashMap<Tuple, Value>> {
    let mut out: FxHashMap<Tuple, Value> = FxHashMap::default();
    let mut env = outer.clone();
    enumerate(body, db, &mut env, Value::ONE, &mut |env, weight| {
        let key: Tuple = group
            .iter()
            .map(|g| env.get(g).cloned().unwrap_or(Value::Null))
            .collect();
        let slot = out.entry(key).or_insert(Value::ZERO);
        *slot = slot.add(weight);
        Ok(())
    })?;
    out.retain(|_, v| !v.is_zero());
    Ok(out)
}

fn evaluate_scalar_inner(body: &CalcExpr, db: &Database, outer: &Env) -> Result<Value> {
    let groups = evaluate_groups_inner(body, &[], db, outer)?;
    Ok(groups.into_values().next().unwrap_or(Value::ZERO))
}

/// Sort factors so that value expressions and comparisons come after the
/// relation atoms that bind their variables — a convenience for callers
/// constructing products by hand. (`translate_query` already emits
/// relation atoms first.)
pub fn order_factors(factors: &mut [CalcExpr]) {
    factors.sort_by_key(|f| match f {
        CalcExpr::Rel { .. } => 0,
        CalcExpr::AggSum { .. } | CalcExpr::Lift { .. } | CalcExpr::Exists(_) => 1,
        CalcExpr::Cmp { .. } => 2,
        _ => 3,
    });
}

fn eval_val(v: &ValExpr, env: &Env) -> Result<Value> {
    Ok(match v {
        ValExpr::Const(c) => c.clone(),
        ValExpr::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| Error::Runtime(format!("unbound variable {x} in interpreter")))?,
        ValExpr::Add(es) => {
            let mut acc = Value::ZERO;
            for e in es {
                acc = acc.add(&eval_val(e, env)?);
            }
            acc
        }
        ValExpr::Mul(es) => {
            let mut acc = Value::ONE;
            for e in es {
                acc = acc.mul(&eval_val(e, env)?);
            }
            acc
        }
        ValExpr::Neg(e) => eval_val(e, env)?.neg(),
        ValExpr::Div(a, b) => eval_val(a, env)?.div(&eval_val(b, env)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_calculus::translate_query;
    use dbtoaster_common::{tuple, Catalog, ColumnType, Schema};
    use dbtoaster_sql::{analyze, parse_query};

    fn rst_catalog() -> Catalog {
        Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
            .with(Schema::new(
                "T",
                vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
            ))
    }

    fn qc(sql: &str, cat: &Catalog) -> dbtoaster_calculus::QueryCalc {
        translate_query(&analyze(&parse_query(sql).unwrap(), cat).unwrap(), "Q").unwrap()
    }

    fn load(db: &mut Database, rel: &str, rows: &[(i64, i64)]) {
        for (a, b) in rows {
            db.apply(&Event::insert(rel, tuple![*a, *b]));
        }
    }

    #[test]
    fn database_multiset_semantics() {
        let mut db = Database::new();
        db.apply(&Event::insert("R", tuple![1i64, 2i64]));
        db.apply(&Event::insert("R", tuple![1i64, 2i64]));
        assert_eq!(db.table("R").next().unwrap().1, 2);
        db.apply(&Event::delete("R", tuple![1i64, 2i64]));
        assert_eq!(db.table("R").next().unwrap().1, 1);
        db.apply(&Event::delete("R", tuple![1i64, 2i64]));
        assert_eq!(db.cardinality("R"), 0);
    }

    #[test]
    fn interpreter_computes_the_three_way_join_aggregate() {
        let cat = rst_catalog();
        let q = qc(
            "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C",
            &cat,
        );
        let mut db = Database::new();
        load(&mut db, "R", &[(5, 1), (2, 1)]);
        load(&mut db, "S", &[(1, 10), (1, 20)]);
        load(&mut db, "T", &[(10, 7), (10, 3), (20, 100)]);
        let rows = evaluate_query(&q, &db).unwrap();
        // 5*7 + 5*3 + 2*7 + 2*3 + 5*100 + 2*100 = 770
        assert_eq!(rows[0].1[0], Value::Int(770));
    }

    #[test]
    fn interpreter_handles_group_by_and_avg() {
        let cat = rst_catalog();
        let q = qc("select B, sum(A), avg(A) from R group by B", &cat);
        let mut db = Database::new();
        load(&mut db, "R", &[(10, 1), (20, 1), (5, 2)]);
        let mut rows = evaluate_query(&q, &db).unwrap();
        rows.sort();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].1,
            vec![Value::Int(1), Value::Int(30), Value::Int(15)]
        );
    }

    #[test]
    fn interpreter_handles_nested_aggregate_predicates() {
        let cat = Catalog::new().with(Schema::new(
            "BIDS",
            vec![("PRICE", ColumnType::Int), ("VOLUME", ColumnType::Int)],
        ));
        // Sum of price*volume for bids whose price is above the average of
        // a correlated sub-sum: here, bids strictly dominated in price by
        // less than 15 units of volume.
        let q = qc(
            "select sum(b1.PRICE * b1.VOLUME) from BIDS b1 \
             where (select sum(b2.VOLUME) from BIDS b2 where b2.PRICE > b1.PRICE) < 15",
            &cat,
        );
        let mut db = Database::new();
        load(&mut db, "BIDS", &[(10, 10), (20, 10), (30, 10)]);
        // For price 30: dominated volume 0 < 15 -> included (300).
        // For price 20: dominated volume 10 < 15 -> included (200).
        // For price 10: dominated volume 20 >= 15 -> excluded.
        let rows = evaluate_query(&q, &db).unwrap();
        assert_eq!(rows[0].1[0], Value::Int(500));
    }

    #[test]
    fn unbound_variables_are_reported() {
        let e = CalcExpr::Val(ValExpr::var("NOPE"));
        let db = Database::new();
        assert!(evaluate_scalar(&e, &db, &Env::default()).is_err());
    }
}
