//! Hand-written SQL tokenizer.
//!
//! Produces a flat token stream with byte offsets so the parser can report
//! useful positions. Keywords are recognized case-insensitively; quoted
//! strings use single quotes with `''` escaping, matching standard SQL.

use dbtoaster_common::{Error, Result};

/// Token categories.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or bare identifier, upper-cased (SQL identifiers are case
    /// insensitive in this dialect).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// Single-quoted string literal, unescaped.
    Str(String),
    /// Punctuation / operators.
    Symbol(Symbol),
    /// End of input (always the last token).
    Eof,
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

/// A token plus its byte offset in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push_sym(&mut tokens, Symbol::LParen, &mut i),
            ')' => push_sym(&mut tokens, Symbol::RParen, &mut i),
            ',' => push_sym(&mut tokens, Symbol::Comma, &mut i),
            '.' => push_sym(&mut tokens, Symbol::Dot, &mut i),
            ';' => push_sym(&mut tokens, Symbol::Semicolon, &mut i),
            '*' => push_sym(&mut tokens, Symbol::Star, &mut i),
            '+' => push_sym(&mut tokens, Symbol::Plus, &mut i),
            '-' => push_sym(&mut tokens, Symbol::Minus, &mut i),
            '/' => push_sym(&mut tokens, Symbol::Slash, &mut i),
            '=' => push_sym(&mut tokens, Symbol::Eq, &mut i),
            '<' => {
                let (sym, len) = if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    (Symbol::LtEq, 2)
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    (Symbol::NotEq, 2)
                } else {
                    (Symbol::Lt, 1)
                };
                tokens.push(Token {
                    kind: TokenKind::Symbol(sym),
                    offset: i,
                });
                i += len;
            }
            '>' => {
                let (sym, len) = if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    (Symbol::GtEq, 2)
                } else {
                    (Symbol::Gt, 1)
                };
                tokens.push(Token {
                    kind: TokenKind::Symbol(sym),
                    offset: i,
                });
                i += len;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Symbol(Symbol::NotEq),
                    offset: i,
                });
                i += 2;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(Error::Parse(format!(
                            "unterminated string literal starting at byte {start}"
                        )));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        Error::Parse(format!("invalid float literal '{text}' at byte {start}"))
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        Error::Parse(format!("invalid integer literal '{text}' at byte {start}"))
                    })?)
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_ascii_uppercase()),
                    offset: start,
                });
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character '{other}' at byte {i}"
                )))
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

fn push_sym(tokens: &mut Vec<Token>, sym: Symbol, i: &mut usize) {
    tokens.push(Token {
        kind: TokenKind::Symbol(sym),
        offset: *i,
    });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_identifiers_are_uppercased() {
        let ks = kinds("select Sum(a) from r");
        assert_eq!(ks[0], TokenKind::Ident("SELECT".into()));
        assert_eq!(ks[1], TokenKind::Ident("SUM".into()));
        assert_eq!(ks[3], TokenKind::Ident("A".into()));
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("0.25")[0], TokenKind::Float(0.25));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::Float(0.25));
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(kinds("'MFGR#1'")[0], TokenKind::Str("MFGR#1".into()));
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn comparison_operators() {
        use Symbol::*;
        let ks = kinds("a <= b >= c <> d != e < f > g = h");
        let syms: Vec<_> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec![LtEq, GtEq, NotEq, NotEq, Lt, Gt, Eq]);
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("select -- the result\n 1");
        assert_eq!(ks.len(), 3); // SELECT, 1, EOF
        assert_eq!(ks[1], TokenKind::Int(1));
    }

    #[test]
    fn offsets_point_into_source() {
        let toks = tokenize("select a").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(tokenize("select ¤").is_err());
    }
}
