//! Recursive-descent parser for the supported SQL fragment.
//!
//! Grammar (informal):
//!
//! ```text
//! statements := statement (';' statement)* ';'?
//! statement  := create | query
//! create     := CREATE (TABLE | STREAM) ident '(' col_def (',' col_def)* ')'
//! query      := SELECT item (',' item)* FROM table (',' table)*
//!               [WHERE expr] [GROUP BY expr (',' expr)*]
//! expr       := or_expr
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := not_expr (AND not_expr)*
//! not_expr   := NOT not_expr | cmp_expr
//! cmp_expr   := add_expr [(= | <> | < | <= | > | >=) add_expr
//!                         | [NOT] IN '(' literal (',' literal)* ')'
//!                         | BETWEEN add_expr AND add_expr]
//! add_expr   := mul_expr (('+'|'-') mul_expr)*
//! mul_expr   := unary (('*'|'/') unary)*
//! unary      := '-' unary | primary
//! primary    := literal | DATE 'Y-M-D' | agg '(' [expr|'*'] ')'
//!             | EXISTS '(' query ')' | '(' query ')' | '(' expr ')'
//!             | ident ['.' ident]
//! ```

use dbtoaster_common::{ColumnType, Error, Result, Value};

use crate::ast::*;
use crate::lexer::{tokenize, Symbol, Token, TokenKind};

/// Parse a semicolon-separated script of statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(Symbol::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.parse_statement()?);
        if !p.eat_symbol(Symbol::Semicolon) && !p.at_eof() {
            return Err(p.error("expected ';' or end of input"));
        }
    }
    Ok(out)
}

/// Parse a single statement.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.eat_symbol(Symbol::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a single `SELECT` query.
pub fn parse_query(sql: &str) -> Result<SelectQuery> {
    match parse_statement(sql)? {
        Statement::Select(q) => Ok(q),
        Statement::Create(_) => Err(Error::Parse("expected a SELECT query".into())),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: &str) -> Error {
        Error::Parse(format!(
            "{msg} (near byte {})",
            self.tokens[self.pos].offset
        ))
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected keyword {kw}")))
        }
    }

    fn peek_symbol(&self, sym: Symbol) -> bool {
        matches!(self.peek(), TokenKind::Symbol(s) if *s == sym)
    }

    fn eat_symbol(&mut self, sym: Symbol) -> bool {
        if self.peek_symbol(sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Symbol) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {sym:?}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(Error::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // ---- statements -----------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.peek_keyword("CREATE") {
            self.parse_create().map(Statement::Create)
        } else if self.peek_keyword("SELECT") {
            self.parse_select().map(Statement::Select)
        } else {
            Err(self.error("expected SELECT or CREATE"))
        }
    }

    fn parse_create(&mut self) -> Result<CreateRelation> {
        self.expect_keyword("CREATE")?;
        let is_stream = if self.eat_keyword("STREAM") {
            true
        } else {
            self.expect_keyword("TABLE")?;
            false
        };
        let name = self.expect_ident()?;
        self.expect_symbol(Symbol::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident()?;
            let ty_name = self.expect_ident()?;
            let ty = match ty_name.as_str() {
                "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => ColumnType::Int,
                "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => ColumnType::Float,
                "VARCHAR" | "CHAR" | "TEXT" | "STRING" => {
                    // optional length argument, ignored
                    if self.eat_symbol(Symbol::LParen) {
                        self.bump();
                        self.expect_symbol(Symbol::RParen)?;
                    }
                    ColumnType::Str
                }
                "BOOLEAN" | "BOOL" => ColumnType::Bool,
                "DATE" => ColumnType::Date,
                other => {
                    return Err(Error::Parse(format!("unknown column type '{other}'")));
                }
            };
            columns.push((col, ty));
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_symbol(Symbol::RParen)?;
        Ok(CreateRelation {
            name,
            columns,
            is_stream,
        })
    }

    fn parse_select(&mut self) -> Result<SelectQuery> {
        self.expect_keyword("SELECT")?;
        let mut select = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let alias = if self.eat_keyword("AS") {
                Some(self.expect_ident()?)
            } else {
                match self.peek() {
                    TokenKind::Ident(s) if !is_reserved(s) && !self.peek_symbol(Symbol::Comma) => {
                        Some(self.expect_ident()?)
                    }
                    _ => None,
                }
            };
            select.push(SelectItem { expr, alias });
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let mut from = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let alias = if self.eat_keyword("AS") {
                self.expect_ident()?
            } else {
                match self.peek() {
                    TokenKind::Ident(s) if !is_reserved(s) => self.expect_ident()?,
                    _ => name.clone(),
                }
            };
            from.push(TableRef { name, alias });
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        Ok(SelectQuery {
            select,
            from,
            where_clause,
            group_by,
        })
    }

    // ---- expressions ----------------------------------------------------

    fn parse_expr(&mut self) -> Result<SqlExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<SqlExpr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = SqlExpr::binary(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<SqlExpr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = SqlExpr::binary(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<SqlExpr> {
        if self.eat_keyword("NOT") {
            let inner = self.parse_not()?;
            Ok(SqlExpr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<SqlExpr> {
        let left = self.parse_additive()?;

        let negated = {
            // look ahead for `NOT IN`
            if self.peek_keyword("NOT") {
                let save = self.pos;
                self.bump();
                if self.peek_keyword("IN") {
                    true
                } else {
                    self.pos = save;
                    false
                }
            } else {
                false
            }
        };

        if self.eat_keyword("IN") {
            self.expect_symbol(Symbol::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_additive()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(SqlExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(self.error("expected IN after NOT"));
        }

        if self.eat_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            return Ok(SqlExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            });
        }

        let op = match self.peek() {
            TokenKind::Symbol(Symbol::Eq) => Some(BinaryOp::Eq),
            TokenKind::Symbol(Symbol::NotEq) => Some(BinaryOp::NotEq),
            TokenKind::Symbol(Symbol::Lt) => Some(BinaryOp::Lt),
            TokenKind::Symbol(Symbol::LtEq) => Some(BinaryOp::LtEq),
            TokenKind::Symbol(Symbol::Gt) => Some(BinaryOp::Gt),
            TokenKind::Symbol(Symbol::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            Ok(SqlExpr::binary(op, left, right))
        } else {
            Ok(left)
        }
    }

    fn parse_additive(&mut self) -> Result<SqlExpr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.eat_symbol(Symbol::Plus) {
                BinaryOp::Add
            } else if self.eat_symbol(Symbol::Minus) {
                BinaryOp::Sub
            } else {
                break;
            };
            let right = self.parse_multiplicative()?;
            left = SqlExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<SqlExpr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = if self.eat_symbol(Symbol::Star) {
                BinaryOp::Mul
            } else if self.eat_symbol(Symbol::Slash) {
                BinaryOp::Div
            } else {
                break;
            };
            let right = self.parse_unary()?;
            left = SqlExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<SqlExpr> {
        if self.eat_symbol(Symbol::Minus) {
            let inner = self.parse_unary()?;
            Ok(SqlExpr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            })
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<SqlExpr> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(SqlExpr::Literal(Value::Int(i)))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(SqlExpr::Literal(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(SqlExpr::Literal(Value::Str(s)))
            }
            TokenKind::Symbol(Symbol::LParen) => {
                self.bump();
                // Either a subquery or a parenthesized expression.
                if self.peek_keyword("SELECT") {
                    let q = self.parse_select()?;
                    self.expect_symbol(Symbol::RParen)?;
                    Ok(SqlExpr::Subquery(Box::new(q)))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_symbol(Symbol::RParen)?;
                    Ok(e)
                }
            }
            TokenKind::Ident(ident) => {
                self.bump();
                match ident.as_str() {
                    "DATE" => {
                        // DATE 'YYYY-MM-DD'
                        match self.bump() {
                            TokenKind::Str(s) => {
                                let parts: Vec<&str> = s.split('-').collect();
                                if parts.len() != 3 {
                                    return Err(Error::Parse(format!(
                                        "invalid date literal '{s}'"
                                    )));
                                }
                                let y = parts[0].parse::<i32>();
                                let m = parts[1].parse::<u32>();
                                let d = parts[2].parse::<u32>();
                                match (y, m, d) {
                                    (Ok(y), Ok(m), Ok(d)) => {
                                        Ok(SqlExpr::Literal(Value::date(y, m, d)))
                                    }
                                    _ => Err(Error::Parse(format!("invalid date literal '{s}'"))),
                                }
                            }
                            other => Err(Error::Parse(format!(
                                "expected date string, found {other:?}"
                            ))),
                        }
                    }
                    "SUM" | "COUNT" | "AVG" | "MIN" | "MAX" => {
                        let func = match ident.as_str() {
                            "SUM" => AggFunc::Sum,
                            "COUNT" => AggFunc::Count,
                            "AVG" => AggFunc::Avg,
                            "MIN" => AggFunc::Min,
                            _ => AggFunc::Max,
                        };
                        self.expect_symbol(Symbol::LParen)?;
                        let arg = if self.eat_symbol(Symbol::Star) {
                            if func != AggFunc::Count {
                                return Err(self.error("'*' argument is only valid for COUNT"));
                            }
                            None
                        } else {
                            Some(Box::new(self.parse_expr()?))
                        };
                        self.expect_symbol(Symbol::RParen)?;
                        Ok(SqlExpr::Agg { func, arg })
                    }
                    "EXISTS" => {
                        self.expect_symbol(Symbol::LParen)?;
                        self.expect_keyword("SELECT")
                            .map_err(|_| self.error("EXISTS requires a subquery"))?;
                        // back up one token so parse_select sees SELECT
                        self.pos -= 1;
                        let q = self.parse_select()?;
                        self.expect_symbol(Symbol::RParen)?;
                        Ok(SqlExpr::Exists(Box::new(q)))
                    }
                    "TRUE" => Ok(SqlExpr::Literal(Value::Bool(true))),
                    "FALSE" => Ok(SqlExpr::Literal(Value::Bool(false))),
                    "NULL" => Ok(SqlExpr::Literal(Value::Null)),
                    _ => {
                        if self.eat_symbol(Symbol::Dot) {
                            let col = self.expect_ident()?;
                            Ok(SqlExpr::Column {
                                qualifier: Some(ident),
                                name: col,
                            })
                        } else {
                            Ok(SqlExpr::Column {
                                qualifier: None,
                                name: ident,
                            })
                        }
                    }
                }
            }
            other => Err(Error::Parse(format!(
                "unexpected token {other:?} in expression"
            ))),
        }
    }
}

fn is_reserved(word: &str) -> bool {
    matches!(
        word,
        "SELECT"
            | "FROM"
            | "WHERE"
            | "GROUP"
            | "BY"
            | "AS"
            | "AND"
            | "OR"
            | "NOT"
            | "IN"
            | "BETWEEN"
            | "EXISTS"
            | "CREATE"
            | "TABLE"
            | "STREAM"
            | "ON"
            | "JOIN"
            | "HAVING"
            | "ORDER"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example (Section 3).
    const RST: &str = "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C";

    #[test]
    fn parses_the_papers_example_query() {
        let q = parse_query(RST).unwrap();
        assert_eq!(q.from.len(), 3);
        assert_eq!(q.select.len(), 1);
        assert!(q.select[0].expr.contains_aggregate());
        assert!(q.group_by.is_empty());
        let w = q.where_clause.unwrap();
        assert_eq!(w.to_string(), "((R.B = S.B) AND (S.C = T.C))");
    }

    #[test]
    fn parses_group_by_aggregates_with_aliases() {
        let q = parse_query(
            "select d.D_YEAR, c.C_NATION, sum(lo.LO_REVENUE - lo.LO_SUPPLYCOST) as profit \
             from DATES d, CUSTOMER c, LINEORDER lo \
             where lo.LO_CUSTKEY = c.C_CUSTKEY and lo.LO_ORDERDATE = d.D_DATEKEY \
             group by d.D_YEAR, c.C_NATION",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 2);
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.select[2].alias.as_deref(), Some("PROFIT"));
        assert_eq!(q.from[2].alias, "LO");
    }

    #[test]
    fn parses_table_aliases_with_and_without_as() {
        let q = parse_query("select sum(a) from R as x, S y, T").unwrap();
        assert_eq!(q.from[0].alias, "X");
        assert_eq!(q.from[1].alias, "Y");
        assert_eq!(q.from[2].alias, "T");
    }

    #[test]
    fn parses_nested_scalar_subquery() {
        let q = parse_query(
            "select sum(b1.PRICE * b1.VOLUME) from BIDS b1 \
             where 0.25 * (select sum(b3.VOLUME) from BIDS b3) > \
                   (select sum(b2.VOLUME) from BIDS b2 where b2.PRICE > b1.PRICE)",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        match w {
            SqlExpr::Binary {
                op: BinaryOp::Gt,
                left,
                right,
            } => {
                assert!(matches!(*right, SqlExpr::Subquery(_)));
                assert!(matches!(
                    *left,
                    SqlExpr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected where clause {other:?}"),
        }
    }

    #[test]
    fn parses_exists_in_and_between() {
        let q = parse_query(
            "select count(*) from ASKS a where exists (select 1 from BIDS b where b.PRICE = a.PRICE) \
             and a.VOLUME between 10 and 100 and a.BROKER_ID in (1, 2, 3)",
        )
        .unwrap();
        let w = q.where_clause.unwrap().to_string();
        assert!(w.contains("EXISTS"));
        assert!(w.contains("BETWEEN"));
        assert!(w.contains("IN (1, 2, 3)"));
    }

    #[test]
    fn parses_count_star_and_avg() {
        let q = parse_query("select count(*), avg(price) from BIDS").unwrap();
        assert!(matches!(
            q.select[0].expr,
            SqlExpr::Agg {
                func: AggFunc::Count,
                arg: None
            }
        ));
        assert!(matches!(
            q.select[1].expr,
            SqlExpr::Agg {
                func: AggFunc::Avg,
                arg: Some(_)
            }
        ));
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("select sum(a + b * c - d / e) from R").unwrap();
        let s = q.select[0].expr.to_string();
        assert_eq!(s, "SUM(((A + (B * C)) - (D / E)))");
    }

    #[test]
    fn parses_create_statements() {
        let stmts = parse_statements(
            "CREATE STREAM BIDS (T FLOAT, ID INT, BROKER_ID INT, VOLUME FLOAT, PRICE FLOAT);\n\
             CREATE TABLE DIM (K INT, NAME VARCHAR(25));\n\
             SELECT sum(PRICE) FROM BIDS;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        match &stmts[0] {
            Statement::Create(c) => {
                assert!(c.is_stream);
                assert_eq!(c.columns.len(), 5);
                assert_eq!(c.columns[3], ("VOLUME".to_string(), ColumnType::Float));
            }
            other => panic!("expected create, got {other:?}"),
        }
        match &stmts[1] {
            Statement::Create(c) => {
                assert!(!c.is_stream);
                assert_eq!(c.columns[1], ("NAME".to_string(), ColumnType::Str));
            }
            other => panic!("expected create, got {other:?}"),
        }
        assert!(matches!(stmts[2], Statement::Select(_)));
    }

    #[test]
    fn parses_date_literals_and_string_predicates() {
        let q = parse_query(
            "select sum(l.PRICE) from LINEITEM l where l.SHIPDATE >= DATE '1995-03-15' \
             and l.FLAG = 'R'",
        )
        .unwrap();
        let w = q.where_clause.unwrap().to_string();
        assert!(w.contains("1995-03-15"));
        assert!(w.contains("'R'"));
    }

    #[test]
    fn error_messages_carry_position() {
        let err = parse_query("select sum(a from R").unwrap_err();
        assert!(err.to_string().contains("parse error"));
        let err = parse_query("selekt 1 from R").unwrap_err();
        assert!(err.to_string().contains("SELECT or CREATE"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_statement("select sum(a) from R extra garbage ) (").is_err());
    }

    #[test]
    fn unary_minus_and_not() {
        let q = parse_query("select sum(-a) from R where not (b = 1)").unwrap();
        assert_eq!(q.select[0].expr.to_string(), "SUM(-(A))");
        assert!(q.where_clause.unwrap().to_string().starts_with("NOT"));
    }
}
