//! Name resolution and type checking.
//!
//! The analyzer binds a parsed [`SelectQuery`] against a
//! [`Catalog`], producing a [`BoundQuery`] in which every column
//! reference has been resolved to a *variable name* that uniquely
//! identifies (relation instance, column). These variable names are what
//! the calculus translation uses for relation atoms, so correlated
//! subqueries "just work": a subquery that mentions an outer alias simply
//! has that outer variable free in its bound form.
//!
//! The analyzer also classifies `SELECT` items into group-by columns and
//! aggregates, rewrites `AVG(e)` into a `SUM(e)` / `COUNT(*)` pair marker
//! (the compiler maintains both maps and divides at result-access time),
//! and rejects queries outside the supported fragment with descriptive
//! errors.

use dbtoaster_common::{Catalog, ColumnType, Error, Result, Value};
use serde::{Deserialize, Serialize};

use crate::ast::{AggFunc, BinaryOp, SelectQuery, SqlExpr, UnaryOp};

/// A relation instance in the `FROM` clause after binding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundRelation {
    /// Base relation name (upper case).
    pub name: String,
    /// Alias as written (upper case), made globally unique across nested
    /// scopes by the analyzer.
    pub alias: String,
    /// One variable name per column, in schema order: `"{alias}_{column}"`.
    pub column_vars: Vec<String>,
    /// Column types in schema order.
    pub column_types: Vec<ColumnType>,
    /// Column names in schema order.
    pub column_names: Vec<String>,
    /// True if the relation was declared static (no deltas).
    pub is_static: bool,
}

impl BoundRelation {
    /// The variable bound to a column by name.
    pub fn var_of(&self, column: &str) -> Option<&str> {
        self.column_names
            .iter()
            .position(|c| c == column)
            .map(|i| self.column_vars[i].as_str())
    }
}

/// A resolved column reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundColumn {
    /// The variable name denoting (relation instance, column).
    pub var: String,
    pub ty: ColumnType,
    /// True if the column resolved to a relation of an *enclosing* query
    /// (a correlated reference).
    pub correlated: bool,
}

/// Supported aggregate kinds after the `AVG` rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggKind {
    Sum,
    Count,
    /// Kept as a distinct kind so the compiler knows to emit a sum map and
    /// a count map and combine them on read.
    Avg,
    Min,
    Max,
}

impl From<AggFunc> for AggKind {
    fn from(f: AggFunc) -> AggKind {
        match f {
            AggFunc::Sum => AggKind::Sum,
            AggFunc::Count => AggKind::Count,
            AggFunc::Avg => AggKind::Avg,
            AggFunc::Min => AggKind::Min,
            AggFunc::Max => AggKind::Max,
        }
    }
}

/// A bound aggregate call from the `SELECT` list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundAgg {
    pub kind: AggKind,
    /// Aggregated value expression; `None` means `COUNT(*)`.
    pub arg: Option<BoundExpr>,
    /// Output column name.
    pub name: String,
}

/// Bound expressions (column references resolved to variables).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoundExpr {
    Column(BoundColumn),
    Literal(Value),
    Unary {
        op: UnaryOp,
        expr: Box<BoundExpr>,
    },
    Binary {
        op: BinaryOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
    },
    /// A scalar subquery (single aggregate, no group-by), possibly
    /// correlated with enclosing scopes.
    Subquery(Box<BoundQuery>),
    /// `EXISTS (subquery)`.
    Exists(Box<BoundQuery>),
}

impl BoundExpr {
    /// Collect the variables referenced by this expression.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            BoundExpr::Column(c) => {
                if !out.contains(&c.var) {
                    out.push(c.var.clone());
                }
            }
            BoundExpr::Literal(_) => {}
            BoundExpr::Unary { expr, .. } => expr.collect_vars(out),
            BoundExpr::Binary { left, right, .. } => {
                left.collect_vars(out);
                right.collect_vars(out);
            }
            BoundExpr::Subquery(q) | BoundExpr::Exists(q) => {
                // Only correlated (outer) variables leak out of a subquery.
                for v in q.correlated_vars() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
    }
}

/// One output column of a bound query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoundSelectItem {
    /// A group-by column echoed in the output.
    GroupColumn { column: BoundColumn, name: String },
    /// An aggregate.
    Aggregate(BoundAgg),
}

/// A fully analyzed query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundQuery {
    pub relations: Vec<BoundRelation>,
    pub select: Vec<BoundSelectItem>,
    pub group_by: Vec<BoundColumn>,
    pub predicate: Option<BoundExpr>,
}

impl BoundQuery {
    /// Output column names in `SELECT` order.
    pub fn output_names(&self) -> Vec<String> {
        self.select
            .iter()
            .map(|item| match item {
                BoundSelectItem::GroupColumn { name, .. } => name.clone(),
                BoundSelectItem::Aggregate(a) => a.name.clone(),
            })
            .collect()
    }

    /// The aggregates of this query, in `SELECT` order.
    pub fn aggregates(&self) -> Vec<&BoundAgg> {
        self.select
            .iter()
            .filter_map(|item| match item {
                BoundSelectItem::Aggregate(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    /// Variables referenced by this query that belong to enclosing scopes
    /// (non-empty only for correlated subqueries).
    pub fn correlated_vars(&self) -> Vec<String> {
        let own: Vec<&String> = self
            .relations
            .iter()
            .flat_map(|r| r.column_vars.iter())
            .collect();
        let mut all = Vec::new();
        if let Some(p) = &self.predicate {
            p.collect_vars(&mut all);
        }
        for item in &self.select {
            if let BoundSelectItem::Aggregate(BoundAgg { arg: Some(a), .. }) = item {
                a.collect_vars(&mut all);
            }
        }
        all.retain(|v| !own.contains(&v));
        all
    }
}

/// Analyze a parsed query against the catalog.
pub fn analyze(query: &SelectQuery, catalog: &Catalog) -> Result<BoundQuery> {
    let mut ctx = Analyzer {
        catalog,
        used_aliases: Vec::new(),
    };
    ctx.analyze_query(query, &[])
}

struct Analyzer<'a> {
    catalog: &'a Catalog,
    /// All aliases used so far (across nesting levels) for uniqueness.
    used_aliases: Vec<String>,
}

impl<'a> Analyzer<'a> {
    fn analyze_query(
        &mut self,
        query: &SelectQuery,
        outer: &[BoundRelation],
    ) -> Result<BoundQuery> {
        if query.from.is_empty() {
            return Err(Error::Unsupported("queries require a FROM clause".into()));
        }

        // Bind FROM.
        let mut relations = Vec::new();
        for t in &query.from {
            let schema = self.catalog.expect(&t.name)?;
            let mut alias = t.alias.to_ascii_uppercase();
            let mut suffix = 1;
            while self.used_aliases.contains(&alias) {
                suffix += 1;
                alias = format!("{}_{suffix}", t.alias.to_ascii_uppercase());
            }
            self.used_aliases.push(alias.clone());
            let column_vars = schema
                .columns
                .iter()
                .map(|c| format!("{alias}_{}", c.name))
                .collect();
            relations.push(BoundRelation {
                name: schema.name.clone(),
                alias,
                column_vars,
                column_types: schema.columns.iter().map(|c| c.ty).collect(),
                column_names: schema.columns.iter().map(|c| c.name.clone()).collect(),
                is_static: schema.is_static,
            });
        }

        // Scope chain: current relations first, then outer relations.
        let scope: Vec<&BoundRelation> = relations.iter().chain(outer.iter()).collect();

        // Bind GROUP BY (plain columns only).
        let mut group_by = Vec::new();
        for g in &query.group_by {
            match g {
                SqlExpr::Column { .. } => {
                    group_by.push(self.bind_column(g, &scope, relations.len())?)
                }
                other => {
                    return Err(Error::Unsupported(format!(
                        "GROUP BY supports plain columns only, found {other}"
                    )))
                }
            }
        }

        // Bind WHERE.
        let predicate = match &query.where_clause {
            Some(w) => Some(self.bind_expr(w, &scope, relations.len(), false)?),
            None => None,
        };

        // Bind SELECT items.
        let mut select = Vec::new();
        let mut agg_counter = 0usize;
        for (idx, item) in query.select.iter().enumerate() {
            if item.expr.contains_aggregate() {
                let (kind, arg_expr) = match &item.expr {
                    SqlExpr::Agg { func, arg } => (AggKind::from(*func), arg.as_deref()),
                    other => {
                        return Err(Error::Unsupported(format!(
                            "SELECT items must be plain aggregates or group-by columns, \
                             found composite expression {other}"
                        )))
                    }
                };
                let arg = match arg_expr {
                    Some(a) => Some(self.bind_expr(a, &scope, relations.len(), false)?),
                    None => None,
                };
                if matches!(
                    kind,
                    AggKind::Sum | AggKind::Avg | AggKind::Min | AggKind::Max
                ) && arg.is_none()
                {
                    return Err(Error::Analysis(format!("{kind:?} requires an argument")));
                }
                agg_counter += 1;
                let name = item
                    .alias
                    .clone()
                    .unwrap_or_else(|| format!("AGG{agg_counter}"))
                    .to_ascii_uppercase();
                select.push(BoundSelectItem::Aggregate(BoundAgg { kind, arg, name }));
            } else {
                let column = self.bind_column(&item.expr, &scope, relations.len())?;
                // Non-aggregate output columns must be grouped on.
                if !group_by.iter().any(|g| g.var == column.var) {
                    return Err(Error::Analysis(format!(
                        "non-aggregate SELECT item {} must appear in GROUP BY",
                        item.expr
                    )));
                }
                let name = item
                    .alias
                    .clone()
                    .unwrap_or_else(|| match &item.expr {
                        SqlExpr::Column { name, .. } => name.clone(),
                        _ => format!("COL{idx}"),
                    })
                    .to_ascii_uppercase();
                select.push(BoundSelectItem::GroupColumn { column, name });
            }
        }

        if select
            .iter()
            .all(|s| matches!(s, BoundSelectItem::GroupColumn { .. }))
        {
            return Err(Error::Unsupported(
                "standing queries must compute at least one aggregate".into(),
            ));
        }

        Ok(BoundQuery {
            relations,
            select,
            group_by,
            predicate,
        })
    }

    fn bind_column(
        &mut self,
        expr: &SqlExpr,
        scope: &[&BoundRelation],
        _local: usize,
    ) -> Result<BoundColumn> {
        match expr {
            SqlExpr::Column { qualifier, name } => self.resolve(qualifier.as_deref(), name, scope),
            other => Err(Error::Analysis(format!(
                "expected a column reference, found {other}"
            ))),
        }
    }

    fn resolve(
        &self,
        qualifier: Option<&str>,
        name: &str,
        scope: &[&BoundRelation],
    ) -> Result<BoundColumn> {
        let name = name.to_ascii_uppercase();
        let mut matches = Vec::new();
        for (idx, rel) in scope.iter().enumerate() {
            let alias_matches = match qualifier {
                // An alias may have been renamed for uniqueness; match on
                // the original prefix too.
                Some(q) => {
                    let q = q.to_ascii_uppercase();
                    rel.alias == q || rel.alias.starts_with(&format!("{q}_"))
                }
                None => true,
            };
            if !alias_matches {
                continue;
            }
            if let Some(pos) = rel.column_names.iter().position(|c| *c == name) {
                matches.push((idx, rel, pos));
            }
        }
        match matches.len() {
            0 => Err(Error::Analysis(format!(
                "unknown column {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            1 => {
                let (idx, rel, pos) = matches[0];
                Ok(BoundColumn {
                    var: rel.column_vars[pos].clone(),
                    ty: rel.column_types[pos],
                    correlated: idx >= scopelen_local(scope),
                })
            }
            _ => {
                // Ambiguity within the innermost scope is an error; if the
                // only matches are one local and one outer, prefer local.
                let local_matches: Vec<_> = matches
                    .iter()
                    .filter(|(idx, _, _)| *idx < scopelen_local(scope))
                    .collect();
                match local_matches.len() {
                    1 => {
                        let (idx, rel, pos) = *local_matches[0];
                        Ok(BoundColumn {
                            var: rel.column_vars[pos].clone(),
                            ty: rel.column_types[pos],
                            correlated: idx >= scopelen_local(scope),
                        })
                    }
                    0 => {
                        let (idx, rel, pos) = matches[0];
                        Ok(BoundColumn {
                            var: rel.column_vars[pos].clone(),
                            ty: rel.column_types[pos],
                            correlated: idx >= scopelen_local(scope),
                        })
                    }
                    _ => Err(Error::Analysis(format!(
                        "ambiguous column reference {}{name}",
                        qualifier.map(|q| format!("{q}.")).unwrap_or_default()
                    ))),
                }
            }
        }
    }

    fn bind_expr(
        &mut self,
        expr: &SqlExpr,
        scope: &[&BoundRelation],
        local: usize,
        _in_agg: bool,
    ) -> Result<BoundExpr> {
        match expr {
            SqlExpr::Column { .. } => Ok(BoundExpr::Column(self.bind_column(expr, scope, local)?)),
            SqlExpr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            SqlExpr::Unary { op, expr } => Ok(BoundExpr::Unary {
                op: *op,
                expr: Box::new(self.bind_expr(expr, scope, local, _in_agg)?),
            }),
            SqlExpr::Binary { op, left, right } => Ok(BoundExpr::Binary {
                op: *op,
                left: Box::new(self.bind_expr(left, scope, local, _in_agg)?),
                right: Box::new(self.bind_expr(right, scope, local, _in_agg)?),
            }),
            SqlExpr::Agg { .. } => Err(Error::Unsupported(
                "aggregates are only supported in the SELECT list and in scalar subqueries".into(),
            )),
            SqlExpr::Subquery(q) => {
                let outer: Vec<BoundRelation> = scope.iter().map(|r| (*r).clone()).collect();
                let bound = self.analyze_query(q, &outer)?;
                if bound.aggregates().len() != 1 || !bound.group_by.is_empty() {
                    return Err(Error::Unsupported(
                        "scalar subqueries must compute exactly one ungrouped aggregate".into(),
                    ));
                }
                Ok(BoundExpr::Subquery(Box::new(bound)))
            }
            SqlExpr::Exists(q) => {
                // EXISTS(SELECT ...) is analyzed as COUNT(*) > 0; we bind a
                // count aggregate over the subquery body.
                let rewritten = SelectQuery {
                    select: vec![crate::ast::SelectItem {
                        expr: SqlExpr::Agg {
                            func: AggFunc::Count,
                            arg: None,
                        },
                        alias: Some("EXISTS_COUNT".into()),
                    }],
                    from: q.from.clone(),
                    where_clause: q.where_clause.clone(),
                    group_by: vec![],
                };
                let outer: Vec<BoundRelation> = scope.iter().map(|r| (*r).clone()).collect();
                let bound = self.analyze_query(&rewritten, &outer)?;
                Ok(BoundExpr::Exists(Box::new(bound)))
            }
            SqlExpr::InList {
                expr,
                list,
                negated,
            } => {
                // Rewrite `x IN (a, b, c)` into `x=a OR x=b OR x=c`.
                let bound_x = self.bind_expr(expr, scope, local, _in_agg)?;
                let mut disjunction: Option<BoundExpr> = None;
                for item in list {
                    let rhs = self.bind_expr(item, scope, local, _in_agg)?;
                    let eq = BoundExpr::Binary {
                        op: BinaryOp::Eq,
                        left: Box::new(bound_x.clone()),
                        right: Box::new(rhs),
                    };
                    disjunction = Some(match disjunction {
                        None => eq,
                        Some(acc) => BoundExpr::Binary {
                            op: BinaryOp::Or,
                            left: Box::new(acc),
                            right: Box::new(eq),
                        },
                    });
                }
                let result = disjunction
                    .ok_or_else(|| Error::Analysis("IN list must not be empty".into()))?;
                if *negated {
                    Ok(BoundExpr::Unary {
                        op: UnaryOp::Not,
                        expr: Box::new(result),
                    })
                } else {
                    Ok(result)
                }
            }
            SqlExpr::Between { expr, low, high } => {
                // Rewrite into `low <= x AND x <= high`.
                let x = self.bind_expr(expr, scope, local, _in_agg)?;
                let low = self.bind_expr(low, scope, local, _in_agg)?;
                let high = self.bind_expr(high, scope, local, _in_agg)?;
                Ok(BoundExpr::Binary {
                    op: BinaryOp::And,
                    left: Box::new(BoundExpr::Binary {
                        op: BinaryOp::LtEq,
                        left: Box::new(low),
                        right: Box::new(x.clone()),
                    }),
                    right: Box::new(BoundExpr::Binary {
                        op: BinaryOp::LtEq,
                        left: Box::new(x),
                        right: Box::new(high),
                    }),
                })
            }
        }
    }
}

/// Number of relations belonging to the innermost (local) scope. The scope
/// slice is built as `local relations ++ outer relations`, and the local
/// count is threaded implicitly: analyzers pass the full chain, so this
/// helper recovers the local prefix length by counting relations whose
/// alias was registered last. For simplicity the analyzer always places
/// local relations first, so local count is tracked by the caller; this
/// helper exists to keep `resolve` readable.
fn scopelen_local(_scope: &[&BoundRelation]) -> usize {
    // `resolve` treats every match equally except for preferring earlier
    // (more local) scope entries; correlation is detected by the caller of
    // analyze via `correlated_vars`. Returning the full length marks no
    // binding as correlated here; `BoundQuery::correlated_vars` computes
    // correlation set-theoretically instead, which is what the calculus
    // translation consumes.
    usize::MAX
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use dbtoaster_common::Schema;

    fn rst_catalog() -> Catalog {
        Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
            .with(Schema::new(
                "T",
                vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
            ))
    }

    fn bids_catalog() -> Catalog {
        Catalog::new().with(Schema::new(
            "BIDS",
            vec![
                ("T", ColumnType::Float),
                ("ID", ColumnType::Int),
                ("BROKER_ID", ColumnType::Int),
                ("VOLUME", ColumnType::Float),
                ("PRICE", ColumnType::Float),
            ],
        ))
    }

    #[test]
    fn binds_the_papers_example() {
        let q = parse_query("select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C").unwrap();
        let b = analyze(&q, &rst_catalog()).unwrap();
        assert_eq!(b.relations.len(), 3);
        assert_eq!(b.relations[0].column_vars, vec!["R_A", "R_B"]);
        assert_eq!(b.aggregates().len(), 1);
        let agg = b.aggregates()[0];
        assert_eq!(agg.kind, AggKind::Sum);
        let mut vars = Vec::new();
        agg.arg.as_ref().unwrap().collect_vars(&mut vars);
        assert_eq!(vars, vec!["R_A".to_string(), "T_D".to_string()]);
    }

    #[test]
    fn unqualified_columns_resolve_by_uniqueness() {
        let q = parse_query("select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C").unwrap();
        let b = analyze(&q, &rst_catalog()).unwrap();
        // A is unique to R, D unique to T.
        let agg = b.aggregates()[0];
        let mut vars = Vec::new();
        agg.arg.as_ref().unwrap().collect_vars(&mut vars);
        assert!(vars.contains(&"R_A".to_string()));
        assert!(vars.contains(&"T_D".to_string()));
    }

    #[test]
    fn ambiguous_unqualified_column_is_an_error() {
        // B exists in both R and S.
        let q = parse_query("select sum(B) from R, S").unwrap();
        let err = analyze(&q, &rst_catalog()).unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn unknown_relation_and_column_errors() {
        let q = parse_query("select sum(A) from NOPE").unwrap();
        assert!(analyze(&q, &rst_catalog()).is_err());
        let q = parse_query("select sum(Z) from R").unwrap();
        let err = analyze(&q, &rst_catalog()).unwrap_err();
        assert!(err.to_string().contains("unknown column"));
    }

    #[test]
    fn group_by_columns_must_cover_output_columns() {
        let cat = rst_catalog();
        let ok = parse_query("select B, sum(A) from R group by B").unwrap();
        assert!(analyze(&ok, &cat).is_ok());
        let bad = parse_query("select B, sum(A) from R").unwrap();
        assert!(analyze(&bad, &cat).is_err());
    }

    #[test]
    fn self_join_aliases_are_distinguished() {
        let q = parse_query("select sum(b1.PRICE) from BIDS b1, BIDS b2 where b1.PRICE < b2.PRICE")
            .unwrap();
        let b = analyze(&q, &bids_catalog()).unwrap();
        assert_eq!(b.relations[0].alias, "B1");
        assert_eq!(b.relations[1].alias, "B2");
        assert_ne!(b.relations[0].column_vars[4], b.relations[1].column_vars[4]);
    }

    #[test]
    fn correlated_subquery_exposes_outer_vars() {
        let q = parse_query(
            "select sum(b1.PRICE * b1.VOLUME) from BIDS b1 \
             where 0.25 * (select sum(b3.VOLUME) from BIDS b3) > \
                   (select sum(b2.VOLUME) from BIDS b2 where b2.PRICE > b1.PRICE)",
        )
        .unwrap();
        let b = analyze(&q, &bids_catalog()).unwrap();
        let pred = b.predicate.as_ref().unwrap();
        // Find the correlated subquery and check that B1_PRICE is free in it.
        fn find_subqueries<'a>(e: &'a BoundExpr, out: &mut Vec<&'a BoundQuery>) {
            match e {
                BoundExpr::Subquery(q) | BoundExpr::Exists(q) => out.push(q),
                BoundExpr::Binary { left, right, .. } => {
                    find_subqueries(left, out);
                    find_subqueries(right, out);
                }
                BoundExpr::Unary { expr, .. } => find_subqueries(expr, out),
                _ => {}
            }
        }
        let mut subs = Vec::new();
        find_subqueries(pred, &mut subs);
        assert_eq!(subs.len(), 2);
        let correlated: Vec<_> = subs
            .iter()
            .map(|s| s.correlated_vars())
            .filter(|v| !v.is_empty())
            .collect();
        assert_eq!(correlated.len(), 1);
        assert_eq!(correlated[0], vec!["B1_PRICE".to_string()]);
    }

    #[test]
    fn avg_is_kept_as_a_distinct_kind() {
        let q = parse_query("select avg(PRICE) from BIDS").unwrap();
        let b = analyze(&q, &bids_catalog()).unwrap();
        assert_eq!(b.aggregates()[0].kind, AggKind::Avg);
    }

    #[test]
    fn exists_is_rewritten_to_a_count_subquery() {
        let cat = bids_catalog();
        let q = parse_query(
            "select count(*) from BIDS b where exists \
             (select 1 from BIDS c where c.PRICE = b.PRICE and c.ID <> b.ID)",
        )
        .unwrap();
        let b = analyze(&q, &cat).unwrap();
        match b.predicate.as_ref().unwrap() {
            BoundExpr::Exists(sub) => {
                assert_eq!(sub.aggregates().len(), 1);
                assert_eq!(sub.aggregates()[0].kind, AggKind::Count);
                assert!(!sub.correlated_vars().is_empty());
            }
            other => panic!("expected EXISTS, found {other:?}"),
        }
    }

    #[test]
    fn in_list_is_rewritten_to_disjunction() {
        let cat = rst_catalog();
        let q = parse_query("select sum(A) from R where B in (1, 2, 3)").unwrap();
        let b = analyze(&q, &cat).unwrap();
        let p = format!("{:?}", b.predicate.unwrap());
        assert_eq!(p.matches("Or").count(), 2);
        assert_eq!(p.matches("Eq").count(), 3);
    }

    #[test]
    fn between_is_rewritten_to_conjunction() {
        let cat = rst_catalog();
        let q = parse_query("select sum(A) from R where B between 2 and 7").unwrap();
        let b = analyze(&q, &cat).unwrap();
        let p = format!("{:?}", b.predicate.unwrap());
        assert_eq!(p.matches("LtEq").count(), 2);
    }

    #[test]
    fn queries_without_aggregates_are_rejected() {
        let cat = rst_catalog();
        let q = parse_query("select B from R group by B").unwrap();
        let err = analyze(&q, &cat).unwrap_err();
        assert!(err.to_string().contains("at least one aggregate"));
    }

    #[test]
    fn count_star_needs_no_argument_but_sum_does() {
        let cat = rst_catalog();
        assert!(analyze(&parse_query("select count(*) from R").unwrap(), &cat).is_ok());
    }
}
