//! Surface syntax tree for the supported SQL fragment.

use dbtoaster_common::{ColumnType, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed top-level statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// A standing query to be compiled into trigger programs.
    Select(SelectQuery),
    /// `CREATE TABLE` (static relation) or `CREATE STREAM` (delta-fed
    /// relation) — registers a schema in the catalog.
    Create(CreateRelation),
}

/// A `CREATE TABLE` / `CREATE STREAM` declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateRelation {
    pub name: String,
    pub columns: Vec<(String, ColumnType)>,
    /// True for `CREATE STREAM`: the relation receives deltas.
    pub is_stream: bool,
}

/// A `SELECT` query (possibly nested as a subquery).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectQuery {
    pub select: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<SqlExpr>,
    pub group_by: Vec<SqlExpr>,
}

/// One item in the `SELECT` list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectItem {
    pub expr: SqlExpr,
    pub alias: Option<String>,
}

/// A relation in the `FROM` clause: `name [AS] alias`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRef {
    pub name: String,
    pub alias: String,
}

/// Aggregate functions of the supported fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Sum,
    Count,
    Avg,
    Min,
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// Binary operators (arithmetic, comparison, boolean).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinaryOp {
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Scalar / boolean expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SqlExpr {
    /// `alias.column` or bare `column`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// A literal constant.
    Literal(Value),
    /// Unary negation / NOT.
    Unary { op: UnaryOp, expr: Box<SqlExpr> },
    /// Binary arithmetic, comparison or boolean connective.
    Binary {
        op: BinaryOp,
        left: Box<SqlExpr>,
        right: Box<SqlExpr>,
    },
    /// Aggregate call. `arg` is `None` for `COUNT(*)`.
    Agg {
        func: AggFunc,
        arg: Option<Box<SqlExpr>>,
    },
    /// A scalar subquery usable as an operand (nested aggregate).
    Subquery(Box<SelectQuery>),
    /// `EXISTS (subquery)`.
    Exists(Box<SelectQuery>),
    /// `expr [NOT] IN (v1, v2, ...)` with literal list members.
    InList {
        expr: Box<SqlExpr>,
        list: Vec<SqlExpr>,
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        expr: Box<SqlExpr>,
        low: Box<SqlExpr>,
        high: Box<SqlExpr>,
    },
}

impl SqlExpr {
    /// Convenience constructor for a bare column reference.
    pub fn col(name: &str) -> SqlExpr {
        SqlExpr::Column {
            qualifier: None,
            name: name.to_ascii_uppercase(),
        }
    }

    /// Convenience constructor for a qualified column reference.
    pub fn qcol(qualifier: &str, name: &str) -> SqlExpr {
        SqlExpr::Column {
            qualifier: Some(qualifier.to_ascii_uppercase()),
            name: name.to_ascii_uppercase(),
        }
    }

    /// Convenience constructor for a literal.
    pub fn lit(v: impl Into<Value>) -> SqlExpr {
        SqlExpr::Literal(v.into())
    }

    /// Convenience constructor for a binary expression.
    pub fn binary(op: BinaryOp, left: SqlExpr, right: SqlExpr) -> SqlExpr {
        SqlExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Does this expression (transitively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            SqlExpr::Agg { .. } => true,
            SqlExpr::Column { .. } | SqlExpr::Literal(_) => false,
            SqlExpr::Unary { expr, .. } => expr.contains_aggregate(),
            SqlExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            // Aggregates inside a subquery belong to the subquery's scope.
            SqlExpr::Subquery(_) | SqlExpr::Exists(_) => false,
            SqlExpr::InList { expr, .. } => expr.contains_aggregate(),
            SqlExpr::Between { expr, low, high } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
        }
    }
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Column {
                qualifier: Some(q),
                name,
            } => write!(f, "{q}.{name}"),
            SqlExpr::Column {
                qualifier: None,
                name,
            } => write!(f, "{name}"),
            SqlExpr::Literal(v) => write!(f, "{v}"),
            SqlExpr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => write!(f, "-({expr})"),
            SqlExpr::Unary {
                op: UnaryOp::Not,
                expr,
            } => write!(f, "NOT ({expr})"),
            SqlExpr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            SqlExpr::Agg { func, arg: Some(a) } => write!(f, "{func}({a})"),
            SqlExpr::Agg { func, arg: None } => write!(f, "{func}(*)"),
            SqlExpr::Subquery(_) => write!(f, "(<subquery>)"),
            SqlExpr::Exists(_) => write!(f, "EXISTS (<subquery>)"),
            SqlExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            SqlExpr::Between { expr, low, high } => write!(f, "{expr} BETWEEN {low} AND {high}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection_stops_at_subquery_boundaries() {
        let agg = SqlExpr::Agg {
            func: AggFunc::Sum,
            arg: Some(Box::new(SqlExpr::col("a"))),
        };
        assert!(agg.contains_aggregate());
        let sub = SqlExpr::Subquery(Box::new(SelectQuery {
            select: vec![SelectItem {
                expr: agg.clone(),
                alias: None,
            }],
            from: vec![],
            where_clause: None,
            group_by: vec![],
        }));
        assert!(!sub.contains_aggregate());
        let mixed = SqlExpr::binary(BinaryOp::Mul, SqlExpr::lit(2i64), agg);
        assert!(mixed.contains_aggregate());
    }

    #[test]
    fn display_roundtrips_reasonably() {
        let e = SqlExpr::binary(
            BinaryOp::Eq,
            SqlExpr::qcol("r", "b"),
            SqlExpr::qcol("s", "b"),
        );
        assert_eq!(e.to_string(), "(R.B = S.B)");
    }
}
