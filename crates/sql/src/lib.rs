//! SQL frontend for the DBToaster reproduction.
//!
//! The paper's compiler accepts "the core relational algebra, standard
//! aggregates (sum, avg, count, min, max), subqueries and nested
//! aggregates". This crate implements that fragment:
//!
//! * [`lexer`] — hand-written tokenizer with positions,
//! * [`ast`] — the surface syntax tree,
//! * [`parser`] — recursive-descent parser for `SELECT`-`FROM`-`WHERE`-
//!   `GROUP BY` queries (with scalar subqueries, `EXISTS`, `IN`,
//!   `BETWEEN`), plus `CREATE TABLE` / `CREATE STREAM` declarations used
//!   by examples and the interactive demo binaries,
//! * [`analyzer`] — name resolution and type checking against a
//!   [`dbtoaster_common::Catalog`], producing a bound query the
//!   calculus translation consumes.

pub mod analyzer;
pub mod ast;
pub mod lexer;
pub mod parser;

pub use analyzer::{
    analyze, AggKind, BoundAgg, BoundColumn, BoundExpr, BoundQuery, BoundRelation, BoundSelectItem,
};
pub use ast::{
    AggFunc, BinaryOp, CreateRelation, SelectItem, SelectQuery, SqlExpr, Statement, TableRef,
    UnaryOp,
};
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::{parse_query, parse_statement, parse_statements};
