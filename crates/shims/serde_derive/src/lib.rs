//! Offline shim for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal stand-in: the `serde` shim's `Serialize` /
//! `Deserialize` traits have blanket implementations for every type, and
//! these derive macros therefore expand to nothing. Swap the shims for
//! the real crates (and delete `crates/shims`) once a registry is
//! reachable.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
