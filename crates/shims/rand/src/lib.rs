//! Offline shim for `rand` (0.8-shaped API surface).
//!
//! Implements exactly the subset the workload generators use —
//! `SmallRng::seed_from_u64`, `gen_range` over integer / float ranges,
//! `gen_bool` and `gen::<f64>()` — on top of a splitmix64-seeded
//! xorshift64* generator. Deterministic for a given seed, which is all
//! the workspace requires (generators promise reproducible streams);
//! statistical quality is adequate for synthetic workloads, and nothing
//! here is used for security.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness (mirrors `rand::RngCore`, u64-only).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniform f64 in `[0, 1)` built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Construction from a `u64` seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges (and other shapes) that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
            }
        }
    )*};
}

impl_int_sample_range!(i64, u64, i32, u32, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Types producible by [`Rng::gen`] (mirrors sampling from the
/// `Standard` distribution).
pub trait StandardSample {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl StandardSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// High-level sampling helpers (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }

    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* seeded through
    /// splitmix64, so nearby seeds produce unrelated streams).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // splitmix64 finalizer: avoids the all-zero state and
            // decorrelates sequential seeds.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            SmallRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<i64> = (0..16).map(|_| a.gen_range(0..1_000_000i64)).collect();
        let ys: Vec<i64> = (0..16).map(|_| b.gen_range(0..1_000_000i64)).collect();
        let zs: Vec<i64> = (0..16).map(|_| c.gen_range(0..1_000_000i64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let i = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(3..=9usize);
            assert!((3..=9).contains(&u));
            let f = rng.gen_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
