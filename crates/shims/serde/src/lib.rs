//! Offline shim for `serde`.
//!
//! The container cannot reach a crate registry, so this stand-in keeps
//! `#[derive(Serialize, Deserialize)]` annotations across the workspace
//! compiling without pulling in the real dependency. The traits are pure
//! markers with blanket implementations; the derive macros (re-exported
//! from the `serde_derive` shim) expand to nothing. No serialization is
//! performed anywhere in the workspace today — when a wire format is
//! needed (e.g. the view server's future network protocol), replace this
//! shim with the real `serde` and the annotations become functional as-is.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
