//! Offline shim for `criterion`.
//!
//! A minimal benchmarking harness exposing the API subset the workspace's
//! benches use: `Criterion::bench_function`, benchmark groups with
//! `sample_size` / `warm_up_time` / `measurement_time` / `throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs one untimed warm-up
//! iteration followed by `sample_size` timed iterations and prints the
//! mean wall-clock time per iteration (plus throughput when declared).
//! No statistics, outlier analysis, or HTML reports — the point is that
//! `cargo bench` runs offline and prints comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value hint, as criterion exposes it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark (printed alongside timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to the benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    samples: usize,
    /// Mean time per iteration of the most recent `iter` call.
    measured: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let started = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.measured = Some(started.elapsed() / self.samples as u32);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_one(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: samples.max(1),
        measured: None,
    };
    f(&mut bencher);
    match bencher.measured {
        Some(mean) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64().max(1e-12))
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64().max(1e-12))
                }
                None => String::new(),
            };
            println!("{name:<60} time: {:>12}{rate}", format_duration(mean));
        }
        None => println!("{name:<60} (no measurement: bencher.iter never called)"),
    }
}

/// The top-level harness handle.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.default_samples, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples: 10,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's single warm-up
    /// iteration is not time-bounded.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times exactly
    /// `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{id}", self.name),
            self.samples,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.samples,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_returns() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("shim/self_test", |b| b.iter(|| ran += 1));
        // 1 warm-up + 10 samples.
        assert_eq!(ran, 11);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("f", "p"), &5u32, |b, &_x| {
            b.iter(|| ran += 1)
        });
        group.finish();
        assert_eq!(ran, 4);
    }
}
