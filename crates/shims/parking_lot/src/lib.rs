//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s signature: `read`
//! / `write` / `lock` return guards directly instead of a poison
//! `Result`. Poisoning is recovered (a panicking writer does not wedge
//! readers), matching parking_lot's behaviour of not poisoning at all.
//! Performance characteristics are std's, which is fine for the current
//! workloads; swap in the real crate when a registry is reachable.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_allows_concurrent_reads_and_exclusive_writes() {
        let lock = Arc::new(RwLock::new(0u64));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *lock.write() += 1;
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(*lock.read(), 4_000);
    }

    #[test]
    fn poisoned_locks_recover() {
        let lock = Arc::new(RwLock::new(7u64));
        let poisoner = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*lock.read(), 7);
    }
}
