//! Offline shim for `crossbeam` (the `channel` module only).
//!
//! Backs `crossbeam::channel::bounded` with `std::sync::mpsc`'s
//! `sync_channel`. The subset implemented — bounded/unbounded
//! construction, blocking `send`/`recv`, `try_recv`, sender cloning — is
//! what the standalone server and view server use. `select!` and the
//! scoped-thread APIs are not provided.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, TryRecvError};

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of a channel. mpsc's bounded and unbounded
    /// senders are distinct types, so this wraps either.
    pub enum Sender<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            match self {
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send (applies back-pressure when a bounded buffer is
        /// full).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Bounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Sender::Unbounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking receive; errors once all senders are gone and the
        /// buffer is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// A bounded channel with `capacity` in-flight messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender::Bounded(tx), Receiver(rx))
    }

    /// An unbounded channel, backed by mpsc's genuinely unbounded
    /// flavour (std's bounded channel allocates its slot buffer
    /// eagerly, so a huge capacity is not a substitute).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_channel_round_trips_in_order() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(rx.recv().is_err(), "all senders dropped");
    }

    #[test]
    fn unbounded_channel_works_without_eager_allocation() {
        let (tx, rx) = channel::unbounded::<u64>();
        for i in 0..10_000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 10_000);
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(channel::SendError(9)));
    }
}
