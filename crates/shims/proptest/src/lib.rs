//! Offline shim for `proptest`.
//!
//! Provides the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `any::<bool>()`, `collection::vec`, `ProptestConfig`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros. Cases are
//! generated from a deterministic per-case RNG (seeded by the case
//! index), so failures reproduce exactly. There is no shrinking: a
//! failing case panics with the generated inputs Debug-printed by the
//! assertion itself.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

pub mod prelude {
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Per-test configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies (deterministic per case).
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn for_case(case: u64) -> TestRng {
        TestRng(SmallRng::seed_from_u64(
            0xdb70_a57e ^ case.wrapping_mul(0x9e37_79b9),
        ))
    }

    fn int_in(&mut self, range: Range<i128>) -> i128 {
        let span = (range.end - range.start) as u128;
        range.start + (self.0.next_u64() as u128 % span) as i128
    }
}

/// A generator of values (proptest's core abstraction, minus shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_in(self.start as i128..self.end as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(i64, i32, u64, u32, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `any::<T>()` — an arbitrary value of `T` (implemented for the
/// primitives the tests use).
pub struct Any<T>(PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.0.next_u64() & 1 == 1
    }
}

impl Strategy for Any<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        rng.0.next_u64() as i64
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` of values from `element` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        vec_strategy(element, size)
    }

    fn vec_strategy<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.int_in(self.size.start as i128..self.size.end as i128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Expands `#[test]` functions whose arguments are drawn from strategies.
/// Each case reconstructs the strategy expressions (so stateful
/// strategies start fresh) and generates inputs from a per-case RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Forwarders to std assertions (no shrinking, so a plain panic is the
/// failure report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds((a, b) in (0..10i64, 3..5usize), flip in any::<bool>()) {
            assert!((0..10).contains(&a));
            assert!((3..5).contains(&b));
            let _ = flip;
        }

        #[test]
        fn mapped_vec_strategies_compose(xs in crate::collection::vec((0..4i64).prop_map(|v| v * 2), 1..9)) {
            prop_assert!(!xs.is_empty() && xs.len() < 9);
            prop_assert!(xs.iter().all(|x| [0, 2, 4, 6].contains(x)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = (0..100i64, 0..100i64);
        let a: Vec<_> = (0..8u64)
            .map(|c| Strategy::generate(&s, &mut crate::TestRng::for_case(c)))
            .collect();
        let b: Vec<_> = (0..8u64)
            .map(|c| Strategy::generate(&s, &mut crate::TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}
