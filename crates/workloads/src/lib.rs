//! Benchmark workloads.
//!
//! The paper demonstrates DBToaster on two applications: algorithmic
//! trading over NASDAQ TotalView order-book data, and combined data
//! warehouse loading + analysis over TPC-H data transformed into the Star
//! Schema Benchmark. Neither dataset is redistributable, so this crate
//! generates deterministic synthetic equivalents that preserve the update
//! patterns and join/aggregation structure (DESIGN.md §2):
//!
//! * [`orderbook`] — a limit-order-book message stream (order additions,
//!   partial cancels as delete+insert pairs, and full deletions) over
//!   `BIDS`/`ASKS` relations, plus the financial standing queries
//!   (VWAP components, the full nested-aggregate VWAP, an order-book
//!   imbalance query and a per-broker market-maker query),
//! * [`tpch`] — a scaled-down TPC-H-shaped generator, the warehouse
//!   loading transform into the SSB star schema, and SSB query 4.1,
//! * [`source`] — adapters putting the generated streams behind the
//!   pull-based `EventSource` seam (including a deterministic
//!   interleaver for mixed multi-workload streams).

pub mod orderbook;
pub mod source;
pub mod tpch;

pub use orderbook::{OrderBookConfig, OrderBookGenerator};
pub use source::GeneratorSource;
pub use tpch::{transform_to_ssb, TpchConfig, TpchData};
