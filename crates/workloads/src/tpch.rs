//! TPC-H-shaped data, the warehouse-loading transform and SSB Q4.1.
//!
//! The paper's second scenario loads a data warehouse from an OLTP
//! database while maintaining an analysis query: a TPC-H dataset is
//! cleaned into the Star Schema Benchmark (SSB) star schema and SSB query
//! 4.1 is evaluated over the transformed data. Here a deterministic
//! generator produces TPC-H-shaped source rows at a configurable scale,
//! [`transform_to_ssb`] performs the data-integration step (denormalizing
//! orders + lineitems into `LINEORDER` facts and emitting the dimension
//! tables), and [`SSB_Q41`] is the standing analysis query maintained
//! while the warehouse loads.

use dbtoaster_common::{Catalog, ColumnType, Event, Schema, Tuple, UpdateStream, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Regions used by TPC-H / SSB.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
/// A nation sample per region (index i belongs to region i % 5).
pub const NATIONS: [&str; 10] = [
    "ALGERIA",
    "ARGENTINA",
    "CHINA",
    "FRANCE",
    "EGYPT",
    "KENYA",
    "BRAZIL",
    "JAPAN",
    "GERMANY",
    "IRAN",
];

/// SSB query 4.1: yearly profit by customer nation for the AMERICA
/// region and manufacturers 1/2.
pub const SSB_Q41: &str = "select D_YEAR, C_NATION, sum(LO_REVENUE - LO_SUPPLYCOST) as PROFIT \
     from DATES, CUSTOMER, SUPPLIER, PART, LINEORDER \
     where LO_CUSTKEY = C_CUSTKEY and LO_SUPPKEY = S_SUPPKEY \
       and LO_PARTKEY = P_PARTKEY and LO_ORDERDATE = D_DATEKEY \
       and C_REGION = 'AMERICA' and S_REGION = 'AMERICA' \
       and (P_MFGR = 'MFGR#1' or P_MFGR = 'MFGR#2') \
     group by D_YEAR, C_NATION";

/// A simpler warehouse query (revenue by year) used for quick examples.
pub const SSB_REVENUE_BY_YEAR: &str = "select D_YEAR, sum(LO_REVENUE) \
     from DATES, LINEORDER where LO_ORDERDATE = D_DATEKEY group by D_YEAR";

/// The SSB star-schema catalog (the warehouse being loaded).
pub fn ssb_catalog() -> Catalog {
    Catalog::new()
        .with(Schema::new(
            "CUSTOMER",
            vec![
                ("C_CUSTKEY", ColumnType::Int),
                ("C_NATION", ColumnType::Str),
                ("C_REGION", ColumnType::Str),
            ],
        ))
        .with(Schema::new(
            "SUPPLIER",
            vec![
                ("S_SUPPKEY", ColumnType::Int),
                ("S_NATION", ColumnType::Str),
                ("S_REGION", ColumnType::Str),
            ],
        ))
        .with(Schema::new(
            "PART",
            vec![
                ("P_PARTKEY", ColumnType::Int),
                ("P_MFGR", ColumnType::Str),
                ("P_CATEGORY", ColumnType::Str),
            ],
        ))
        .with(Schema::new(
            "DATES",
            vec![("D_DATEKEY", ColumnType::Int), ("D_YEAR", ColumnType::Int)],
        ))
        .with(Schema::new(
            "LINEORDER",
            vec![
                ("LO_ORDERKEY", ColumnType::Int),
                ("LO_CUSTKEY", ColumnType::Int),
                ("LO_SUPPKEY", ColumnType::Int),
                ("LO_PARTKEY", ColumnType::Int),
                ("LO_ORDERDATE", ColumnType::Int),
                ("LO_REVENUE", ColumnType::Float),
                ("LO_SUPPLYCOST", ColumnType::Float),
            ],
        ))
}

/// Generator scale configuration (a fraction of a TPC-H scale factor,
/// sized for in-process benchmarking).
#[derive(Debug, Clone)]
pub struct TpchConfig {
    pub customers: usize,
    pub suppliers: usize,
    pub parts: usize,
    pub orders: usize,
    pub lines_per_order: usize,
    pub years: i64,
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            customers: 200,
            suppliers: 50,
            parts: 100,
            orders: 1_000,
            lines_per_order: 3,
            years: 5,
            seed: 7,
        }
    }
}

impl TpchConfig {
    /// A configuration roughly proportional to the given fraction of a
    /// TPC-H scale factor (scale 1.0 would be far larger than needed for
    /// the in-process bakeoff; 0.01–0.1 are the benchmark sizes).
    pub fn at_scale(scale: f64) -> TpchConfig {
        let s = scale.max(0.001);
        TpchConfig {
            customers: (1_500.0 * s).ceil() as usize,
            suppliers: (100.0 * s).ceil() as usize,
            parts: (2_000.0 * s).ceil() as usize,
            orders: (15_000.0 * s).ceil() as usize,
            lines_per_order: 4,
            years: 7,
            seed: 7,
        }
    }
}

/// TPC-H-shaped source rows (the OLTP side of the loading scenario).
#[derive(Debug, Clone, Default)]
pub struct TpchData {
    /// (custkey, nation index).
    pub customers: Vec<(i64, usize)>,
    /// (suppkey, nation index).
    pub suppliers: Vec<(i64, usize)>,
    /// (partkey, manufacturer index 1..=5).
    pub parts: Vec<(i64, i64)>,
    /// (orderkey, custkey, datekey).
    pub orders: Vec<(i64, i64, i64)>,
    /// (orderkey, partkey, suppkey, extended price, supply cost).
    pub lineitems: Vec<(i64, i64, i64, f64, f64)>,
    /// (datekey, year).
    pub dates: Vec<(i64, i64)>,
}

impl TpchData {
    /// Generate deterministic TPC-H-shaped data.
    pub fn generate(config: &TpchConfig) -> TpchData {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut data = TpchData::default();

        for year in 0..config.years {
            for quarter in 0..4 {
                data.dates.push((1_000 + year * 10 + quarter, 1993 + year));
            }
        }
        for c in 1..=config.customers as i64 {
            data.customers.push((c, rng.gen_range(0..NATIONS.len())));
        }
        for s in 1..=config.suppliers as i64 {
            data.suppliers.push((s, rng.gen_range(0..NATIONS.len())));
        }
        for p in 1..=config.parts as i64 {
            data.parts.push((p, rng.gen_range(1..=5)));
        }
        for o in 1..=config.orders as i64 {
            let cust = rng.gen_range(1..=config.customers as i64);
            let date = data.dates[rng.gen_range(0..data.dates.len())].0;
            data.orders.push((o, cust, date));
            for _ in 0..config.lines_per_order {
                let part = rng.gen_range(1..=config.parts as i64);
                let supp = rng.gen_range(1..=config.suppliers as i64);
                let revenue = rng.gen_range(100.0..10_000.0_f64).round();
                let cost = (revenue * rng.gen_range(0.4..0.9)).round();
                data.lineitems.push((o, part, supp, revenue, cost));
            }
        }
        data
    }
}

/// The warehouse-loading transform: denormalize the TPC-H-shaped source
/// into the SSB star schema and emit the loading stream (dimension rows
/// first, then `LINEORDER` facts interleaved in order-key order) — the
/// update stream the standing analysis query is maintained against.
pub fn transform_to_ssb(data: &TpchData) -> UpdateStream {
    let mut stream = UpdateStream::new();
    let nation_of = |idx: usize| NATIONS[idx % NATIONS.len()].to_string();
    let region_of = |idx: usize| REGIONS[idx % REGIONS.len()].to_string();

    for (key, year) in &data.dates {
        stream.push(Event::insert(
            "DATES",
            Tuple::new(vec![Value::Int(*key), Value::Int(*year)]),
        ));
    }
    for (key, nation) in &data.customers {
        stream.push(Event::insert(
            "CUSTOMER",
            Tuple::new(vec![
                Value::Int(*key),
                Value::Str(nation_of(*nation)),
                Value::Str(region_of(*nation)),
            ]),
        ));
    }
    for (key, nation) in &data.suppliers {
        stream.push(Event::insert(
            "SUPPLIER",
            Tuple::new(vec![
                Value::Int(*key),
                Value::Str(nation_of(*nation)),
                Value::Str(region_of(*nation)),
            ]),
        ));
    }
    for (key, mfgr) in &data.parts {
        stream.push(Event::insert(
            "PART",
            Tuple::new(vec![
                Value::Int(*key),
                Value::Str(format!("MFGR#{mfgr}")),
                Value::Str(format!("MFGR#{mfgr}{}", key % 5 + 1)),
            ]),
        ));
    }
    // The data-integration join: each lineitem picks up its order's
    // customer and date (this is the costly intermediate result a separate
    // integration query would materialize; compiled loading streams it).
    for (orderkey, partkey, suppkey, revenue, cost) in &data.lineitems {
        let (_, custkey, datekey) = data
            .orders
            .iter()
            .find(|(o, _, _)| o == orderkey)
            .copied()
            .expect("lineitem references a generated order");
        stream.push(Event::insert(
            "LINEORDER",
            Tuple::new(vec![
                Value::Int(*orderkey),
                Value::Int(custkey),
                Value::Int(*suppkey),
                Value::Int(*partkey),
                Value::Int(datekey),
                Value::Float(*revenue),
                Value::Float(*cost),
            ]),
        ));
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_respects_scale() {
        let c = TpchConfig {
            orders: 100,
            ..Default::default()
        };
        let a = TpchData::generate(&c);
        let b = TpchData::generate(&c);
        assert_eq!(a.orders.len(), 100);
        assert_eq!(a.lineitems.len(), 100 * c.lines_per_order);
        assert_eq!(a.orders, b.orders);
        assert_eq!(a.lineitems, b.lineitems);
    }

    #[test]
    fn transform_emits_dimensions_before_facts() {
        let data = TpchData::generate(&TpchConfig {
            orders: 20,
            ..Default::default()
        });
        let stream = transform_to_ssb(&data);
        let first_fact = stream
            .iter()
            .position(|e| e.relation == "LINEORDER")
            .expect("facts present");
        assert!(stream
            .iter()
            .take(first_fact)
            .all(|e| e.relation != "LINEORDER"));
        // Every fact references existing dimension keys.
        let custkeys: Vec<i64> = data.customers.iter().map(|(k, _)| *k).collect();
        for e in stream.iter().filter(|e| e.relation == "LINEORDER") {
            assert!(custkeys.contains(&e.tuple[1].as_i64()));
        }
    }

    #[test]
    fn ssb_q41_compiles_and_runs_on_the_transformed_data() {
        let cat = ssb_catalog();
        let program = dbtoaster_compiler::compile_sql(
            SSB_Q41,
            &cat,
            &dbtoaster_compiler::CompileOptions::full(),
        )
        .unwrap();
        let mut engine = dbtoaster_runtime::Engine::new(&program).unwrap();
        let data = TpchData::generate(&TpchConfig {
            orders: 200,
            ..Default::default()
        });
        let stream = transform_to_ssb(&data);
        engine.process(&stream).unwrap();
        let rows = engine.result();
        assert!(
            !rows.is_empty(),
            "expected at least one (year, nation) group"
        );
        // Profit = revenue - cost is positive by construction.
        assert!(rows.iter().all(|r| r.values[2].as_f64() > 0.0));
    }

    #[test]
    fn scale_helper_grows_monotonically() {
        let small = TpchConfig::at_scale(0.01);
        let large = TpchConfig::at_scale(0.1);
        assert!(large.orders > small.orders);
        assert!(large.customers > small.customers);
    }
}
