//! Synthetic limit-order-book message stream (financial application).
//!
//! Models a TotalView-like feed: investors continually add limit orders,
//! modify them (a delete + insert pair, per the paper's update model) and
//! withdraw them, on both the bid and the ask book. Order books do not
//! grow unboundedly — the generator keeps a bounded number of resident
//! orders per book by retiring old orders — but the deltas are arbitrary
//! inserts and deletes, not window expirations, which is exactly the
//! data-model point of the paper's Section 2.

use dbtoaster_common::{Catalog, ColumnType, Event, Schema, Tuple, UpdateStream, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bid/ask book schema: `(T, ID, BROKER_ID, VOLUME, PRICE)` as in the
/// DBToaster finance benchmarks.
pub fn orderbook_catalog() -> Catalog {
    let columns = vec![
        ("T", ColumnType::Float),
        ("ID", ColumnType::Int),
        ("BROKER_ID", ColumnType::Int),
        ("VOLUME", ColumnType::Float),
        ("PRICE", ColumnType::Float),
    ];
    Catalog::new()
        .with(Schema::new("BIDS", columns.clone()))
        .with(Schema::new("ASKS", columns))
}

/// VWAP numerator and denominator over the bid book; the client divides
/// the two sums (volume-weighted average price).
pub const VWAP_COMPONENTS: &str = "select sum(PRICE * VOLUME), sum(VOLUME) from BIDS";

/// The full nested-aggregate VWAP of the DBToaster finance suite: the
/// price-volume mass of the bids that sit above the 25%-volume quantile
/// of the book.
pub const VWAP_NESTED: &str = "select sum(b1.PRICE * b1.VOLUME) from BIDS b1 \
     where 0.25 * (select sum(b3.VOLUME) from BIDS b3) > \
           (select sum(b2.VOLUME) from BIDS b2 where b2.PRICE > b1.PRICE)";

/// Static order-book imbalance (SOBI)-style signal: volume-weighted price
/// spread between crossing bid/ask pairs of the same broker.
pub const SOBI: &str = "select sum(b.VOLUME * a.VOLUME * (b.PRICE - a.PRICE)) \
     from BIDS b, ASKS a where b.BROKER_ID = a.BROKER_ID";

/// Market-maker position imbalance per broker (detects brokers quoting
/// both sides of the book).
pub const MARKET_MAKER: &str = "select b.BROKER_ID, sum(b.VOLUME - a.VOLUME) \
     from BIDS b, ASKS a where b.BROKER_ID = a.BROKER_ID group by b.BROKER_ID";

/// The financial standing queries used by the bakeoff (name, SQL).
pub fn finance_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        ("vwap_components", VWAP_COMPONENTS),
        ("sobi", SOBI),
        ("market_maker", MARKET_MAKER),
    ]
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct OrderBookConfig {
    /// Total number of messages (events) to generate.
    pub messages: usize,
    /// Resident orders per book before old orders start being retired.
    pub book_depth: usize,
    /// Number of distinct brokers.
    pub brokers: i64,
    /// Mid price around which limit prices are drawn.
    pub mid_price: f64,
    /// Price band half-width.
    pub band: f64,
    /// Fraction of messages that modify an existing order (emitted as a
    /// delete + insert pair).
    pub modify_ratio: f64,
    /// Fraction of messages that withdraw an existing order.
    pub delete_ratio: f64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for OrderBookConfig {
    fn default() -> Self {
        OrderBookConfig {
            messages: 10_000,
            book_depth: 2_000,
            brokers: 10,
            mid_price: 100.0,
            band: 5.0,
            modify_ratio: 0.2,
            delete_ratio: 0.2,
            seed: 42,
        }
    }
}

/// Deterministic order-book message generator.
pub struct OrderBookGenerator {
    config: OrderBookConfig,
    rng: SmallRng,
    next_id: i64,
    time: f64,
    bids: Vec<Tuple>,
    asks: Vec<Tuple>,
}

impl OrderBookGenerator {
    pub fn new(config: OrderBookConfig) -> OrderBookGenerator {
        let rng = SmallRng::seed_from_u64(config.seed);
        OrderBookGenerator {
            config,
            rng,
            next_id: 1,
            time: 0.0,
            bids: Vec::new(),
            asks: Vec::new(),
        }
    }

    fn new_order(&mut self, is_bid: bool) -> Tuple {
        self.time += 1.0;
        let id = self.next_id;
        self.next_id += 1;
        let broker = self.rng.gen_range(0..self.config.brokers);
        let volume = self.rng.gen_range(1.0..100.0_f64).round();
        let offset = self.rng.gen_range(0.0..self.config.band);
        let price = if is_bid {
            self.config.mid_price - offset
        } else {
            self.config.mid_price + offset
        };
        Tuple::new(vec![
            Value::Float(self.time),
            Value::Int(id),
            Value::Int(broker),
            Value::Float(volume),
            Value::Float((price * 100.0).round() / 100.0),
        ])
    }

    /// Generate the full message stream.
    pub fn generate(mut self) -> UpdateStream {
        let mut stream = UpdateStream::new();
        let mut produced = 0usize;
        while produced < self.config.messages {
            let is_bid = self.rng.gen_bool(0.5);
            let relation = if is_bid { "BIDS" } else { "ASKS" };
            let book_len = if is_bid {
                self.bids.len()
            } else {
                self.asks.len()
            };
            let action: f64 = self.rng.gen();

            if book_len > 0 && action < self.config.delete_ratio {
                // Withdraw a random resident order.
                let idx = self.rng.gen_range(0..book_len);
                let order = if is_bid {
                    self.bids.swap_remove(idx)
                } else {
                    self.asks.swap_remove(idx)
                };
                stream.push(Event::delete(relation, order));
                produced += 1;
            } else if book_len > 0 && action < self.config.delete_ratio + self.config.modify_ratio {
                // Modify: delete + insert with a new volume (partial fill).
                let idx = self.rng.gen_range(0..book_len);
                let old = if is_bid {
                    self.bids[idx].clone()
                } else {
                    self.asks[idx].clone()
                };
                let mut new = old.clone();
                let new_volume = (old[3].as_f64() * self.rng.gen_range(0.1..0.9))
                    .max(1.0)
                    .round();
                new.0[3] = Value::Float(new_volume);
                if is_bid {
                    self.bids[idx] = new.clone();
                } else {
                    self.asks[idx] = new.clone();
                }
                stream.push_update(relation, old, new);
                produced += 2;
            } else {
                // Add a fresh limit order, retiring an old one if the book
                // is at capacity (keeps state bounded, as real books are).
                if book_len >= self.config.book_depth {
                    let idx = self.rng.gen_range(0..book_len);
                    let retired = if is_bid {
                        self.bids.swap_remove(idx)
                    } else {
                        self.asks.swap_remove(idx)
                    };
                    stream.push(Event::delete(relation, retired));
                    produced += 1;
                }
                let order = self.new_order(is_bid);
                if is_bid {
                    self.bids.push(order.clone());
                } else {
                    self.asks.push(order.clone());
                }
                stream.push(Event::insert(relation, order));
                produced += 1;
            }
        }
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_balanced() {
        let a = OrderBookGenerator::new(OrderBookConfig {
            messages: 500,
            ..Default::default()
        })
        .generate();
        let b = OrderBookGenerator::new(OrderBookConfig {
            messages: 500,
            ..Default::default()
        })
        .generate();
        assert_eq!(a, b);
        assert!(a.len() >= 500);
        let counts = a.counts_by_relation();
        assert!(counts.iter().any(|(r, _)| r == "BIDS"));
        assert!(counts.iter().any(|(r, _)| r == "ASKS"));
    }

    #[test]
    fn deletes_always_refer_to_live_orders() {
        use std::collections::HashSet;
        let stream = OrderBookGenerator::new(OrderBookConfig {
            messages: 2_000,
            book_depth: 100,
            ..Default::default()
        })
        .generate();
        let mut live: HashSet<(String, Tuple)> = HashSet::new();
        for e in &stream {
            match e.kind {
                dbtoaster_common::EventKind::Insert => {
                    assert!(live.insert((e.relation.clone(), e.tuple.clone())));
                }
                dbtoaster_common::EventKind::Delete => {
                    assert!(
                        live.remove(&(e.relation.clone(), e.tuple.clone())),
                        "delete of a non-resident order"
                    );
                }
            }
        }
    }

    #[test]
    fn book_depth_bounds_resident_state() {
        let depth = 50;
        let stream = OrderBookGenerator::new(OrderBookConfig {
            messages: 3_000,
            book_depth: depth,
            ..Default::default()
        })
        .generate();
        let mut bids = 0i64;
        let mut max_bids = 0i64;
        for e in &stream {
            if e.relation == "BIDS" {
                bids += e.kind.sign();
                max_bids = max_bids.max(bids);
            }
        }
        assert!(max_bids as usize <= depth + 1);
    }

    #[test]
    fn finance_queries_compile_against_the_catalog() {
        let cat = orderbook_catalog();
        for (name, sql) in finance_queries() {
            let p = dbtoaster_compiler::compile_sql(
                sql,
                &cat,
                &dbtoaster_compiler::CompileOptions::full(),
            );
            assert!(p.is_ok(), "{name} failed to compile: {:?}", p.err());
        }
        // The nested VWAP compiles through the materialization
        // hierarchy: incremental child maps, no re-evaluation.
        let nested = dbtoaster_compiler::compile_sql(
            VWAP_NESTED,
            &cat,
            &dbtoaster_compiler::CompileOptions::full(),
        )
        .unwrap();
        assert!(nested
            .triggers
            .iter()
            .flat_map(|t| &t.statements)
            .all(|s| s.kind == dbtoaster_compiler::StatementKind::Update));
    }
}
