//! [`EventSource`] adapters over the workload generators.
//!
//! The generators build whole [`UpdateStream`]s; these adapters put them
//! behind the pull-based [`EventSource`] seam so a view server (or any
//! batched consumer) can ingest them exactly like an archived or network
//! stream. [`GeneratorSource::interleave`] additionally merges several
//! generated streams into one deterministic round-robin mix — the
//! "portfolio of views over one shared stream" deployment shape, where
//! order-book messages and warehouse loading records arrive through the
//! same pipe.

use dbtoaster_common::{EventBatch, EventSource, Result, StreamSource, UpdateStream};

use crate::orderbook::{OrderBookConfig, OrderBookGenerator};
use crate::tpch::{transform_to_ssb, TpchConfig, TpchData};

/// A workload generator's stream behind the [`EventSource`] seam.
pub struct GeneratorSource {
    inner: StreamSource,
}

impl GeneratorSource {
    /// Adapt an already-generated stream.
    pub fn new(name: impl Into<String>, stream: UpdateStream) -> GeneratorSource {
        GeneratorSource {
            inner: StreamSource::new(name, stream),
        }
    }

    /// The order-book message stream for `config`.
    pub fn orderbook(config: OrderBookConfig) -> GeneratorSource {
        GeneratorSource::new("orderbook", OrderBookGenerator::new(config).generate())
    }

    /// The warehouse-loading stream (TPC-H-shaped data transformed into
    /// the SSB star schema) for `config`.
    pub fn warehouse(config: &TpchConfig) -> GeneratorSource {
        GeneratorSource::new("warehouse", transform_to_ssb(&TpchData::generate(config)))
    }

    /// Merge several named streams into one source by deterministic
    /// round-robin: one event is drawn from each live stream in turn
    /// until all are exhausted. Relative order *within* each input
    /// stream is preserved, which is what correctness requires — deletes
    /// still follow the inserts they revoke.
    pub fn interleave(
        name: impl Into<String>,
        streams: impl IntoIterator<Item = UpdateStream>,
    ) -> GeneratorSource {
        let mut queues: Vec<std::vec::IntoIter<dbtoaster_common::Event>> =
            streams.into_iter().map(|s| s.events.into_iter()).collect();
        let total: usize = queues.iter().map(|q| q.len()).sum();
        let mut merged = UpdateStream {
            events: Vec::with_capacity(total),
        };
        while !queues.is_empty() {
            queues.retain_mut(|q| match q.next() {
                Some(e) => {
                    merged.push(e);
                    true
                }
                None => false,
            });
        }
        GeneratorSource::new(name, merged)
    }

    /// Events not yet handed out.
    pub fn remaining(&self) -> usize {
        self.inner.remaining()
    }
}

impl EventSource for GeneratorSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_batch(&mut self, max_events: usize) -> Result<Option<EventBatch>> {
        self.inner.next_batch(max_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{tuple, Event};

    #[test]
    fn orderbook_source_replays_the_generated_stream() {
        let config = OrderBookConfig {
            messages: 300,
            book_depth: 100,
            ..Default::default()
        };
        let direct = OrderBookGenerator::new(config.clone()).generate();
        let mut source = GeneratorSource::orderbook(config);
        assert_eq!(source.name(), "orderbook");
        let replayed = source.drain(64).unwrap();
        assert_eq!(replayed, direct, "adapter must not perturb the stream");
    }

    #[test]
    fn warehouse_source_emits_dimensions_then_facts() {
        let mut source = GeneratorSource::warehouse(&TpchConfig {
            orders: 20,
            ..Default::default()
        });
        let first = source.next_batch(10).unwrap().unwrap();
        assert!(first.iter().all(|e| e.relation == "DATES"));
    }

    #[test]
    fn interleave_round_robins_but_preserves_per_stream_order() {
        let a: UpdateStream = (0..5i64).map(|i| Event::insert("A", tuple![i])).collect();
        let b: UpdateStream = (0..2i64).map(|i| Event::insert("B", tuple![i])).collect();
        let mut source = GeneratorSource::interleave("mix", [a.clone(), b.clone()]);
        let merged = source.drain(100).unwrap();
        assert_eq!(merged.len(), 7);
        // Round-robin head, then the longer stream's tail.
        let relations: Vec<&str> = merged.iter().map(|e| e.relation.as_str()).collect();
        assert_eq!(relations, vec!["A", "B", "A", "B", "A", "A", "A"]);
        let a_events: Vec<_> = merged
            .iter()
            .filter(|e| e.relation == "A")
            .cloned()
            .collect();
        assert_eq!(a_events, a.events, "per-stream order preserved");
    }
}
