//! Fixed-bucket log2 latency histogram.
//!
//! Bucket `i` covers `[2^i, 2^(i+1))` (bucket 0 additionally swallows
//! 0). With [`BUCKETS`] = 40 buckets the last finite bound is `2^40`
//! nanoseconds ≈ 18 minutes; larger samples clamp into the final
//! bucket. `record` is three relaxed atomic ops (bucket add, sum add,
//! max fetch_max) behind a single enabled-flag branch; `snapshot`
//! copies the bucket array and derives the count from the bucket sum,
//! so a snapshot's bucket mass always equals its count even when taken
//! mid-record.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two buckets. Bucket `i` holds values in
/// `[2^i, 2^(i+1))`; the last bucket also absorbs everything above.
pub const BUCKETS: usize = 40;

/// Upper (inclusive, in Prometheus `le` terms) bound of bucket `i`:
/// `2^(i+1) - 1` rounds to `2^(i+1)` for rendering simplicity — we
/// report the exclusive power-of-two edge, which is what log2 buckets
/// mean to a reader.
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    1u64 << (i as u32 + 1).min(63)
}

#[inline]
fn bucket_index(v: u64) -> usize {
    // floor(log2(v)) with v==0 mapping to bucket 0; clamp the tail.
    let idx = 63 - (v | 1).leading_zeros() as usize;
    idx.min(BUCKETS - 1)
}

/// Lock-free log2 histogram. Construct through
/// [`crate::MetricsRegistry::histogram`] so the enabled gate is shared
/// registry-wide, or [`Histogram::ungated`] for standalone use (always
/// records).
#[derive(Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub(crate) fn with_gate(enabled: Arc<AtomicBool>) -> Histogram {
        Histogram {
            enabled,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// A histogram that always records, independent of any registry.
    pub fn ungated() -> Histogram {
        Histogram::with_gate(Arc::new(AtomicBool::new(true)))
    }

    /// Is recording currently enabled? Callers on hot paths should
    /// check this *before* reading the clock so the disabled path pays
    /// neither the `Instant::now` nor the atomics.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one sample. A single branch when disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.is_enabled() {
            return;
        }
        self.record_unchecked(v);
    }

    /// Record without consulting the gate — for callers that already
    /// branched on [`Histogram::is_enabled`] before timing.
    #[inline]
    pub fn record_unchecked(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy: the count is derived
    /// from the copied buckets, so bucket mass == count by
    /// construction. Sum/max may trail the buckets by an in-flight
    /// record; quantiles come from the buckets alone.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Estimate quantile `q` in `[0,1]` by linear interpolation within
    /// the log2 bucket holding the q-th sample (assuming samples spread
    /// uniformly inside a bucket — the standard Prometheus
    /// `histogram_quantile` model). The estimate lands in
    /// `(bucket_lower, bucket_upper]` and is clamped to the observed
    /// max, so constant distributions and the open-ended top bucket
    /// never report a value larger than anything recorded. Returns 0
    /// for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 && seen + n >= rank {
                let lower = if i == 0 { 0 } else { 1u64 << i };
                let upper = if i == BUCKETS - 1 {
                    // Open-ended tail: the observed max is the only
                    // honest upper edge.
                    self.max.max(lower)
                } else {
                    bucket_upper_bound(i)
                };
                let pos = (rank - seen) as f64 / n as f64;
                let value = lower as f64 + pos * (upper - lower) as f64;
                return (value as u64).min(self.max);
            }
            seen += n;
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample value, 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Fold another snapshot in — used to aggregate per-worker
    /// histograms into one distribution.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Exact powers of two open a new bucket; one-less stays below.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1, "tail clamps");
        assert_eq!(bucket_index(1u64 << 45), BUCKETS - 1, "tail clamps");
    }

    #[test]
    fn zero_sample_snapshot() {
        let h = Histogram::ungated();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let h = Histogram::ungated();
        // 90 fast samples (~1µs), 10 slow (~1ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 1_000 + 10 * 1_000_000);
        assert_eq!(s.max, 1_000_000);
        // 1000 lives in [512, 1024): rank 50 of the 90 fast samples
        // interpolates to 512 + (50/90)*512 = 796.
        assert_eq!(s.p50(), 796);
        // p95/p99 land among the slow samples: 1e6 in [2^19, 2^20),
        // ranks 95/99 sit 5/10 and 9/10 of the way through it.
        assert_eq!(s.p95(), 786_432);
        assert_eq!(s.p99(), 996_147);
    }

    #[test]
    fn interpolated_quantiles_bound_error_on_uniform_distribution() {
        let h = Histogram::ungated();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // True p50 = 500, p95 = 950. Interpolation inside the log2
        // bucket keeps the estimate within a few percent instead of
        // the old bucket-upper-bound 2× error.
        assert_eq!(s.p50(), 501);
        assert!((s.p50() as f64 - 500.0).abs() / 500.0 < 0.01);
        assert_eq!(s.p95(), 971);
        assert!((s.p95() as f64 - 950.0).abs() / 950.0 < 0.05);
        assert_eq!(s.quantile(1.0), 1000, "q=1 clamps to the observed max");
    }

    #[test]
    fn constant_distribution_clamps_to_observed_max() {
        let h = Histogram::ungated();
        for _ in 0..1000 {
            h.record(777);
        }
        let s = h.snapshot();
        // 777 fills [512, 1024); high quantiles would interpolate past
        // the largest sample without the max clamp.
        assert_eq!(s.p99(), 777);
        assert_eq!(s.p50(), 768);
        assert!(s.p50() <= s.max && s.p99() <= s.max);
    }

    #[test]
    fn top_bucket_quantile_reports_observed_max() {
        let h = Histogram::ungated();
        let big = (1u64 << 50) + 12345;
        h.record(big);
        let s = h.snapshot();
        assert_eq!(s.p50(), big);
        assert_eq!(s.max, big);
    }

    #[test]
    fn merge_accumulates_per_worker_histograms() {
        let a = Histogram::ungated();
        let b = Histogram::ungated();
        for _ in 0..5 {
            a.record(100);
        }
        for _ in 0..3 {
            b.record(10_000);
        }
        b.record(1 << 30);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 9);
        assert_eq!(merged.sum, 5 * 100 + 3 * 10_000 + (1 << 30));
        assert_eq!(merged.max, 1 << 30);
        let lone = merged.buckets.iter().sum::<u64>();
        assert_eq!(lone, 9, "bucket mass equals count after merge");
    }

    #[test]
    fn concurrent_record_and_snapshot_stay_consistent() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::ungated());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record((t as u64 + 1) * 64 + (i % 7));
                }
            }));
        }
        // Snapshot while writers run: the invariant under test is that
        // bucket mass always equals the derived count.
        for _ in 0..50 {
            let s = h.snapshot();
            assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
            assert!(s.count <= THREADS as u64 * PER_THREAD);
        }
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, THREADS as u64 * PER_THREAD);
        let expected_sum: u64 = (0..THREADS as u64)
            .map(|t| (0..PER_THREAD).map(|i| (t + 1) * 64 + (i % 7)).sum::<u64>())
            .sum();
        assert_eq!(s.sum, expected_sum);
    }
}
