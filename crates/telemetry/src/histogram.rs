//! Fixed-bucket log2 latency histogram.
//!
//! Bucket `i` covers `[2^i, 2^(i+1))` (bucket 0 additionally swallows
//! 0). With [`BUCKETS`] = 40 buckets the last finite bound is `2^40`
//! nanoseconds ≈ 18 minutes; larger samples clamp into the final
//! bucket. `record` is three relaxed atomic ops (bucket add, sum add,
//! max fetch_max) behind a single enabled-flag branch; `snapshot`
//! copies the bucket array and derives the count from the bucket sum,
//! so a snapshot's bucket mass always equals its count even when taken
//! mid-record.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two buckets. Bucket `i` holds values in
/// `[2^i, 2^(i+1))`; the last bucket also absorbs everything above.
pub const BUCKETS: usize = 40;

/// Upper (inclusive, in Prometheus `le` terms) bound of bucket `i`:
/// `2^(i+1) - 1` rounds to `2^(i+1)` for rendering simplicity — we
/// report the exclusive power-of-two edge, which is what log2 buckets
/// mean to a reader.
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    1u64 << (i as u32 + 1).min(63)
}

#[inline]
fn bucket_index(v: u64) -> usize {
    // floor(log2(v)) with v==0 mapping to bucket 0; clamp the tail.
    let idx = 63 - (v | 1).leading_zeros() as usize;
    idx.min(BUCKETS - 1)
}

/// Lock-free log2 histogram. Construct through
/// [`crate::MetricsRegistry::histogram`] so the enabled gate is shared
/// registry-wide, or [`Histogram::ungated`] for standalone use (always
/// records).
#[derive(Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub(crate) fn with_gate(enabled: Arc<AtomicBool>) -> Histogram {
        Histogram {
            enabled,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// A histogram that always records, independent of any registry.
    pub fn ungated() -> Histogram {
        Histogram::with_gate(Arc::new(AtomicBool::new(true)))
    }

    /// Is recording currently enabled? Callers on hot paths should
    /// check this *before* reading the clock so the disabled path pays
    /// neither the `Instant::now` nor the atomics.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one sample. A single branch when disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.is_enabled() {
            return;
        }
        self.record_unchecked(v);
    }

    /// Record without consulting the gate — for callers that already
    /// branched on [`Histogram::is_enabled`] before timing.
    #[inline]
    pub fn record_unchecked(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy: the count is derived
    /// from the copied buckets, so bucket mass == count by
    /// construction. Sum/max may trail the buckets by an in-flight
    /// record; quantiles come from the buckets alone.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Estimate quantile `q` in `[0,1]` as the upper bound of the
    /// bucket holding the q-th sample. Log2 buckets make this exact to
    /// within 2× — plenty to distinguish a 2µs p50 from a 500µs p99.
    /// Returns 0 for an empty snapshot. The top bucket reports the
    /// observed max (it is open-ended, so its power-of-two edge would
    /// lie).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == BUCKETS - 1 {
                    self.max
                } else {
                    bucket_upper_bound(i)
                };
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample value, 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Fold another snapshot in — used to aggregate per-worker
    /// histograms into one distribution.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Exact powers of two open a new bucket; one-less stays below.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1, "tail clamps");
        assert_eq!(bucket_index(1u64 << 45), BUCKETS - 1, "tail clamps");
    }

    #[test]
    fn zero_sample_snapshot() {
        let h = Histogram::ungated();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let h = Histogram::ungated();
        // 90 fast samples (~1µs), 10 slow (~1ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 1_000 + 10 * 1_000_000);
        assert_eq!(s.max, 1_000_000);
        // 1000 lives in [512, 1024): p50 reports 1024.
        assert_eq!(s.p50(), 1024);
        // p95/p99 land among the slow samples: 1e6 in [2^19, 2^20).
        assert_eq!(s.p95(), 1 << 20);
        assert_eq!(s.p99(), 1 << 20);
    }

    #[test]
    fn top_bucket_quantile_reports_observed_max() {
        let h = Histogram::ungated();
        let big = (1u64 << 50) + 12345;
        h.record(big);
        let s = h.snapshot();
        assert_eq!(s.p50(), big);
        assert_eq!(s.max, big);
    }

    #[test]
    fn merge_accumulates_per_worker_histograms() {
        let a = Histogram::ungated();
        let b = Histogram::ungated();
        for _ in 0..5 {
            a.record(100);
        }
        for _ in 0..3 {
            b.record(10_000);
        }
        b.record(1 << 30);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 9);
        assert_eq!(merged.sum, 5 * 100 + 3 * 10_000 + (1 << 30));
        assert_eq!(merged.max, 1 << 30);
        let lone = merged.buckets.iter().sum::<u64>();
        assert_eq!(lone, 9, "bucket mass equals count after merge");
    }

    #[test]
    fn concurrent_record_and_snapshot_stay_consistent() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::ungated());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record((t as u64 + 1) * 64 + (i % 7));
                }
            }));
        }
        // Snapshot while writers run: the invariant under test is that
        // bucket mass always equals the derived count.
        for _ in 0..50 {
            let s = h.snapshot();
            assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
            assert!(s.count <= THREADS as u64 * PER_THREAD);
        }
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, THREADS as u64 * PER_THREAD);
        let expected_sum: u64 = (0..THREADS as u64)
            .map(|t| (0..PER_THREAD).map(|i| (t + 1) * 64 + (i % 7)).sum::<u64>())
            .sum();
        assert_eq!(s.sum, expected_sum);
    }
}
