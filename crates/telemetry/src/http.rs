//! Minimal Prometheus scrape endpoint plus the health plane.
//!
//! One std thread runs a nonblocking accept loop (same poll-and-sleep
//! pattern as the wire server — no async runtime in this workspace);
//! each accepted connection is answered on its own short-lived thread
//! under a total read/write deadline, so one stalled or trickling
//! scraper can neither block other scrapes nor hold a connection open
//! indefinitely. Routes:
//!
//! * `GET /metrics` (and `GET /` as an alias) — Prometheus text.
//! * `GET /trace` — Chrome `trace_event` JSON, when wired.
//! * `GET /healthz` — liveness: `200 ok` whenever the endpoint thread
//!   is alive to answer.
//! * `GET /readyz` — readiness, when wired: `200` with a detail body
//!   while the [`HealthFn`] reports ready, `503` otherwise.
//!
//! Anything else gets a 404; an oversized or non-HTTP request line gets
//! a 400 after a strictly bounded read.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::{Gauge, MetricsRegistry};

const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Total budget for one connection: reading the request *and* writing
/// the response. A peer that trickles bytes slower than this is cut
/// off, whatever its per-read cadence.
const CONN_DEADLINE: Duration = Duration::from_secs(5);
const MAX_REQUEST_BYTES: usize = 8192;

/// A callback run before each render — layers use it to refresh
/// point-in-time gauges (store sizes, queue depth) so a scrape always
/// reflects current state.
pub type PrepareFn = Box<dyn Fn() + Send + Sync>;

/// A callback producing the `/trace` body — Chrome `trace_event` JSON
/// rendered from the trace recorder's current ring.
pub type TraceFn = Box<dyn Fn() -> String + Send + Sync>;

/// A callback evaluating readiness for `GET /readyz`.
pub type HealthFn = Box<dyn Fn() -> HealthStatus + Send + Sync>;

/// One readiness evaluation: the verdict and a short human-readable
/// detail line served as the response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthStatus {
    /// Whether the server should receive traffic.
    pub ready: bool,
    /// Bounded detail (queue depth, lag, mismatch count, ...).
    pub detail: String,
}

/// HTTP server exposing a [`MetricsRegistry`] in Prometheus text
/// format, with optional trace and health planes. Dropping the handle
/// stops the accept thread.
pub struct MetricsHttpServer {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// Everything a connection thread needs to answer a request.
struct Routes {
    registry: Arc<MetricsRegistry>,
    prepare: Option<PrepareFn>,
    trace: Option<TraceFn>,
    health: Option<HealthFn>,
    /// `dbt_uptime_seconds`, refreshed before each render from
    /// `started` so scrapes always see the current value.
    uptime: Arc<Gauge>,
    started: Instant,
}

impl MetricsHttpServer {
    /// Bind `addr` (e.g. `127.0.0.1:9898`; port 0 picks a free port)
    /// and start serving `registry`. `prepare` (if any) runs before
    /// each render.
    pub fn bind(
        addr: &str,
        registry: Arc<MetricsRegistry>,
        prepare: Option<PrepareFn>,
    ) -> std::io::Result<MetricsHttpServer> {
        MetricsHttpServer::bind_with_planes(addr, registry, prepare, None, None)
    }

    /// Like [`MetricsHttpServer::bind`], additionally serving `trace`
    /// output (Chrome `trace_event` JSON) at `GET /trace`.
    pub fn bind_with_trace(
        addr: &str,
        registry: Arc<MetricsRegistry>,
        prepare: Option<PrepareFn>,
        trace: Option<TraceFn>,
    ) -> std::io::Result<MetricsHttpServer> {
        MetricsHttpServer::bind_with_planes(addr, registry, prepare, trace, None)
    }

    /// The full surface: `/metrics`, plus `/trace` when `trace` is
    /// wired and `/readyz` when `health` is wired. Binding also
    /// registers the identity gauges `dbt_up`, `dbt_uptime_seconds`,
    /// and `dbt_build_info{version}` in `registry`.
    pub fn bind_with_planes(
        addr: &str,
        registry: Arc<MetricsRegistry>,
        prepare: Option<PrepareFn>,
        trace: Option<TraceFn>,
        health: Option<HealthFn>,
    ) -> std::io::Result<MetricsHttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        registry
            .gauge("dbt_up", "1 while the metrics endpoint is serving", &[])
            .set(1);
        registry
            .gauge(
                "dbt_build_info",
                "Build identity (value is always 1)",
                &[("version", env!("CARGO_PKG_VERSION"))],
            )
            .set(1);
        let uptime = registry.gauge(
            "dbt_uptime_seconds",
            "Seconds since the metrics endpoint was bound",
            &[],
        );
        let routes = Arc::new(Routes {
            registry,
            prepare,
            trace,
            health,
            uptime,
            started: Instant::now(),
        });
        let stopping = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&stopping);
        let thread = std::thread::Builder::new()
            .name("metrics-http".to_string())
            .spawn(move || accept_loop(listener, routes, stop))
            .expect("spawn metrics-http thread");
        Ok(MetricsHttpServer {
            addr: local,
            stopping,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the thread.
    pub fn shutdown(&mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsHttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, routes: Arc<Routes>, stopping: Arc<AtomicBool>) {
    while !stopping.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Per-connection thread: a scraper that stalls mid-read
                // only wedges its own (deadline-bounded) thread, never
                // the accept loop or other scrapes. Threads are
                // detached — the deadline bounds their lifetime.
                let routes = Arc::clone(&routes);
                let spawned = std::thread::Builder::new()
                    .name("metrics-conn".to_string())
                    .spawn(move || {
                        let _ = serve_one(stream, &routes);
                    });
                if spawned.is_err() {
                    // Out of threads: drop the connection, keep serving.
                    continue;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Outcome of the bounded request read.
enum RequestLine {
    Path(String),
    /// Headers exceeded [`MAX_REQUEST_BYTES`] before terminating.
    TooLarge,
    /// Not parseable as `GET <path> ...`.
    Garbage,
    /// Peer vanished before sending a parseable request.
    Gone,
}

fn serve_one(mut stream: TcpStream, routes: &Routes) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let deadline = Instant::now() + CONN_DEADLINE;
    stream.set_write_timeout(Some(CONN_DEADLINE))?;
    let request = read_request_path(&mut stream, deadline);
    // An oversized request is rejected with the peer's unread bytes
    // still in flight; closing right after the response would RST the
    // socket and could destroy the response before the peer reads it.
    // Half-close and drain (deadline-bounded) instead.
    let drain = matches!(request, RequestLine::TooLarge);
    let response = match request {
        RequestLine::Gone => return Ok(()),
        RequestLine::TooLarge => text_response("400 Bad Request", "request too large\n"),
        RequestLine::Garbage => text_response("400 Bad Request", "malformed request\n"),
        RequestLine::Path(path) => match path.as_str() {
            "/metrics" | "/" => {
                if let Some(p) = &routes.prepare {
                    p();
                }
                routes.uptime.set(routes.started.elapsed().as_secs() as i64);
                let body = routes.registry.render_prometheus();
                response_with("200 OK", "text/plain; version=0.0.4; charset=utf-8", &body)
            }
            "/trace" if routes.trace.is_some() => {
                let body = routes.trace.as_ref().map(|t| t()).unwrap_or_default();
                response_with("200 OK", "application/json", &body)
            }
            "/healthz" => text_response("200 OK", "ok\n"),
            "/readyz" if routes.health.is_some() => {
                let status = routes.health.as_ref().map(|h| h()).expect("guarded");
                let mut body = status.detail;
                if !body.ends_with('\n') {
                    body.push('\n');
                }
                if status.ready {
                    text_response("200 OK", &body)
                } else {
                    text_response("503 Service Unavailable", &body)
                }
            }
            _ => text_response("404 Not Found", "not found; try /metrics\n"),
        },
    };
    stream.write_all(response.as_bytes())?;
    stream.flush()?;
    if drain {
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut sink = [0u8; 512];
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() || stream.set_read_timeout(Some(remaining)).is_err() {
                break;
            }
            match stream.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }
    Ok(())
}

fn text_response(status: &str, body: &str) -> String {
    response_with(status, "text/plain", body)
}

fn response_with(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
}

/// Read up to the end of the request headers within `deadline` and
/// classify the request line. Every read is bounded twice: the buffer
/// never exceeds [`MAX_REQUEST_BYTES`], and each read's timeout is the
/// *remaining* deadline budget — a one-byte-per-second trickler is cut
/// off when the budget runs out, not per-read.
fn read_request_path(stream: &mut TcpStream, deadline: Instant) -> RequestLine {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() || stream.set_read_timeout(Some(remaining)).is_err() {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > MAX_REQUEST_BYTES {
                    return RequestLine::TooLarge;
                }
                if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if buf.is_empty() {
        return RequestLine::Gone;
    }
    let text = String::from_utf8_lossy(&buf);
    let Some(first) = text.lines().next() else {
        return RequestLine::Garbage;
    };
    let mut parts = first.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return RequestLine::Garbage;
    };
    if method != "GET" || !path.starts_with('/') {
        return RequestLine::Garbage;
    }
    // Strip any query string; scrapes sometimes append one.
    RequestLine::Path(path.split('?').next().unwrap_or(path).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Unit;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn raw_request(addr: SocketAddr, payload: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(payload).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.set_enabled(true);
        reg.counter("demo_total", "demo", &[]).add(3);
        reg.histogram("demo_seconds", "lat", &[], Unit::Nanos)
            .record(2_000);
        let server = MetricsHttpServer::bind("127.0.0.1:0", Arc::clone(&reg), None).unwrap();
        let resp = http_get(server.addr(), "/metrics");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("demo_total 3"), "{resp}");
        assert!(resp.contains("demo_seconds_count 1"), "{resp}");
        let missing = http_get(server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        // Without a trace callback, /trace is not a route.
        let no_trace = http_get(server.addr(), "/trace");
        assert!(no_trace.starts_with("HTTP/1.1 404"), "{no_trace}");
        // Without a health callback, /readyz is not a route either.
        let no_ready = http_get(server.addr(), "/readyz");
        assert!(no_ready.starts_with("HTTP/1.1 404"), "{no_ready}");
    }

    #[test]
    fn identity_gauges_and_uptime_are_served() {
        let reg = Arc::new(MetricsRegistry::new());
        let server = MetricsHttpServer::bind("127.0.0.1:0", Arc::clone(&reg), None).unwrap();
        let resp = http_get(server.addr(), "/metrics");
        assert!(resp.contains("dbt_up 1"), "{resp}");
        assert!(resp.contains("dbt_uptime_seconds"), "{resp}");
        assert!(
            resp.contains(&format!(
                "dbt_build_info{{version=\"{}\"}} 1",
                env!("CARGO_PKG_VERSION")
            )),
            "{resp}"
        );
    }

    #[test]
    fn trace_endpoint_serves_json_when_wired() {
        let reg = Arc::new(MetricsRegistry::new());
        let trace: TraceFn = Box::new(|| "{\"traceEvents\":[]}".to_string());
        let server =
            MetricsHttpServer::bind_with_trace("127.0.0.1:0", reg, None, Some(trace)).unwrap();
        let resp = http_get(server.addr(), "/trace");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("application/json"), "{resp}");
        assert!(resp.ends_with("{\"traceEvents\":[]}"), "{resp}");
    }

    #[test]
    fn health_endpoints_reflect_the_callback() {
        use std::sync::atomic::AtomicBool;
        let reg = Arc::new(MetricsRegistry::new());
        let ready = Arc::new(AtomicBool::new(true));
        let health: HealthFn = {
            let ready = Arc::clone(&ready);
            Box::new(move || {
                let r = ready.load(Ordering::SeqCst);
                HealthStatus {
                    ready: r,
                    detail: if r {
                        "ready".into()
                    } else {
                        "not ready: lag=9".into()
                    },
                }
            })
        };
        let server =
            MetricsHttpServer::bind_with_planes("127.0.0.1:0", reg, None, None, Some(health))
                .unwrap();
        // Liveness is unconditional.
        let live = http_get(server.addr(), "/healthz");
        assert!(live.starts_with("HTTP/1.1 200 OK"), "{live}");
        assert!(live.ends_with("ok\n"), "{live}");
        // Readiness follows the callback.
        let ok = http_get(server.addr(), "/readyz");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(ok.ends_with("ready\n"), "{ok}");
        ready.store(false, Ordering::SeqCst);
        let sad = http_get(server.addr(), "/readyz");
        assert!(sad.starts_with("HTTP/1.1 503"), "{sad}");
        assert!(sad.contains("not ready: lag=9"), "{sad}");
    }

    #[test]
    fn oversized_and_garbage_requests_get_400s() {
        let reg = Arc::new(MetricsRegistry::new());
        let server = MetricsHttpServer::bind("127.0.0.1:0", reg, None).unwrap();
        // Headers larger than the bound: rejected, bounded read.
        let huge = format!(
            "GET /metrics HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(16384)
        );
        let resp = raw_request(server.addr(), huge.as_bytes());
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("request too large"), "{resp}");
        // Not HTTP at all.
        let resp = raw_request(server.addr(), b"\x00\x01\x02 binary junk\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        // Wrong method.
        let resp = raw_request(server.addr(), b"POST /metrics HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        // The server still answers a well-formed scrape afterwards.
        let ok = http_get(server.addr(), "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
    }

    #[test]
    fn a_stalled_connection_does_not_block_other_scrapes() {
        let reg = Arc::new(MetricsRegistry::new());
        let server = MetricsHttpServer::bind("127.0.0.1:0", reg, None).unwrap();
        // Open a connection and send nothing — under the old serial
        // accept loop this held /metrics hostage for the read timeout.
        let stalled = TcpStream::connect(server.addr()).unwrap();
        let t0 = Instant::now();
        let resp = http_get(server.addr(), "/metrics");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "scrape waited on a stalled peer: {:?}",
            t0.elapsed()
        );
        drop(stalled);
    }

    #[test]
    fn prepare_hook_runs_before_each_render() {
        use std::sync::atomic::AtomicI64;
        let reg = Arc::new(MetricsRegistry::new());
        let gauge = reg.gauge("live_value", "refreshed per scrape", &[]);
        let next = Arc::new(AtomicI64::new(41));
        let prepare: PrepareFn = {
            let gauge = Arc::clone(&gauge);
            let next = Arc::clone(&next);
            Box::new(move || gauge.set(next.fetch_add(1, Ordering::SeqCst) + 1))
        };
        let server =
            MetricsHttpServer::bind("127.0.0.1:0", Arc::clone(&reg), Some(prepare)).unwrap();
        let first = http_get(server.addr(), "/metrics");
        assert!(first.contains("live_value 42"), "{first}");
        let second = http_get(server.addr(), "/metrics");
        assert!(second.contains("live_value 43"), "{second}");
    }

    #[test]
    fn shutdown_joins_the_accept_thread() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut server = MetricsHttpServer::bind("127.0.0.1:0", reg, None).unwrap();
        let addr = server.addr();
        server.shutdown();
        // After shutdown the port no longer answers.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }
}
