//! Minimal Prometheus scrape endpoint.
//!
//! One std thread runs a nonblocking accept loop (same poll-and-sleep
//! pattern as the wire server — no async runtime in this workspace);
//! each connection is answered inline since a scrape is one request.
//! Only `GET /metrics` (and `GET /` as a convenience alias) are served;
//! everything else gets a 404.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::MetricsRegistry;

const ACCEPT_POLL: Duration = Duration::from_millis(5);
const READ_TIMEOUT: Duration = Duration::from_secs(2);
const MAX_REQUEST_BYTES: usize = 8192;

/// A callback run before each render — layers use it to refresh
/// point-in-time gauges (store sizes, queue depth) so a scrape always
/// reflects current state.
pub type PrepareFn = Box<dyn Fn() + Send + Sync>;

/// A callback producing the `/trace` body — Chrome `trace_event` JSON
/// rendered from the trace recorder's current ring.
pub type TraceFn = Box<dyn Fn() -> String + Send + Sync>;

/// HTTP server exposing a [`MetricsRegistry`] in Prometheus text
/// format. Dropping the handle stops the accept thread.
pub struct MetricsHttpServer {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsHttpServer {
    /// Bind `addr` (e.g. `127.0.0.1:9898`; port 0 picks a free port)
    /// and start serving `registry`. `prepare` (if any) runs before
    /// each render.
    pub fn bind(
        addr: &str,
        registry: Arc<MetricsRegistry>,
        prepare: Option<PrepareFn>,
    ) -> std::io::Result<MetricsHttpServer> {
        MetricsHttpServer::bind_with_trace(addr, registry, prepare, None)
    }

    /// Like [`MetricsHttpServer::bind`], additionally serving `trace`
    /// output (Chrome `trace_event` JSON) at `GET /trace`.
    pub fn bind_with_trace(
        addr: &str,
        registry: Arc<MetricsRegistry>,
        prepare: Option<PrepareFn>,
        trace: Option<TraceFn>,
    ) -> std::io::Result<MetricsHttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&stopping);
        let thread = std::thread::Builder::new()
            .name("metrics-http".to_string())
            .spawn(move || accept_loop(listener, registry, prepare, trace, stop))
            .expect("spawn metrics-http thread");
        Ok(MetricsHttpServer {
            addr: local,
            stopping,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the thread.
    pub fn shutdown(&mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsHttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<MetricsRegistry>,
    prepare: Option<PrepareFn>,
    trace: Option<TraceFn>,
    stopping: Arc<AtomicBool>,
) {
    while !stopping.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // A scrape is a single tiny request/response; answering
                // inline keeps the server at one thread.
                let _ = serve_one(stream, &registry, prepare.as_deref(), trace.as_deref());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_one(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    prepare: Option<&(dyn Fn() + Send + Sync)>,
    trace: Option<&(dyn Fn() -> String + Send + Sync)>,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let path = match read_request_path(&mut stream) {
        Some(p) => p,
        None => return Ok(()),
    };
    let response = if path == "/metrics" || path == "/" {
        if let Some(p) = prepare {
            p();
        }
        let body = registry.render_prometheus();
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else if path == "/trace" && trace.is_some() {
        let body = trace.map(|t| t()).unwrap_or_default();
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        let body = "not found; try /metrics\n";
        format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Read up to the end of the request headers and return the GET path,
/// or None for anything malformed / non-GET.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let first = text.lines().next()?;
    let mut parts = first.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Strip any query string; scrapes sometimes append one.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Unit;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.set_enabled(true);
        reg.counter("demo_total", "demo", &[]).add(3);
        reg.histogram("demo_seconds", "lat", &[], Unit::Nanos)
            .record(2_000);
        let server = MetricsHttpServer::bind("127.0.0.1:0", Arc::clone(&reg), None).unwrap();
        let resp = http_get(server.addr(), "/metrics");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("demo_total 3"), "{resp}");
        assert!(resp.contains("demo_seconds_count 1"), "{resp}");
        let missing = http_get(server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        // Without a trace callback, /trace is not a route.
        let no_trace = http_get(server.addr(), "/trace");
        assert!(no_trace.starts_with("HTTP/1.1 404"), "{no_trace}");
    }

    #[test]
    fn trace_endpoint_serves_json_when_wired() {
        let reg = Arc::new(MetricsRegistry::new());
        let trace: TraceFn = Box::new(|| "{\"traceEvents\":[]}".to_string());
        let server =
            MetricsHttpServer::bind_with_trace("127.0.0.1:0", reg, None, Some(trace)).unwrap();
        let resp = http_get(server.addr(), "/trace");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("application/json"), "{resp}");
        assert!(resp.ends_with("{\"traceEvents\":[]}"), "{resp}");
    }

    #[test]
    fn prepare_hook_runs_before_each_render() {
        use std::sync::atomic::AtomicI64;
        let reg = Arc::new(MetricsRegistry::new());
        let gauge = reg.gauge("live_value", "refreshed per scrape", &[]);
        let next = Arc::new(AtomicI64::new(41));
        let prepare: PrepareFn = {
            let gauge = Arc::clone(&gauge);
            let next = Arc::clone(&next);
            Box::new(move || gauge.set(next.fetch_add(1, Ordering::SeqCst) + 1))
        };
        let server =
            MetricsHttpServer::bind("127.0.0.1:0", Arc::clone(&reg), Some(prepare)).unwrap();
        let first = http_get(server.addr(), "/metrics");
        assert!(first.contains("live_value 42"), "{first}");
        let second = http_get(server.addr(), "/metrics");
        assert!(second.contains("live_value 43"), "{second}");
    }

    #[test]
    fn shutdown_joins_the_accept_thread() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut server = MetricsHttpServer::bind("127.0.0.1:0", reg, None).unwrap();
        let addr = server.addr();
        server.shutdown();
        // After shutdown the port no longer answers.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }
}
