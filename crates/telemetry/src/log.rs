//! Leveled, structured (logfmt) logging with a bounded emission rate.
//!
//! The daemon and the net server used to print through bare
//! `eprintln!` — no level to filter on, no structure to grep, and a
//! connection-error storm could write to stderr as fast as peers could
//! misbehave. This module replaces that with one process-global logger:
//!
//! * **Leveled** — `error`/`warn`/`info`/`debug`, filtered by a single
//!   relaxed atomic load ([`set_log_level`], the daemon's
//!   `--log-level`). A suppressed line costs the load and a branch.
//! * **logfmt** — every line is `ts=... level=... target=... msg=...`
//!   plus caller-supplied `key=value` fields; values with spaces or
//!   quotes are quoted and escaped, so lines stay machine-parseable.
//! * **Rate-bounded** — a token bucket caps emission at
//!   [`MAX_LINES_PER_SEC`] lines/s (burst [`BURST_LINES`]). Beyond
//!   that, lines are counted instead of written, and the next emitted
//!   line carries a `suppressed=N` field — an error storm costs
//!   counters, not stderr bandwidth.
//!
//! Output goes to stderr, one line per record, matching what operators
//! already capture from the daemon.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Sustained emission bound of the global logger, lines per second.
pub const MAX_LINES_PER_SEC: f64 = 100.0;
/// Burst capacity of the token bucket (lines).
pub const BURST_LINES: f64 = 200.0;

/// Severity of a log record, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl LogLevel {
    /// The lowercase logfmt label.
    pub fn label(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }

    /// Parse a CLI spelling (`error|warn|info|debug`, case-insensitive).
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(LogLevel::Error),
            "warn" | "warning" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> LogLevel {
        match v {
            0 => LogLevel::Error,
            1 => LogLevel::Warn,
            3 => LogLevel::Debug,
            _ => LogLevel::Info,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// Set the process-global log level; records above it are dropped
/// before any formatting.
pub fn set_log_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-global log level.
pub fn log_level() -> LogLevel {
    LogLevel::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Token-bucket limiter: `allow` spends one token when available and
/// counts a suppression otherwise; refill is continuous at
/// `rate` tokens/s up to `burst`. Time is passed in so tests can drive
/// the clock.
pub struct RateLimiter {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
    suppressed: u64,
}

impl RateLimiter {
    /// A full bucket of `burst` tokens refilling at `rate`/s.
    pub fn new(rate: f64, burst: f64, now: Instant) -> RateLimiter {
        RateLimiter {
            rate,
            burst,
            tokens: burst,
            last: now,
            suppressed: 0,
        }
    }

    /// `Some(previously_suppressed)` when a token was available (the
    /// caller should emit, noting the count if non-zero); `None` when
    /// the line must be suppressed.
    pub fn allow(&mut self, now: Instant) -> Option<u64> {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Some(std::mem::take(&mut self.suppressed))
        } else {
            self.suppressed += 1;
            None
        }
    }
}

static LIMITER: Mutex<Option<RateLimiter>> = Mutex::new(None);

/// Format one logfmt line (no trailing newline). `unix_nanos` is the
/// wall-clock timestamp; `suppressed` (when non-zero) notes how many
/// earlier lines the rate bound swallowed.
pub fn format_line(
    unix_nanos: u128,
    level: LogLevel,
    target: &str,
    msg: &str,
    fields: &[(&str, &str)],
    suppressed: u64,
) -> String {
    let mut out = String::with_capacity(96 + msg.len());
    out.push_str("ts=");
    push_rfc3339(&mut out, unix_nanos);
    out.push_str(" level=");
    out.push_str(level.label());
    out.push_str(" target=");
    push_value(&mut out, target);
    out.push_str(" msg=");
    push_value(&mut out, msg);
    for (k, v) in fields {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        push_value(&mut out, v);
    }
    if suppressed > 0 {
        let _ = write!(out, " suppressed={suppressed}");
    }
    out
}

/// Log one record through the global level filter and rate bound.
pub fn log(level: LogLevel, target: &str, msg: &str, fields: &[(&str, &str)]) {
    if level > log_level() {
        return;
    }
    let suppressed = {
        let mut limiter = LIMITER.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        match limiter
            .get_or_insert_with(|| RateLimiter::new(MAX_LINES_PER_SEC, BURST_LINES, now))
            .allow(now)
        {
            Some(n) => n,
            None => return,
        }
    };
    let unix_nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let line = format_line(unix_nanos, level, target, msg, fields, suppressed);
    let stderr = std::io::stderr();
    let mut lock = stderr.lock();
    let _ = writeln!(lock, "{line}");
}

/// [`log`] at [`LogLevel::Error`].
pub fn log_error(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(LogLevel::Error, target, msg, fields);
}

/// [`log`] at [`LogLevel::Warn`].
pub fn log_warn(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(LogLevel::Warn, target, msg, fields);
}

/// [`log`] at [`LogLevel::Info`].
pub fn log_info(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(LogLevel::Info, target, msg, fields);
}

/// [`log`] at [`LogLevel::Debug`].
pub fn log_debug(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(LogLevel::Debug, target, msg, fields);
}

/// A logfmt value: bare when it is plain, quoted-and-escaped otherwise.
fn push_value(out: &mut String, v: &str) {
    let plain = !v.is_empty()
        && v.bytes()
            .all(|b| b.is_ascii_graphic() && b != b'"' && b != b'=' && b != b'\\');
    if plain {
        out.push_str(v);
        return;
    }
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a unix-epoch timestamp as RFC 3339 UTC with millisecond
/// precision (`2026-08-08T12:34:56.789Z`), no external time crate.
fn push_rfc3339(out: &mut String, unix_nanos: u128) {
    let secs = (unix_nanos / 1_000_000_000) as i64;
    let millis = (unix_nanos / 1_000_000 % 1_000) as u32;
    let days = secs.div_euclid(86_400);
    let tod = secs.rem_euclid(86_400);
    let (h, m, s) = (tod / 3600, tod % 3600 / 60, tod % 60);
    let (year, month, day) = civil_from_days(days);
    let _ = write!(
        out,
        "{year:04}-{month:02}-{day:02}T{h:02}:{m:02}:{s:02}.{millis:03}Z"
    );
}

/// Days-since-epoch to (year, month, day) in the proleptic Gregorian
/// calendar (Howard Hinnant's `civil_from_days` algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn levels_order_and_parse() {
        assert!(LogLevel::Error < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
        assert_eq!(LogLevel::parse("WARN"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("warning"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("loud"), None);
        for l in [
            LogLevel::Error,
            LogLevel::Warn,
            LogLevel::Info,
            LogLevel::Debug,
        ] {
            assert_eq!(LogLevel::from_u8(l as u8), l);
        }
    }

    #[test]
    fn format_is_logfmt_with_escaping() {
        // 2021-01-02 03:04:05.678 UTC.
        let ts = 1_609_556_645_678_000_000u128;
        let line = format_line(
            ts,
            LogLevel::Warn,
            "net",
            "connection dropped: reset by peer",
            &[("addr", "127.0.0.1:9000"), ("note", "say \"hi\"\n")],
            3,
        );
        assert_eq!(
            line,
            "ts=2021-01-02T03:04:05.678Z level=warn target=net \
             msg=\"connection dropped: reset by peer\" addr=127.0.0.1:9000 \
             note=\"say \\\"hi\\\"\\n\" suppressed=3"
        );
        assert!(!line.contains('\n'), "escaped output stays single-line");
    }

    #[test]
    fn plain_values_stay_bare_and_equals_forces_quotes() {
        let line = format_line(0, LogLevel::Info, "daemon", "up", &[("k", "a=b")], 0);
        assert_eq!(
            line,
            "ts=1970-01-01T00:00:00.000Z level=info target=daemon msg=up k=\"a=b\""
        );
    }

    #[test]
    fn civil_from_days_round_trips_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year
        assert_eq!(civil_from_days(19_782), (2024, 2, 29));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn rate_limiter_suppresses_beyond_burst_and_refills() {
        let t0 = Instant::now();
        let mut limiter = RateLimiter::new(10.0, 2.0, t0);
        assert_eq!(limiter.allow(t0), Some(0));
        assert_eq!(limiter.allow(t0), Some(0));
        // Bucket empty: suppressed, counted.
        assert_eq!(limiter.allow(t0), None);
        assert_eq!(limiter.allow(t0), None);
        // 0.5 s at 10/s refills 5 tokens (clamped to burst 2); the first
        // emitted line reports the 2 suppressions.
        let t1 = t0 + Duration::from_millis(500);
        assert_eq!(limiter.allow(t1), Some(2));
        assert_eq!(limiter.allow(t1), Some(0));
        assert_eq!(limiter.allow(t1), None);
    }

    #[test]
    fn global_filter_drops_below_level() {
        // Only exercises the cheap filter path (no emission assertions —
        // stderr is shared); the important property is no panic and the
        // level round-trip.
        let prev = log_level();
        set_log_level(LogLevel::Error);
        log_debug("test", "must be dropped by the level filter", &[]);
        assert_eq!(log_level(), LogLevel::Error);
        set_log_level(prev);
    }
}
