//! Bounded ring buffer of the slowest recent events.
//!
//! When `dbtoasterd` runs with `--slow-event-us N`, any event whose
//! apply latency meets the threshold is pushed here; the ring keeps the
//! most recent [`SlowEventRing::capacity`] entries and the `debug`
//! request frame dumps them. Capture is two short mutex critical
//! sections away from the apply lock scope — the caller times first,
//! then reports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default number of retained slow events.
pub const DEFAULT_SLOW_RING_CAPACITY: usize = 256;

/// One event that exceeded the slow threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEvent {
    /// Monotonic capture sequence number (total slow events seen, not
    /// just retained — `seq` gaps reveal ring overwrites).
    pub seq: u64,
    /// Source relation name.
    pub relation: String,
    /// True for a deletion event.
    pub is_delete: bool,
    /// Apply latency in microseconds.
    pub micros: u64,
}

/// Fixed-capacity ring of recent slow events. `push` and `dump` take a
/// mutex; pushes only happen for already-slow events, so the lock is
/// off the fast path by construction.
pub struct SlowEventRing {
    threshold_us: u64,
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<Vec<SlowEvent>>,
}

impl SlowEventRing {
    /// A ring that captures events at or above `threshold_us`
    /// microseconds. `capacity` is clamped to at least 1.
    pub fn new(threshold_us: u64, capacity: usize) -> SlowEventRing {
        SlowEventRing {
            threshold_us,
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            ring: Mutex::new(Vec::new()),
        }
    }

    /// The capture threshold in microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total slow events ever observed (including overwritten ones).
    pub fn total_captured(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Record an event if it meets the threshold. Returns true when
    /// captured.
    pub fn observe(&self, relation: &str, is_delete: bool, micros: u64) -> bool {
        if micros < self.threshold_us {
            return false;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = SlowEvent {
            seq,
            relation: relation.to_string(),
            is_delete,
            micros,
        };
        let mut ring = self.ring.lock().expect("slow ring poisoned");
        if ring.len() == self.capacity {
            // Overwrite the oldest; the ring stays ordered because seq
            // is monotonic and we rotate by position.
            let idx = (seq as usize) % self.capacity;
            ring[idx] = ev;
        } else {
            ring.push(ev);
        }
        true
    }

    /// The retained events, oldest first.
    pub fn dump(&self) -> Vec<SlowEvent> {
        let ring = self.ring.lock().expect("slow ring poisoned");
        let mut out = ring.clone();
        out.sort_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_filters_fast_events() {
        let ring = SlowEventRing::new(100, 8);
        assert!(!ring.observe("R", false, 99));
        assert!(ring.observe("R", false, 100));
        assert!(ring.observe("S", true, 5_000));
        assert_eq!(ring.total_captured(), 2);
        let dump = ring.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].relation, "R");
        assert_eq!(dump[0].seq, 0);
        assert!(dump[1].is_delete);
    }

    #[test]
    fn ring_retains_most_recent_at_capacity() {
        let ring = SlowEventRing::new(0, 4);
        for i in 0..10u64 {
            ring.observe("R", false, i);
        }
        assert_eq!(ring.total_captured(), 10);
        let dump = ring.dump();
        assert_eq!(dump.len(), 4);
        let seqs: Vec<u64> = dump.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest-first, most recent kept");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = SlowEventRing::new(0, 0);
        ring.observe("R", false, 1);
        ring.observe("R", false, 2);
        let dump = ring.dump();
        assert_eq!(dump.len(), 1);
        assert_eq!(dump[0].micros, 2);
    }
}
