//! Bounded ring buffer of the slowest recent events.
//!
//! When `dbtoasterd` runs with `--slow-event-us N`, any event whose
//! apply latency meets the threshold is pushed here; the ring keeps the
//! most recent [`SlowEventRing::capacity`] entries and the `debug`
//! request frame dumps them. Capture is two short mutex critical
//! sections away from the apply lock scope — the caller times first,
//! then reports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default number of retained slow events.
pub const DEFAULT_SLOW_RING_CAPACITY: usize = 256;

/// Default per-entry payload budget when `--slow-event-payloads` is on.
pub const DEFAULT_SLOW_PAYLOAD_BYTES: usize = 128;

/// One event that exceeded the slow threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEvent {
    /// Monotonic capture sequence number (total slow events seen, not
    /// just retained — `seq` gaps reveal ring overwrites).
    pub seq: u64,
    /// Source relation name.
    pub relation: String,
    /// True for a deletion event.
    pub is_delete: bool,
    /// Apply latency in microseconds.
    pub micros: u64,
    /// Rendered tuple payload, truncated to the ring's byte budget.
    /// Empty unless payload capture is enabled.
    pub payload: String,
}

/// Fixed-capacity ring of recent slow events. `push` and `dump` take a
/// mutex; pushes only happen for already-slow events, so the lock is
/// off the fast path by construction.
pub struct SlowEventRing {
    threshold_us: u64,
    capacity: usize,
    payload_bytes: usize,
    seq: AtomicU64,
    ring: Mutex<Vec<SlowEvent>>,
}

impl SlowEventRing {
    /// A ring that captures events at or above `threshold_us`
    /// microseconds. `capacity` is clamped to at least 1. Payload
    /// capture starts off; see [`SlowEventRing::with_payloads`].
    pub fn new(threshold_us: u64, capacity: usize) -> SlowEventRing {
        SlowEventRing {
            threshold_us,
            capacity: capacity.max(1),
            payload_bytes: 0,
            seq: AtomicU64::new(0),
            ring: Mutex::new(Vec::new()),
        }
    }

    /// Also capture the offending tuple, keeping at most `max_bytes`
    /// of its rendering per entry (0 turns capture back off).
    pub fn with_payloads(mut self, max_bytes: usize) -> SlowEventRing {
        self.payload_bytes = max_bytes;
        self
    }

    /// Per-entry payload byte budget (0 = payload capture off).
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// The capture threshold in microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total slow events ever observed (including overwritten ones).
    pub fn total_captured(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Record an event if it meets the threshold. Returns true when
    /// captured. No payload is stored — see
    /// [`SlowEventRing::observe_with`].
    pub fn observe(&self, relation: &str, is_delete: bool, micros: u64) -> bool {
        self.observe_with(relation, is_delete, micros, String::new)
    }

    /// Record an event if it meets the threshold, lazily rendering its
    /// tuple payload. `render` only runs for captured events on rings
    /// built [`SlowEventRing::with_payloads`]; the result is truncated
    /// to the byte budget on a char boundary. Returns true when
    /// captured.
    pub fn observe_with(
        &self,
        relation: &str,
        is_delete: bool,
        micros: u64,
        render: impl FnOnce() -> String,
    ) -> bool {
        if micros < self.threshold_us {
            return false;
        }
        let payload = if self.payload_bytes > 0 {
            truncate_to_boundary(render(), self.payload_bytes)
        } else {
            String::new()
        };
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = SlowEvent {
            seq,
            relation: relation.to_string(),
            is_delete,
            micros,
            payload,
        };
        let mut ring = self.ring.lock().expect("slow ring poisoned");
        if ring.len() == self.capacity {
            // Overwrite the oldest; the ring stays ordered because seq
            // is monotonic and we rotate by position.
            let idx = (seq as usize) % self.capacity;
            ring[idx] = ev;
        } else {
            ring.push(ev);
        }
        true
    }

    /// The retained events, oldest first.
    pub fn dump(&self) -> Vec<SlowEvent> {
        let ring = self.ring.lock().expect("slow ring poisoned");
        let mut out = ring.clone();
        out.sort_by_key(|e| e.seq);
        out
    }
}

/// Truncate to at most `max_bytes`, backing off to a char boundary.
fn truncate_to_boundary(mut s: String, max_bytes: usize) -> String {
    if s.len() > max_bytes {
        let mut cut = max_bytes;
        while cut > 0 && !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_filters_fast_events() {
        let ring = SlowEventRing::new(100, 8);
        assert!(!ring.observe("R", false, 99));
        assert!(ring.observe("R", false, 100));
        assert!(ring.observe("S", true, 5_000));
        assert_eq!(ring.total_captured(), 2);
        let dump = ring.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].relation, "R");
        assert_eq!(dump[0].seq, 0);
        assert!(dump[1].is_delete);
    }

    #[test]
    fn ring_retains_most_recent_at_capacity() {
        let ring = SlowEventRing::new(0, 4);
        for i in 0..10u64 {
            ring.observe("R", false, i);
        }
        assert_eq!(ring.total_captured(), 10);
        let dump = ring.dump();
        assert_eq!(dump.len(), 4);
        let seqs: Vec<u64> = dump.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest-first, most recent kept");
    }

    #[test]
    fn payload_capture_is_lazy_and_bounded() {
        let plain = SlowEventRing::new(0, 4);
        assert!(plain.observe_with("R", false, 10, || panic!("must not render")));
        assert_eq!(plain.dump()[0].payload, "", "no budget, no payload");

        let ring = SlowEventRing::new(100, 4).with_payloads(8);
        assert_eq!(ring.payload_bytes(), 8);
        assert!(!ring.observe_with("R", false, 5, || panic!("below threshold")));
        assert!(ring.observe_with("R", false, 200, || "(1, 2.5)".to_string()));
        assert!(ring.observe_with("R", false, 200, || "abcdefghij".to_string()));
        // Multi-byte char straddling the cut backs off to a boundary.
        assert!(ring.observe_with("R", false, 200, || "abcdefgé".to_string()));
        let dump = ring.dump();
        assert_eq!(dump[0].payload, "(1, 2.5)");
        assert_eq!(dump[1].payload, "abcdefgh");
        assert_eq!(dump[2].payload, "abcdefg");
        assert!(dump.iter().all(|e| e.payload.len() <= 8));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = SlowEventRing::new(0, 0);
        ring.observe("R", false, 1);
        ring.observe("R", false, 2);
        let dump = ring.dump();
        assert_eq!(dump.len(), 1);
        assert_eq!(dump[0].micros, 2);
    }
}
