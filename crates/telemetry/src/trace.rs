//! Sampled event-flow span recorder.
//!
//! Every event admitted into the pipeline gets a global sequence
//! number from [`TraceRecorder::admit`]; when tracing is enabled with
//! a 1-in-N sample rate, the layers an event flows through (ingest
//! queue, dispatch bucket, group lock, stage schedule, statement
//! execution) each stamp a [`TraceSpan`] for the sampled seqs. Spans
//! land in a bounded ring and export as Chrome `trace_event` JSON
//! (load into `chrome://tracing` or Perfetto).
//!
//! The disabled path mirrors the histogram gate: one relaxed atomic
//! load and a branch, no clock reads, no allocation. Sampling is
//! deterministic — `seq % N == 0` — so every layer that knows the seq
//! decides independently without threading a token through the
//! pipeline.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default number of retained spans.
pub const DEFAULT_TRACE_RING_CAPACITY: usize = 4096;

/// Span layer name: time spent in the net ingest queue.
pub const LAYER_QUEUE: &str = "queue";
/// Span layer name: dispatch of a batch bucket onto a worker.
pub const LAYER_DISPATCH: &str = "dispatch";
/// Span layer name: base-map group-lock acquisition.
pub const LAYER_LOCK: &str = "lock";
/// Span layer name: one stage pass of the retract/rebuild schedule.
pub const LAYER_STAGE: &str = "stage";
/// Span layer name: one trigger statement execution.
pub const LAYER_STATEMENT: &str = "statement";

/// One recorded span: a named interval attributed to an event seq.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Global event sequence number assigned at admission.
    pub seq: u64,
    /// Pipeline layer (one of the `LAYER_*` constants).
    pub layer: String,
    /// Bounded human-readable context (view, worker, stage, ...).
    pub detail: String,
    /// Start offset in nanoseconds from the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Lane id (hashed thread identity) for timeline grouping.
    pub tid: u64,
}

/// Sampled span sink shared by every pipeline layer.
///
/// Always constructed (so admission seqs exist even when tracing is
/// off); [`TraceRecorder::set_enabled`] flips capture on. `record`
/// takes a mutex, but only runs for sampled events, so the lock is
/// off the fast path by construction.
pub struct TraceRecorder {
    enabled: AtomicBool,
    sample_one_in: AtomicU64,
    next_seq: AtomicU64,
    epoch: Instant,
    capacity: usize,
    ring: Mutex<RingState>,
}

struct RingState {
    written: u64,
    spans: Vec<TraceSpan>,
}

impl TraceRecorder {
    /// A disabled recorder sampling 1-in-1. `capacity` is clamped to
    /// at least 1.
    pub fn new(capacity: usize) -> TraceRecorder {
        TraceRecorder {
            enabled: AtomicBool::new(false),
            sample_one_in: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            epoch: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(RingState {
                written: 0,
                spans: Vec::new(),
            }),
        }
    }

    /// Turn capture on or off. Seq admission keeps running either way.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether capture is on (one relaxed load — hoist per batch).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sample one event in every `n` (clamped to at least 1).
    pub fn set_sample_one_in(&self, n: u64) {
        self.sample_one_in.store(n.max(1), Ordering::Relaxed);
    }

    /// The current 1-in-N sample rate.
    pub fn sample_one_in(&self) -> u64 {
        self.sample_one_in.load(Ordering::Relaxed)
    }

    /// Claim `n` consecutive event seqs; returns the first. Called
    /// once per batch at admission — every downstream layer derives an
    /// event's seq as `base + position`.
    pub fn admit(&self, n: u64) -> u64 {
        self.next_seq.fetch_add(n, Ordering::Relaxed)
    }

    /// Deterministic sampling decision for one seq.
    pub fn sampled(&self, seq: u64) -> bool {
        self.is_enabled() && seq.is_multiple_of(self.sample_one_in())
    }

    /// Nanoseconds from the recorder epoch to now.
    pub fn now_ns(&self) -> u64 {
        self.ns_of(Instant::now())
    }

    /// Nanoseconds from the recorder epoch to `at` (0 if earlier).
    pub fn ns_of(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Push a span into the bounded ring (oldest overwritten first).
    pub fn record(&self, span: TraceSpan) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.spans.len() == self.capacity {
            let idx = (ring.written as usize) % self.capacity;
            ring.spans[idx] = span;
        } else {
            ring.spans.push(span);
        }
        ring.written += 1;
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.ring.lock().expect("trace ring poisoned").written
    }

    /// The retained spans, ordered by start time then seq.
    pub fn dump(&self) -> Vec<TraceSpan> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        let mut out = ring.spans.clone();
        out.sort_by_key(|s| (s.start_ns, s.seq));
        out
    }

    /// A lane id for the calling thread, stable for its lifetime.
    pub fn current_tid() -> u64 {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        // Keep it short enough to read in a trace viewer.
        h.finish() % 100_000
    }
}

/// Render spans as Chrome `trace_event` JSON (the "JSON Array Format"
/// wrapped in an object). Timestamps are microseconds with nanosecond
/// precision kept in the fractional part.
pub fn chrome_trace_json(spans: &[TraceSpan]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(&mut out, &span.layer);
        out.push_str(",\"cat\":\"dbtoaster\",\"ph\":\"X\",\"ts\":");
        push_micros(&mut out, span.start_ns);
        out.push_str(",\"dur\":");
        push_micros(&mut out, span.dur_ns);
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&span.tid.to_string());
        out.push_str(",\"args\":{\"seq\":");
        out.push_str(&span.seq.to_string());
        out.push_str(",\"detail\":");
        push_json_str(&mut out, &span.detail);
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

fn push_micros(out: &mut String, ns: u64) {
    out.push_str(&(ns / 1_000).to_string());
    out.push('.');
    let frac = ns % 1_000;
    out.push_str(&format!("{frac:03}"));
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64, layer: &str, start_ns: u64) -> TraceSpan {
        TraceSpan {
            seq,
            layer: layer.to_string(),
            detail: format!("d{seq}"),
            start_ns,
            dur_ns: 10,
            tid: 1,
        }
    }

    #[test]
    fn admission_hands_out_consecutive_seqs() {
        let t = TraceRecorder::new(8);
        assert_eq!(t.admit(3), 0);
        assert_eq!(t.admit(1), 3);
        assert_eq!(t.admit(5), 4);
    }

    #[test]
    fn sampling_is_deterministic_seq_modulo() {
        let t = TraceRecorder::new(8);
        assert!(!t.sampled(0), "disabled recorder samples nothing");
        t.set_enabled(true);
        t.set_sample_one_in(4);
        let picked: Vec<u64> = (0..10).filter(|&s| t.sampled(s)).collect();
        assert_eq!(picked, vec![0, 4, 8]);
        t.set_sample_one_in(0);
        assert_eq!(t.sample_one_in(), 1, "zero clamps to every event");
    }

    #[test]
    fn ring_retains_most_recent_at_capacity() {
        let t = TraceRecorder::new(4);
        for i in 0..10u64 {
            t.record(span(i, LAYER_STAGE, i));
        }
        assert_eq!(t.total_recorded(), 10);
        let dump = t.dump();
        assert_eq!(dump.len(), 4);
        let seqs: Vec<u64> = dump.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest-first, most recent kept");
    }

    #[test]
    fn chrome_export_renders_micros_and_escapes() {
        let spans = vec![
            TraceSpan {
                seq: 7,
                layer: LAYER_QUEUE.to_string(),
                detail: "say \"hi\"\n".to_string(),
                start_ns: 1_234_567,
                dur_ns: 999,
                tid: 42,
            },
            span(8, LAYER_DISPATCH, 2_000_000),
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ts\":1234.567"));
        assert!(json.contains("\"dur\":0.999"));
        assert!(json.contains("\"seq\":7"));
        assert!(json.contains("say \\\"hi\\\"\\n"));
        assert!(json.contains("\"name\":\"dispatch\""));
        assert!(!json.contains('\n'), "escaped output stays single-line");
    }

    #[test]
    fn epoch_relative_clock_is_monotone() {
        let t = TraceRecorder::new(4);
        let a = t.now_ns();
        let b = t.now_ns();
        assert!(b >= a);
        assert_eq!(t.ns_of(t.epoch), 0);
    }
}
