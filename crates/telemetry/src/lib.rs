//! Unified telemetry: the metrics core every layer registers into.
//!
//! The paper's pitch is views refreshed at per-event latencies, but
//! throughput averages computed after the fact cannot verify that claim
//! on a live server. This crate is the missing instrument: a
//! **dependency-free** metrics core (std only — it sits below every
//! other crate in the workspace) with three primitives and a registry:
//!
//! * [`Counter`] — a monotonic atomic `u64`. Never gated: counters
//!   replace pre-existing bookkeeping (per-view event counts, dispatch
//!   totals), so they must stay bit-exact whether or not latency
//!   recording is enabled.
//! * [`Gauge`] — an atomic `i64` point-in-time value (queue depth,
//!   store bytes).
//! * [`Histogram`] — a fixed-bucket **log2 latency histogram**:
//!   recording is lock-free (one atomic add into the value's
//!   power-of-two bucket, one into the running sum, one `fetch_max`),
//!   reads take a [`HistogramSnapshot`] with p50/p95/p99/max estimates.
//!   Recording is **gated** by the registry's enabled flag — the
//!   disabled path is a single relaxed load and branch, and callers can
//!   ask [`Histogram::is_enabled`] *before* reading the clock so the
//!   disabled hot path pays no `Instant::now` either.
//!
//! [`MetricsRegistry`] interns metrics by `(name, labels)` — repeated
//! registration returns the same handle — and renders the whole family
//! in the Prometheus text exposition format
//! ([`MetricsRegistry::render_prometheus`]), which
//! [`MetricsHttpServer`] serves over plain HTTP GET. A bounded
//! [`SlowEventRing`] captures the most recent events that exceeded a
//! latency threshold for post-hoc inspection.

mod histogram;
mod http;
mod log;
mod slow;
mod trace;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use http::{HealthFn, HealthStatus, MetricsHttpServer, PrepareFn, TraceFn};
pub use log::{
    log, log_debug, log_error, log_info, log_level, log_warn, set_log_level, LogLevel, RateLimiter,
};
pub use slow::{SlowEvent, SlowEventRing, DEFAULT_SLOW_PAYLOAD_BYTES, DEFAULT_SLOW_RING_CAPACITY};
pub use trace::{
    chrome_trace_json, TraceRecorder, TraceSpan, DEFAULT_TRACE_RING_CAPACITY, LAYER_DISPATCH,
    LAYER_LOCK, LAYER_QUEUE, LAYER_STAGE, LAYER_STATEMENT,
};

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// counter / gauge
// ---------------------------------------------------------------------

/// A monotonically increasing atomic counter.
///
/// Counters are *not* gated by the registry's enabled flag: they are
/// cheap (one relaxed `fetch_add`) and several of them are the system's
/// only bookkeeping (per-view event counts), which must stay exact.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value (queue depth, resident bytes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Ratchet the gauge up to `v` if it is larger than the current
    /// value (watermark semantics — safe under concurrent writers).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------

/// How a histogram's raw `u64` samples should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Samples are nanoseconds; rendered as seconds (Prometheus
    /// convention — name such histograms `*_seconds`).
    Nanos,
    /// Samples are dimensionless counts (batch sizes, queue lengths);
    /// rendered raw.
    Count,
}

/// One label pair, owned.
pub type Labels = Vec<(String, String)>;

enum Kind {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>, Unit),
}

struct Entry {
    name: String,
    help: String,
    labels: Labels,
    kind: Kind,
}

/// The server-wide registry all layers register their metrics into.
///
/// Registration interns by `(name, labels)`: registering the same
/// series twice returns the same handle, so layers can register
/// independently without coordinating. Recording through [`Histogram`]
/// handles is gated by [`MetricsRegistry::set_enabled`]; counters and
/// gauges always record.
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    entries: Mutex<Vec<Entry>>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// A fresh registry with latency recording **disabled**.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: Arc::new(AtomicBool::new(false)),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Is histogram recording enabled?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable histogram recording. The flag is shared with
    /// every histogram handed out, so the switch is immediate.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn intern<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        existing: impl Fn(&Kind) -> Option<Arc<T>>,
        create: impl FnOnce() -> (Arc<T>, Kind),
        help: &str,
    ) -> Arc<T> {
        let owned: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut entries = self.entries.lock().expect("registry poisoned");
        for e in entries.iter() {
            if e.name == name && e.labels == owned {
                return existing(&e.kind).unwrap_or_else(|| {
                    panic!("metric '{name}' re-registered with a different kind")
                });
            }
        }
        let (handle, kind) = create();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: owned,
            kind,
        });
        handle
    }

    /// Register (or fetch) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.intern(
            name,
            labels,
            |k| match k {
                Kind::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (Arc::clone(&c), Kind::Counter(c))
            },
            help,
        )
    }

    /// Register (or fetch) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.intern(
            name,
            labels,
            |k| match k {
                Kind::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (Arc::clone(&g), Kind::Gauge(g))
            },
            help,
        )
    }

    /// Register (or fetch) a histogram series. The handle shares the
    /// registry's enabled flag.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        unit: Unit,
    ) -> Arc<Histogram> {
        let enabled = Arc::clone(&self.enabled);
        self.intern(
            name,
            labels,
            |k| match k {
                Kind::Histogram(h, _) => Some(Arc::clone(h)),
                _ => None,
            },
            move || {
                let h = Arc::new(Histogram::with_gate(enabled));
                (Arc::clone(&h), Kind::Histogram(h, unit))
            },
            help,
        )
    }

    /// Snapshot one histogram series by `(name, labels)`, if present.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        let entries = self.entries.lock().expect("registry poisoned");
        entries
            .iter()
            .find(|e| {
                e.name == name
                    && e.labels.len() == labels.len()
                    && e.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .and_then(|e| match &e.kind {
                Kind::Histogram(h, _) => Some(h.snapshot()),
                _ => None,
            })
    }

    /// Every histogram series: `(name, labels, snapshot)`, registration
    /// order — what the wire `stats` frame summarizes.
    pub fn histogram_snapshots(&self) -> Vec<(String, Labels, HistogramSnapshot)> {
        let entries = self.entries.lock().expect("registry poisoned");
        entries
            .iter()
            .filter_map(|e| match &e.kind {
                Kind::Histogram(h, _) => Some((e.name.clone(), e.labels.clone(), h.snapshot())),
                _ => None,
            })
            .collect()
    }

    /// Render every registered series in the Prometheus text exposition
    /// format (version 0.0.4). Series are grouped by metric name
    /// (`# HELP` / `# TYPE` emitted once per name, first registration's
    /// help wins) in registration order; label order is preserved.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if seen.contains(&e.name.as_str()) {
                continue;
            }
            seen.push(&e.name);
            let ty = match &e.kind {
                Kind::Counter(_) => "counter",
                Kind::Gauge(_) => "gauge",
                Kind::Histogram(..) => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n", e.name, escape_help(&e.help)));
            out.push_str(&format!("# TYPE {} {ty}\n", e.name));
            for series in entries.iter().filter(|s| s.name == e.name) {
                render_series(&mut out, series);
            }
        }
        out
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// `{k1="v1",k2="v2"}`, or the empty string without labels. `extra`
/// appends one more pair (the histogram `le` bound).
fn label_block(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn render_series(out: &mut String, e: &Entry) {
    match &e.kind {
        Kind::Counter(c) => {
            out.push_str(&format!(
                "{}{} {}\n",
                e.name,
                label_block(&e.labels, None),
                c.get()
            ));
        }
        Kind::Gauge(g) => {
            out.push_str(&format!(
                "{}{} {}\n",
                e.name,
                label_block(&e.labels, None),
                g.get()
            ));
        }
        Kind::Histogram(h, unit) => {
            let snap = h.snapshot();
            let mut cumulative = 0u64;
            for (i, &n) in snap.buckets.iter().enumerate() {
                cumulative += n;
                // Empty leading/trailing buckets are elided (Prometheus
                // tolerates sparse bucket sets as long as they are
                // cumulative and +Inf closes them); the bucket at the
                // observed max is always emitted so the distribution's
                // edge is visible.
                if n == 0 && cumulative != snap.count {
                    continue;
                }
                let le = histogram::bucket_upper_bound(i);
                let le = match unit {
                    Unit::Nanos => format_f64(le as f64 / 1e9),
                    Unit::Count => format!("{le}"),
                };
                out.push_str(&format!(
                    "{}_bucket{} {cumulative}\n",
                    e.name,
                    label_block(&e.labels, Some(("le", &le))),
                ));
                if cumulative == snap.count {
                    break;
                }
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                e.name,
                label_block(&e.labels, Some(("le", "+Inf"))),
                snap.count
            ));
            let sum = match unit {
                Unit::Nanos => format_f64(snap.sum as f64 / 1e9),
                Unit::Count => format!("{}", snap.sum),
            };
            out.push_str(&format!(
                "{}_sum{} {sum}\n",
                e.name,
                label_block(&e.labels, None)
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                e.name,
                label_block(&e.labels, None),
                snap.count
            ));
        }
    }
}

/// Plain decimal rendering (Prometheus parses scientific notation too,
/// but fixed decimals are easier on eyeballs and tests).
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record_without_gating() {
        let reg = MetricsRegistry::new();
        assert!(!reg.enabled());
        let c = reg.counter("events_total", "events", &[("view", "a")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("queue_depth", "depth", &[]);
        g.set(7);
        g.add(3);
        g.sub(2);
        assert_eq!(g.get(), 8);
        g.set_max(5);
        assert_eq!(g.get(), 8, "set_max never moves the gauge down");
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn registration_interns_by_name_and_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("c", "help", &[("view", "x")]);
        let b = reg.counter("c", "ignored on re-registration", &[("view", "x")]);
        let other = reg.counter("c", "help", &[("view", "y")]);
        a.inc();
        assert_eq!(b.get(), 1, "same series, same handle");
        assert_eq!(other.get(), 0, "different labels, different series");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics_at_registration() {
        let reg = MetricsRegistry::new();
        reg.counter("m", "h", &[]);
        reg.gauge("m", "h", &[]);
    }

    #[test]
    fn histograms_are_gated_by_the_registry_flag() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "latency", &[], Unit::Nanos);
        assert!(!h.is_enabled());
        h.record(1_000);
        assert_eq!(h.snapshot().count, 0, "disabled: nothing recorded");
        reg.set_enabled(true);
        assert!(h.is_enabled());
        h.record(1_000);
        assert_eq!(h.snapshot().count, 1);
        reg.set_enabled(false);
        h.record(1_000);
        assert_eq!(h.snapshot().count, 1, "switch is immediate");
    }

    #[test]
    fn prometheus_rendering_covers_all_three_kinds() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(true);
        reg.counter("dbt_events_total", "Events ingested", &[("view", "a")])
            .add(10);
        reg.counter("dbt_events_total", "Events ingested", &[("view", "b")])
            .add(2);
        reg.gauge("dbt_queue_depth", "Ingest queue depth", &[])
            .set(3);
        let h = reg.histogram(
            "dbt_apply_seconds",
            "Apply latency",
            &[("path", "event")],
            Unit::Nanos,
        );
        h.record(100); // 100ns
        h.record(3_000_000); // 3ms
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE dbt_events_total counter"), "{text}");
        assert!(text.contains("dbt_events_total{view=\"a\"} 10"), "{text}");
        assert!(text.contains("dbt_events_total{view=\"b\"} 2"), "{text}");
        assert!(text.contains("# TYPE dbt_queue_depth gauge"), "{text}");
        assert!(text.contains("dbt_queue_depth 3"), "{text}");
        assert!(
            text.contains("# TYPE dbt_apply_seconds histogram"),
            "{text}"
        );
        assert!(
            text.contains("dbt_apply_seconds_bucket{path=\"event\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("dbt_apply_seconds_count{path=\"event\"} 2"),
            "{text}"
        );
        // Sum = 3000100ns, rendered in seconds.
        assert!(
            text.contains("dbt_apply_seconds_sum{path=\"event\"} 0.0030001"),
            "{text}"
        );
        // HELP/TYPE once per family even with two series.
        assert_eq!(text.matches("# TYPE dbt_events_total").count(), 1);
    }

    #[test]
    fn histogram_buckets_render_cumulatively() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(true);
        let h = reg.histogram("sizes", "batch sizes", &[], Unit::Count);
        for v in [1u64, 2, 2, 1000] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        // 1 falls in le=2, the 2s in le=4, 1000 in le=1024; cumulative.
        assert!(text.contains("sizes_bucket{le=\"2\"} 1"), "{text}");
        assert!(text.contains("sizes_bucket{le=\"4\"} 3"), "{text}");
        assert!(text.contains("sizes_bucket{le=\"1024\"} 4"), "{text}");
        assert!(text.contains("sizes_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("sizes_sum 1005"), "{text}");
        let inf = text.find("le=\"+Inf\"").unwrap();
        let b1024 = text.find("le=\"1024\"").unwrap();
        assert!(b1024 < inf, "buckets ascend");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("c", "h", &[("q", "say \"hi\"\nback\\slash")])
            .inc();
        let text = reg.render_prometheus();
        assert!(
            text.contains(r#"c{q="say \"hi\"\nback\\slash"} 1"#),
            "{text}"
        );
    }
}
