//! The delta transformation.
//!
//! For an event `±R(a1..ak)` (insert or delete of a single tuple whose
//! fields are named by fresh trigger variables `a1..ak`), `delta(e)` is a
//! calculus expression denoting how the value of `e` changes:
//!
//! * `ΔR(x1..xk) = [x1 = a1] * ... * [xk = ak]`, negated for deletes (so
//!   that self-joins obtain the correct `(-1)·(-1)` sign on the
//!   second-order term),
//! * deltas of constants, value expressions, comparisons and references
//!   to already-materialized maps are zero (maps are maintained by their
//!   own triggers),
//! * `Δ(A·B) = ΔA·B + A·ΔB + ΔA·ΔB` (the discrete product rule — the
//!   second-order term is what makes the transformation exact rather than
//!   an approximation),
//! * `Δ(A+B) = ΔA + ΔB`, `Δ(−A) = −ΔA`, `Δ AggSum(G, e) = AggSum(G, Δe)`,
//! * `Δ Lift(x, e) = Lift(x, e + Δe) − Lift(x, e)` when `Δe ≠ 0`
//!   (likewise for `Exists`).
//!
//! Note the soundness condition on the zero rules: `Δ MapRef = 0` holds
//! because delta statements read maps at their *pre-event* version (each
//! map absorbs the event through its own trigger), and `Δ Lift = 0` for
//! a body with `Δbody = 0` holds only when the body is *static* — it
//! mentions no base relation. Dynamic nested bodies
//! ([`crate::CalcExpr::contains_dynamic_nested`]) are not deltified here;
//! the compiler's materialization hierarchy extracts them into child
//! maps and maintains the enclosing map by an exact retract/rebuild
//! bracket around the children's delta updates (the higher-order delta
//! processing of the VLDB 2012 follow-up paper), with full re-evaluation
//! (`Replace`) retained only as a debug/oracle mode.

use dbtoaster_common::EventKind;

use crate::expr::{CalcExpr, CmpOp, ValExpr, Var};

/// Default trigger-argument variable names for an event on `relation`
/// with the given column names: lower-cased column names, which keeps the
/// generated programs readable (`a`, `b` for an insert into `R(A, B)` as
/// in the paper's Figure 2).
pub fn trigger_args(relation: &str, columns: &[String]) -> Vec<Var> {
    columns
        .iter()
        .map(|c| {
            format!(
                "{}_{}",
                relation.to_ascii_lowercase(),
                c.to_ascii_lowercase()
            )
        })
        .collect()
}

/// Compute the delta of `expr` for a single-tuple event of `kind` on
/// `relation`, whose tuple fields are bound to the trigger variables
/// `args` (one per column, in schema order).
pub fn delta(expr: &CalcExpr, relation: &str, kind: EventKind, args: &[Var]) -> CalcExpr {
    match expr {
        CalcExpr::Val(_) | CalcExpr::Cmp { .. } | CalcExpr::MapRef { .. } => CalcExpr::zero(),
        CalcExpr::Rel { name, vars } => {
            if name != relation {
                return CalcExpr::zero();
            }
            debug_assert_eq!(
                vars.len(),
                args.len(),
                "trigger arity mismatch for relation {relation}"
            );
            let eqs = vars
                .iter()
                .zip(args.iter())
                .map(|(v, a)| CalcExpr::Cmp {
                    op: CmpOp::Eq,
                    left: ValExpr::Var(v.clone()),
                    right: ValExpr::Var(a.clone()),
                })
                .collect();
            let product = CalcExpr::product(eqs);
            match kind {
                EventKind::Insert => product,
                EventKind::Delete => CalcExpr::Neg(Box::new(product)),
            }
        }
        CalcExpr::Sum(terms) => CalcExpr::sum(
            terms
                .iter()
                .map(|t| delta(t, relation, kind, args))
                .collect(),
        ),
        CalcExpr::Neg(e) => {
            let d = delta(e, relation, kind, args);
            if d.is_zero() {
                CalcExpr::zero()
            } else {
                CalcExpr::Neg(Box::new(d))
            }
        }
        CalcExpr::Prod(factors) => delta_product(factors, relation, kind, args),
        CalcExpr::AggSum { group, body } => {
            let d = delta(body, relation, kind, args);
            if d.is_zero() {
                CalcExpr::zero()
            } else {
                CalcExpr::agg_sum(group.clone(), d)
            }
        }
        CalcExpr::Lift { var, body } => {
            let d = delta(body, relation, kind, args);
            if d.is_zero() {
                CalcExpr::zero()
            } else {
                // New lift value minus old lift value.
                CalcExpr::sum(vec![
                    CalcExpr::Lift {
                        var: var.clone(),
                        body: Box::new(CalcExpr::sum(vec![(**body).clone(), d])),
                    },
                    CalcExpr::Neg(Box::new(CalcExpr::Lift {
                        var: var.clone(),
                        body: body.clone(),
                    })),
                ])
            }
        }
        CalcExpr::Exists(body) => {
            let d = delta(body, relation, kind, args);
            if d.is_zero() {
                CalcExpr::zero()
            } else {
                CalcExpr::sum(vec![
                    CalcExpr::Exists(Box::new(CalcExpr::sum(vec![(**body).clone(), d]))),
                    CalcExpr::Neg(Box::new(CalcExpr::Exists(body.clone()))),
                ])
            }
        }
    }
}

/// `Δ(f1 · f2 · ... · fn)` by the discrete product rule, computed
/// recursively as `Δf1·rest + f1·Δrest + Δf1·Δrest`.
fn delta_product(factors: &[CalcExpr], relation: &str, kind: EventKind, args: &[Var]) -> CalcExpr {
    match factors.len() {
        0 => CalcExpr::zero(),
        1 => delta(&factors[0], relation, kind, args),
        _ => {
            let head = &factors[0];
            let rest = &factors[1..];
            let d_head = delta(head, relation, kind, args);
            let rest_expr = CalcExpr::product(rest.to_vec());
            let d_rest = delta_product(rest, relation, kind, args);

            let mut terms = Vec::new();
            if !d_head.is_zero() {
                terms.push(CalcExpr::product(vec![d_head.clone(), rest_expr.clone()]));
            }
            if !d_rest.is_zero() {
                terms.push(CalcExpr::product(vec![head.clone(), d_rest.clone()]));
            }
            if !d_head.is_zero() && !d_rest.is_zero() {
                terms.push(CalcExpr::product(vec![d_head, d_rest]));
            }
            CalcExpr::sum(terms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::EventKind::{Delete, Insert};

    fn rst_body() -> CalcExpr {
        CalcExpr::product(vec![
            CalcExpr::rel("R", vec!["R_A", "R_B"]),
            CalcExpr::rel("S", vec!["S_B", "S_C"]),
            CalcExpr::rel("T", vec!["T_C", "T_D"]),
            CalcExpr::eq_vars("R_B", "S_B"),
            CalcExpr::eq_vars("S_C", "T_C"),
            CalcExpr::Val(ValExpr::var("R_A")),
            CalcExpr::Val(ValExpr::var("T_D")),
        ])
    }

    #[test]
    fn delta_of_an_unrelated_relation_is_zero() {
        let e = CalcExpr::rel("S", vec!["B", "C"]);
        assert!(delta(&e, "R", Insert, &["a".into(), "b".into()]).is_zero());
    }

    #[test]
    fn delta_of_a_relation_atom_is_a_product_of_equalities() {
        let e = CalcExpr::rel("R", vec!["R_A", "R_B"]);
        let d = delta(&e, "R", Insert, &["r_a".into(), "r_b".into()]);
        assert_eq!(d.to_string(), "([R_A = r_a] * [R_B = r_b])");
        let d = delta(&e, "R", Delete, &["r_a".into(), "r_b".into()]);
        assert_eq!(d.to_string(), "-(([R_A = r_a] * [R_B = r_b]))");
    }

    #[test]
    fn delta_of_constants_maps_and_comparisons_is_zero() {
        let args = vec!["x".to_string()];
        assert!(delta(&CalcExpr::constant(5), "R", Insert, &args).is_zero());
        assert!(delta(&CalcExpr::map_ref("Q_D", vec!["B"]), "R", Insert, &args).is_zero());
        assert!(delta(&CalcExpr::eq_vars("X", "Y"), "R", Insert, &args).is_zero());
    }

    #[test]
    fn product_rule_produces_one_first_order_term_for_single_occurrence() {
        // Only R mentions relation R, so ΔR·rest is the only non-zero term.
        let d = delta(&rst_body(), "R", Insert, &["a".into(), "b".into()]);
        match &d {
            CalcExpr::Prod(_) => {}
            CalcExpr::Sum(ts) => panic!("expected a single product term, got {} terms", ts.len()),
            other => panic!("unexpected delta {other}"),
        }
        let s = d.to_string();
        assert!(s.contains("[R_A = a]"));
        assert!(s.contains("S(S_B, S_C)"));
        assert!(
            !s.contains("R(R_A, R_B)"),
            "the R atom must be replaced by equalities: {s}"
        );
    }

    #[test]
    fn self_join_delta_has_second_order_term() {
        // sum over R(x) x R(y): delta has 3 terms including ΔR·ΔR.
        let e = CalcExpr::product(vec![
            CalcExpr::rel("R", vec!["X"]),
            CalcExpr::rel("R", vec!["Y"]),
        ]);
        let d = delta(&e, "R", Insert, &["v".into()]);
        match &d {
            CalcExpr::Sum(ts) => assert_eq!(ts.len(), 3),
            other => panic!("expected 3-term sum, got {other}"),
        }
        // For deletes, the second-order term must be positive: (-1)·(-1).
        let d = delta(&e, "R", Delete, &["v".into()]);
        let s = d.to_string();
        // terms 1 and 2 carry one negation each, term 3 carries two.
        assert_eq!(s.matches("-([").count(), 4, "{s}");
    }

    #[test]
    fn delta_commutes_with_aggsum() {
        let e = CalcExpr::agg_sum(vec!["R_B".into()], rst_body());
        let d = delta(&e, "T", Insert, &["c".into(), "d".into()]);
        match d {
            CalcExpr::AggSum { group, .. } => assert_eq!(group, vec!["R_B".to_string()]),
            other => panic!("expected AggSum, got {other}"),
        }
    }

    #[test]
    fn lift_delta_is_new_minus_old_and_zero_when_body_is_static() {
        let body = CalcExpr::agg_sum(
            vec![],
            CalcExpr::product(vec![
                CalcExpr::rel("BIDS", vec!["P", "V"]),
                CalcExpr::Val(ValExpr::var("V")),
            ]),
        );
        let lift = CalcExpr::Lift {
            var: "total".into(),
            body: Box::new(body),
        };
        let d = delta(&lift, "BIDS", Insert, &["p".into(), "v".into()]);
        match &d {
            CalcExpr::Sum(ts) => {
                assert_eq!(ts.len(), 2);
                assert!(matches!(ts[1], CalcExpr::Neg(_)));
            }
            other => panic!("expected new-minus-old, got {other}"),
        }
        assert!(delta(&lift, "ASKS", Insert, &["p".into(), "v".into()]).is_zero());
    }

    #[test]
    fn trigger_args_are_readable_and_collision_free() {
        let args = trigger_args("R", &["A".into(), "B".into()]);
        assert_eq!(args, vec!["r_a".to_string(), "r_b".to_string()]);
    }
}
