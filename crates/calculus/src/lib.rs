//! The DBToaster *map algebra*: a ring calculus over relations and maps.
//!
//! Section 3 of the paper describes compilation through "a custom query
//! algebra to define map data structures" with roughly seventy
//! simplification rules. This crate implements that algebra:
//!
//! * [`expr`] — the calculus expression language ([`CalcExpr`],
//!   [`ValExpr`]): products and sums of relation atoms, comparisons,
//!   value expressions, map references, `AggSum` aggregation, variable
//!   lifting for nested aggregates and `Exists`,
//! * [`translate`] — translation of analyzed SQL queries into calculus
//!   map definitions,
//! * [`delta`] — the delta transformation for inserts and deletes on base
//!   relations,
//! * [`simplify`] — polynomial normalization, unification of equality
//!   constraints, factorization out of `AggSum`, and the other rewrite
//!   rules that make recursive compilation produce asymptotically simpler
//!   maintenance code,
//! * [`canon`] — canonical forms used to detect map-sharing opportunities
//!   across event handlers.

pub mod canon;
pub mod delta;
pub mod expr;
pub mod simplify;
pub mod translate;

pub use canon::canonical_form;
pub use delta::{delta, trigger_args};
pub use expr::{CalcExpr, CmpOp, ValExpr, Var};
pub use simplify::{simplify, to_polynomial, Polynomial, Term};
pub use translate::{translate_query, AggSpec, QueryCalc, ResultColumn};
