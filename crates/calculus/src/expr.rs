//! The calculus expression language.
//!
//! A [`CalcExpr`] denotes a function from variable bindings to ring values
//! (generalized multiplicities / partial aggregates), exactly like the
//! paper's map algebra:
//!
//! * a relation atom `R(x, y)` is the multiplicity of tuple `(x, y)` in
//!   `R`,
//! * a product is a natural join (multiplicities multiply),
//! * a sum is a union (multiplicities add),
//! * a comparison is a `{0, 1}`-valued filter,
//! * `AggSum(G, e)` sums `e` over all bindings of the variables not in
//!   `G` — i.e. a group-by aggregate with group variables `G`,
//! * `MapRef(m, k)` reads an already-materialized map (a view created by
//!   an earlier compilation step),
//! * `Lift(x, e)` binds variable `x` to the (scalar) value of `e`, which
//!   is how nested aggregates enter predicates,
//! * `Exists(e)` is `1` when `e` evaluates to a non-zero value.
//!
//! [`ValExpr`] is the ordinary arithmetic layer that appears inside
//! aggregates and comparisons.

use dbtoaster_common::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Variables are interned as plain strings; the SQL analyzer guarantees
/// global uniqueness of relation-column variables, and the delta
/// transformation generates fresh trigger-argument names.
pub type Var = String;

/// Comparison operators usable as 0/1-valued calculus factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    /// Evaluate the comparison on concrete values (None ordering, i.e.
    /// NULL, makes every comparison false — SQL semantics).
    pub fn eval(&self, l: &Value, r: &Value) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, l.compare(r)),
            (CmpOp::Eq, Some(Equal))
                | (CmpOp::NotEq, Some(Less | Greater))
                | (CmpOp::Lt, Some(Less))
                | (CmpOp::LtEq, Some(Less | Equal))
                | (CmpOp::Gt, Some(Greater))
                | (CmpOp::GtEq, Some(Greater | Equal))
        )
    }

    /// The comparison with operands swapped.
    pub fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::NotEq => CmpOp::NotEq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        };
        write!(f, "{s}")
    }
}

/// Arithmetic value expressions over variables and constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ValExpr {
    Const(Value),
    Var(Var),
    Add(Vec<ValExpr>),
    Mul(Vec<ValExpr>),
    Neg(Box<ValExpr>),
    Div(Box<ValExpr>, Box<ValExpr>),
}

impl ValExpr {
    pub fn zero() -> ValExpr {
        ValExpr::Const(Value::ZERO)
    }

    pub fn one() -> ValExpr {
        ValExpr::Const(Value::ONE)
    }

    pub fn var(v: impl Into<String>) -> ValExpr {
        ValExpr::Var(v.into())
    }

    /// Collect variables into `out` (deduplicated, insertion ordered).
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            ValExpr::Const(_) => {}
            ValExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            ValExpr::Add(es) | ValExpr::Mul(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
            ValExpr::Neg(e) => e.collect_vars(out),
            ValExpr::Div(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// The set of variables referenced.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut v = Vec::new();
        self.collect_vars(&mut v);
        v.into_iter().collect()
    }

    /// Rename variables according to the mapping (variables not in the
    /// mapping are left alone).
    pub fn rename(&self, mapping: &dyn Fn(&str) -> Option<Var>) -> ValExpr {
        match self {
            ValExpr::Const(v) => ValExpr::Const(v.clone()),
            ValExpr::Var(v) => match mapping(v) {
                Some(nv) => ValExpr::Var(nv),
                None => ValExpr::Var(v.clone()),
            },
            ValExpr::Add(es) => ValExpr::Add(es.iter().map(|e| e.rename(mapping)).collect()),
            ValExpr::Mul(es) => ValExpr::Mul(es.iter().map(|e| e.rename(mapping)).collect()),
            ValExpr::Neg(e) => ValExpr::Neg(Box::new(e.rename(mapping))),
            ValExpr::Div(a, b) => {
                ValExpr::Div(Box::new(a.rename(mapping)), Box::new(b.rename(mapping)))
            }
        }
    }

    /// Constant folding; returns `Some(value)` if the expression contains
    /// no variables.
    pub fn fold_const(&self) -> Option<Value> {
        match self {
            ValExpr::Const(v) => Some(v.clone()),
            ValExpr::Var(_) => None,
            ValExpr::Add(es) => es
                .iter()
                .map(|e| e.fold_const())
                .try_fold(Value::ZERO, |acc, v| v.map(|v| acc.add(&v))),
            ValExpr::Mul(es) => es
                .iter()
                .map(|e| e.fold_const())
                .try_fold(Value::ONE, |acc, v| v.map(|v| acc.mul(&v))),
            ValExpr::Neg(e) => e.fold_const().map(|v| v.neg()),
            ValExpr::Div(a, b) => match (a.fold_const(), b.fold_const()) {
                (Some(a), Some(b)) => Some(a.div(&b)),
                _ => None,
            },
        }
    }

    /// True if this is the constant 1.
    pub fn is_one(&self) -> bool {
        matches!(self.fold_const(), Some(v) if v == Value::ONE)
    }

    /// True if this is the constant 0.
    pub fn is_zero(&self) -> bool {
        matches!(self.fold_const(), Some(v) if v.is_zero())
    }
}

impl fmt::Display for ValExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValExpr::Const(v) => write!(f, "{v}"),
            ValExpr::Var(v) => write!(f, "{v}"),
            ValExpr::Add(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            ValExpr::Mul(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            ValExpr::Neg(e) => write!(f, "-({e})"),
            ValExpr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

/// Ring calculus expressions — the map algebra.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CalcExpr {
    /// A numeric factor (constant, variable or arithmetic over bound
    /// variables).
    Val(ValExpr),
    /// A base relation atom: the multiplicity of the tuple named by
    /// `vars` in relation `name`.
    Rel { name: String, vars: Vec<Var> },
    /// A reference to a materialized map (an in-memory view created by a
    /// previous compilation step): the value stored under key `keys`.
    MapRef { name: String, keys: Vec<Var> },
    /// A `{0,1}`-valued comparison factor.
    Cmp {
        op: CmpOp,
        left: ValExpr,
        right: ValExpr,
    },
    /// Product — generalized natural join.
    Prod(Vec<CalcExpr>),
    /// Sum — generalized union.
    Sum(Vec<CalcExpr>),
    /// Additive inverse.
    Neg(Box<CalcExpr>),
    /// Group-by aggregation: sum the body over all bindings of variables
    /// not listed in `group`.
    AggSum {
        group: Vec<Var>,
        body: Box<CalcExpr>,
    },
    /// Bind `var` to the scalar value of `body` (nested aggregate),
    /// multiplicity 1.
    Lift { var: Var, body: Box<CalcExpr> },
    /// 1 if the body is non-zero, else 0 (EXISTS).
    Exists(Box<CalcExpr>),
}

impl CalcExpr {
    /// The constant 1 (multiplicative identity).
    pub fn one() -> CalcExpr {
        CalcExpr::Val(ValExpr::one())
    }

    /// The constant 0 (additive identity).
    pub fn zero() -> CalcExpr {
        CalcExpr::Val(ValExpr::zero())
    }

    /// A constant factor.
    pub fn constant(v: impl Into<Value>) -> CalcExpr {
        CalcExpr::Val(ValExpr::Const(v.into()))
    }

    /// A relation atom.
    pub fn rel(name: impl Into<String>, vars: Vec<&str>) -> CalcExpr {
        CalcExpr::Rel {
            name: name.into(),
            vars: vars.into_iter().map(|s| s.to_string()).collect(),
        }
    }

    /// A map reference.
    pub fn map_ref(name: impl Into<String>, keys: Vec<&str>) -> CalcExpr {
        CalcExpr::MapRef {
            name: name.into(),
            keys: keys.into_iter().map(|s| s.to_string()).collect(),
        }
    }

    /// An equality comparison between two variables.
    pub fn eq_vars(a: impl Into<String>, b: impl Into<String>) -> CalcExpr {
        CalcExpr::Cmp {
            op: CmpOp::Eq,
            left: ValExpr::Var(a.into()),
            right: ValExpr::Var(b.into()),
        }
    }

    /// Smart product constructor: flattens nested products and drops
    /// multiplicative identities; returns zero if any factor is zero.
    pub fn product(factors: Vec<CalcExpr>) -> CalcExpr {
        let mut out = Vec::new();
        for f in factors {
            match f {
                CalcExpr::Prod(inner) => out.extend(inner),
                CalcExpr::Val(v) if v.is_one() => {}
                other => out.push(other),
            }
        }
        if out
            .iter()
            .any(|f| matches!(f, CalcExpr::Val(v) if v.is_zero()))
        {
            return CalcExpr::zero();
        }
        match out.len() {
            0 => CalcExpr::one(),
            1 => out.pop().unwrap(),
            _ => CalcExpr::Prod(out),
        }
    }

    /// Smart sum constructor: flattens nested sums and drops additive
    /// identities.
    pub fn sum(terms: Vec<CalcExpr>) -> CalcExpr {
        let mut out = Vec::new();
        for t in terms {
            match t {
                CalcExpr::Sum(inner) => out.extend(inner),
                CalcExpr::Val(v) if v.is_zero() => {}
                other => out.push(other),
            }
        }
        match out.len() {
            0 => CalcExpr::zero(),
            1 => out.pop().unwrap(),
            _ => CalcExpr::Sum(out),
        }
    }

    /// Smart aggregation constructor.
    pub fn agg_sum(group: Vec<Var>, body: CalcExpr) -> CalcExpr {
        CalcExpr::AggSum {
            group,
            body: Box::new(body),
        }
    }

    /// True if this expression is syntactically the constant zero.
    pub fn is_zero(&self) -> bool {
        matches!(self, CalcExpr::Val(v) if v.is_zero())
    }

    /// True if this expression is syntactically the constant one.
    pub fn is_one(&self) -> bool {
        matches!(self, CalcExpr::Val(v) if v.is_one())
    }

    /// All variables occurring anywhere in the expression, except those
    /// hidden by an `AggSum` projection (an enclosing context can only see
    /// an `AggSum`'s group variables plus any *parameters* — variables the
    /// body references but does not bind).
    pub fn visible_vars(&self) -> BTreeSet<Var> {
        match self {
            CalcExpr::Val(v) => v.vars(),
            CalcExpr::Rel { vars, .. } => vars.iter().cloned().collect(),
            CalcExpr::MapRef { keys, .. } => keys.iter().cloned().collect(),
            CalcExpr::Cmp { left, right, .. } => {
                let mut s = left.vars();
                s.extend(right.vars());
                s
            }
            CalcExpr::Prod(es) | CalcExpr::Sum(es) => {
                es.iter().flat_map(|e| e.visible_vars()).collect()
            }
            CalcExpr::Neg(e) => e.visible_vars(),
            CalcExpr::AggSum { group, body } => {
                let bound = body.bound_vars();
                let mut vis: BTreeSet<Var> = group.iter().cloned().collect();
                for v in body.visible_vars() {
                    if !bound.contains(&v) {
                        vis.insert(v);
                    }
                }
                vis
            }
            CalcExpr::Lift { var, body } => {
                let mut s = body.visible_vars();
                let bound = body.bound_vars();
                s.retain(|v| !bound.contains(v));
                s.insert(var.clone());
                s
            }
            CalcExpr::Exists(e) => {
                let bound = e.bound_vars();
                e.visible_vars()
                    .into_iter()
                    .filter(|v| !bound.contains(v))
                    .collect()
            }
        }
    }

    /// Every variable mentioned anywhere (including summed-over ones).
    pub fn all_vars(&self) -> BTreeSet<Var> {
        match self {
            CalcExpr::Val(v) => v.vars(),
            CalcExpr::Rel { vars, .. } => vars.iter().cloned().collect(),
            CalcExpr::MapRef { keys, .. } => keys.iter().cloned().collect(),
            CalcExpr::Cmp { left, right, .. } => {
                let mut s = left.vars();
                s.extend(right.vars());
                s
            }
            CalcExpr::Prod(es) | CalcExpr::Sum(es) => {
                es.iter().flat_map(|e| e.all_vars()).collect()
            }
            CalcExpr::Neg(e) => e.all_vars(),
            CalcExpr::AggSum { group, body } => {
                let mut s = body.all_vars();
                s.extend(group.iter().cloned());
                s
            }
            CalcExpr::Lift { var, body } => {
                let mut s = body.all_vars();
                s.insert(var.clone());
                s
            }
            CalcExpr::Exists(e) => e.all_vars(),
        }
    }

    /// Variables *bound* (given bindings) by this expression: relation
    /// atoms bind their columns, map references bind their keys (the
    /// runtime can iterate over slices), lifts bind their variable, and
    /// `AggSum` exposes only its group variables.
    pub fn bound_vars(&self) -> BTreeSet<Var> {
        match self {
            CalcExpr::Val(_) | CalcExpr::Cmp { .. } => BTreeSet::new(),
            CalcExpr::Rel { vars, .. } => vars.iter().cloned().collect(),
            CalcExpr::MapRef { keys, .. } => keys.iter().cloned().collect(),
            CalcExpr::Prod(es) | CalcExpr::Sum(es) => {
                es.iter().flat_map(|e| e.bound_vars()).collect()
            }
            CalcExpr::Neg(e) => e.bound_vars(),
            CalcExpr::AggSum { group, .. } => group.iter().cloned().collect(),
            CalcExpr::Lift { var, .. } => std::iter::once(var.clone()).collect(),
            CalcExpr::Exists(_) => BTreeSet::new(),
        }
    }

    /// Names of base relations mentioned anywhere in the expression.
    pub fn relations(&self) -> BTreeSet<String> {
        match self {
            CalcExpr::Rel { name, .. } => std::iter::once(name.clone()).collect(),
            CalcExpr::Val(_) | CalcExpr::Cmp { .. } | CalcExpr::MapRef { .. } => BTreeSet::new(),
            CalcExpr::Prod(es) | CalcExpr::Sum(es) => {
                es.iter().flat_map(|e| e.relations()).collect()
            }
            CalcExpr::Neg(e) => e.relations(),
            CalcExpr::AggSum { body, .. } => body.relations(),
            CalcExpr::Lift { body, .. } => body.relations(),
            CalcExpr::Exists(e) => e.relations(),
        }
    }

    /// Names of materialized maps referenced anywhere in the expression.
    pub fn map_refs(&self) -> BTreeSet<String> {
        match self {
            CalcExpr::MapRef { name, .. } => std::iter::once(name.clone()).collect(),
            CalcExpr::Val(_) | CalcExpr::Cmp { .. } | CalcExpr::Rel { .. } => BTreeSet::new(),
            CalcExpr::Prod(es) | CalcExpr::Sum(es) => {
                es.iter().flat_map(|e| e.map_refs()).collect()
            }
            CalcExpr::Neg(e) => e.map_refs(),
            CalcExpr::AggSum { body, .. } => body.map_refs(),
            CalcExpr::Lift { body, .. } => body.map_refs(),
            CalcExpr::Exists(e) => e.map_refs(),
        }
    }

    /// Visit every map reference (name + key variables) in the
    /// expression, in syntactic order. Unlike [`CalcExpr::map_refs`] this
    /// surfaces the *key lists*, which per-call-site analyses (e.g. the
    /// compiler's partition-key pass) need: the same map can be referenced
    /// with different keys at different sites.
    pub fn for_each_map_ref(&self, f: &mut dyn FnMut(&str, &[Var])) {
        match self {
            CalcExpr::MapRef { name, keys } => f(name, keys),
            CalcExpr::Val(_) | CalcExpr::Cmp { .. } | CalcExpr::Rel { .. } => {}
            CalcExpr::Prod(es) | CalcExpr::Sum(es) => {
                for e in es {
                    e.for_each_map_ref(f);
                }
            }
            CalcExpr::Neg(e) => e.for_each_map_ref(f),
            CalcExpr::AggSum { body, .. } => body.for_each_map_ref(f),
            CalcExpr::Lift { body, .. } => body.for_each_map_ref(f),
            CalcExpr::Exists(e) => e.for_each_map_ref(f),
        }
    }

    /// True if the expression mentions at least one base relation atom.
    pub fn has_relations(&self) -> bool {
        !self.relations().is_empty()
    }

    /// Rename variables throughout the expression. Group lists, relation
    /// columns, map keys and lift variables are renamed too; the caller is
    /// responsible for avoiding capture (all callers rename to globally
    /// fresh names or unify provably-equal variables).
    pub fn rename(&self, mapping: &dyn Fn(&str) -> Option<Var>) -> CalcExpr {
        let rn = |v: &Var| mapping(v).unwrap_or_else(|| v.clone());
        match self {
            CalcExpr::Val(v) => CalcExpr::Val(v.rename(mapping)),
            CalcExpr::Rel { name, vars } => CalcExpr::Rel {
                name: name.clone(),
                vars: vars.iter().map(rn).collect(),
            },
            CalcExpr::MapRef { name, keys } => CalcExpr::MapRef {
                name: name.clone(),
                keys: keys.iter().map(rn).collect(),
            },
            CalcExpr::Cmp { op, left, right } => CalcExpr::Cmp {
                op: *op,
                left: left.rename(mapping),
                right: right.rename(mapping),
            },
            CalcExpr::Prod(es) => CalcExpr::Prod(es.iter().map(|e| e.rename(mapping)).collect()),
            CalcExpr::Sum(es) => CalcExpr::Sum(es.iter().map(|e| e.rename(mapping)).collect()),
            CalcExpr::Neg(e) => CalcExpr::Neg(Box::new(e.rename(mapping))),
            CalcExpr::AggSum { group, body } => CalcExpr::AggSum {
                group: group.iter().map(rn).collect(),
                body: Box::new(body.rename(mapping)),
            },
            CalcExpr::Lift { var, body } => CalcExpr::Lift {
                var: rn(var),
                body: Box::new(body.rename(mapping)),
            },
            CalcExpr::Exists(e) => CalcExpr::Exists(Box::new(e.rename(mapping))),
        }
    }

    /// Substitute a single variable by another variable everywhere.
    pub fn substitute_var(&self, from: &str, to: &str) -> CalcExpr {
        self.rename(&|v| {
            if v == from {
                Some(to.to_string())
            } else {
                None
            }
        })
    }

    /// True if the expression contains a *dynamic* nested construct: a
    /// `Lift` or `Exists` whose body mentions at least one base relation
    /// (a correlated or uncorrelated subquery over the update stream).
    ///
    /// The delta transformation is exact for such expressions only if
    /// their inner aggregates are re-evaluated (the `Replace` legacy
    /// path) or recursively materialized (the hierarchy path): a plain
    /// delta would treat the inner aggregate as a constant. Static
    /// nested constructs — `Lift`s binding arithmetic over already-bound
    /// variables, as produced for `MIN`/`MAX` of expressions — have zero
    /// delta and need no special handling.
    pub fn contains_dynamic_nested(&self) -> bool {
        match self {
            // `has_relations` recurses through nested constructs, so a
            // dynamic construct anywhere inside the body is covered.
            CalcExpr::Lift { body, .. } | CalcExpr::Exists(body) => body.has_relations(),
            CalcExpr::Val(_)
            | CalcExpr::Rel { .. }
            | CalcExpr::MapRef { .. }
            | CalcExpr::Cmp { .. } => false,
            CalcExpr::Prod(es) | CalcExpr::Sum(es) => {
                es.iter().any(CalcExpr::contains_dynamic_nested)
            }
            CalcExpr::Neg(e) => e.contains_dynamic_nested(),
            CalcExpr::AggSum { body, .. } => body.contains_dynamic_nested(),
        }
    }

    /// Number of nodes — used as a crude "generated code size" metric for
    /// the profiling experiment (E5) and for regression tests on
    /// simplification effectiveness.
    pub fn size(&self) -> usize {
        1 + match self {
            CalcExpr::Val(_)
            | CalcExpr::Rel { .. }
            | CalcExpr::MapRef { .. }
            | CalcExpr::Cmp { .. } => 0,
            CalcExpr::Prod(es) | CalcExpr::Sum(es) => es.iter().map(|e| e.size()).sum(),
            CalcExpr::Neg(e) => e.size(),
            CalcExpr::AggSum { body, .. } => body.size(),
            CalcExpr::Lift { body, .. } => body.size(),
            CalcExpr::Exists(e) => e.size(),
        }
    }
}

impl fmt::Display for CalcExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalcExpr::Val(v) => write!(f, "{v}"),
            CalcExpr::Rel { name, vars } => write!(f, "{name}({})", vars.join(", ")),
            CalcExpr::MapRef { name, keys } => write!(f, "{name}[{}]", keys.join(", ")),
            CalcExpr::Cmp { op, left, right } => write!(f, "[{left} {op} {right}]"),
            CalcExpr::Prod(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            CalcExpr::Sum(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            CalcExpr::Neg(e) => write!(f, "-({e})"),
            CalcExpr::AggSum { group, body } => {
                write!(f, "AggSum([{}], {body})", group.join(", "))
            }
            CalcExpr::Lift { var, body } => write!(f, "({var} := {body})"),
            CalcExpr::Exists(e) => write!(f, "Exists({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CalcExpr {
        // AggSum([], R(A,B) * S(B,C) * T(C,D) * A * D)
        CalcExpr::agg_sum(
            vec![],
            CalcExpr::product(vec![
                CalcExpr::rel("R", vec!["A", "B"]),
                CalcExpr::rel("S", vec!["B", "C"]),
                CalcExpr::rel("T", vec!["C", "D"]),
                CalcExpr::Val(ValExpr::var("A")),
                CalcExpr::Val(ValExpr::var("D")),
            ]),
        )
    }

    #[test]
    fn smart_constructors_flatten_and_prune() {
        let p = CalcExpr::product(vec![
            CalcExpr::one(),
            CalcExpr::Prod(vec![CalcExpr::rel("R", vec!["X"]), CalcExpr::one()]),
            CalcExpr::Val(ValExpr::var("Y")),
        ]);
        match &p {
            CalcExpr::Prod(fs) => assert_eq!(fs.len(), 3), // R, 1 (from inner), Y — inner 1 kept? no
            other => panic!("expected product, got {other}"),
        }
        // zero annihilates
        let z = CalcExpr::product(vec![CalcExpr::rel("R", vec!["X"]), CalcExpr::zero()]);
        assert!(z.is_zero());
        // sums drop zeros and flatten
        let s = CalcExpr::sum(vec![
            CalcExpr::zero(),
            sample(),
            CalcExpr::Sum(vec![CalcExpr::one()]),
        ]);
        match s {
            CalcExpr::Sum(ts) => assert_eq!(ts.len(), 2),
            other => panic!("expected sum, got {other}"),
        }
    }

    #[test]
    fn variable_classification() {
        let e = sample();
        let all = e.all_vars();
        assert!(all.contains("A") && all.contains("D"));
        // Nothing escapes an AggSum over the empty group when the body
        // binds every variable it uses.
        assert!(e.visible_vars().is_empty());
        // The body itself binds A..D through its relation atoms.
        if let CalcExpr::AggSum { body, .. } = &e {
            let b = body.bound_vars();
            assert_eq!(b.len(), 4);
        } else {
            panic!();
        }
    }

    #[test]
    fn correlated_parameters_stay_visible_through_aggsum() {
        // AggSum([], BIDS(P2, V2) * [P2 > P1] * V2) — P1 is a parameter.
        let e = CalcExpr::agg_sum(
            vec![],
            CalcExpr::product(vec![
                CalcExpr::rel("BIDS", vec!["P2", "V2"]),
                CalcExpr::Cmp {
                    op: CmpOp::Gt,
                    left: ValExpr::var("P2"),
                    right: ValExpr::var("P1"),
                },
                CalcExpr::Val(ValExpr::var("V2")),
            ]),
        );
        let vis = e.visible_vars();
        assert!(vis.contains("P1"));
        assert!(!vis.contains("P2"));
    }

    #[test]
    fn relations_and_maps_are_reported() {
        let e = CalcExpr::product(vec![sample(), CalcExpr::map_ref("Q_D", vec!["B"])]);
        assert_eq!(e.relations().len(), 3);
        assert_eq!(e.map_refs().len(), 1);
        assert!(e.has_relations());
    }

    #[test]
    fn renaming_reaches_every_position() {
        let e = sample().substitute_var("B", "BT");
        let s = e.to_string();
        assert!(s.contains("R(A, BT)"));
        assert!(s.contains("S(BT, C)"));
        assert!(!e.all_vars().contains("B"));
    }

    #[test]
    fn display_matches_paper_notation() {
        let e = sample();
        assert_eq!(
            e.to_string(),
            "AggSum([], (R(A, B) * S(B, C) * T(C, D) * A * D))"
        );
    }

    #[test]
    fn cmp_eval_covers_all_operators() {
        let two = Value::Int(2);
        let three = Value::Int(3);
        assert!(CmpOp::Lt.eval(&two, &three));
        assert!(CmpOp::LtEq.eval(&two, &two));
        assert!(CmpOp::Gt.eval(&three, &two));
        assert!(CmpOp::GtEq.eval(&three, &three));
        assert!(CmpOp::Eq.eval(&two, &two));
        assert!(CmpOp::NotEq.eval(&two, &three));
        assert!(!CmpOp::Eq.eval(&Value::Null, &Value::Null));
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
    }

    #[test]
    fn val_expr_constant_folding() {
        let e = ValExpr::Mul(vec![
            ValExpr::Const(Value::Int(3)),
            ValExpr::Add(vec![
                ValExpr::Const(Value::Int(1)),
                ValExpr::Const(Value::Int(4)),
            ]),
        ]);
        assert_eq!(e.fold_const(), Some(Value::Int(15)));
        let with_var = ValExpr::Mul(vec![ValExpr::var("X"), ValExpr::Const(Value::Int(2))]);
        assert_eq!(with_var.fold_const(), None);
    }

    #[test]
    fn size_counts_nodes() {
        assert!(sample().size() >= 6);
        assert_eq!(CalcExpr::one().size(), 1);
    }
}
