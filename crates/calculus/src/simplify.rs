//! Simplification — the "map algebra rules".
//!
//! The paper describes a rule set of roughly seventy simplifications used
//! to reduce delta expressions to asymptotically simpler maintenance
//! code. This module implements the rule families that carry that weight:
//!
//! 1. **Polynomial normalization** — flatten sums/products, distribute
//!    products over sums, fold constants, fold signs, drop zero terms and
//!    unit factors (rules for `0·x`, `1·x`, `x+0`, `−(−x)`, ...).
//! 2. **Equality unification** — inside a product, `[x = y]` with `x` not
//!    protected (not a group variable, trigger argument or output key) is
//!    eliminated by renaming `x := y` everywhere in the term; constant
//!    comparisons are decided; tautologies `[x = x]` vanish; contradictory
//!    constant comparisons annihilate the term.
//! 3. **`AggSum` factorization** — factors that do not depend on the
//!    summed-over variables are pulled out of the aggregation (this is the
//!    rewrite that turns `Δq = sum_{A·D}({⟨a,b⟩} ⋈ S ⋈ T)` into
//!    `a · sum_D(σ_{B=b}(S) ⋈ T)` in the paper's Section 3), `AggSum`
//!    distributes over sums, and an `AggSum` that no longer sums over
//!    anything is eliminated.
//! 4. **Nested-structure simplification** — bodies of `Lift`, `Exists`
//!    and nested `AggSum` are simplified recursively; lifts of constants
//!    become value bindings usable by later rules.
//!
//! The central entry points are [`to_polynomial`], which normalizes an
//! expression into a sum of flat product terms (what the compiler's
//! materializer consumes), and [`simplify`], which rebuilds a calculus
//! expression from that normal form.

use std::collections::BTreeSet;

use dbtoaster_common::Value;
use serde::{Deserialize, Serialize};

use crate::expr::{CalcExpr, CmpOp, ValExpr, Var};

/// One product term of the polynomial normal form: a numeric coefficient
/// times a list of atomic factors (relation atoms, map references,
/// comparisons, value expressions, nested aggregations, lifts, exists).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Term {
    pub coeff: Value,
    pub factors: Vec<CalcExpr>,
}

impl Term {
    /// The multiplicative unit.
    pub fn unit() -> Term {
        Term {
            coeff: Value::ONE,
            factors: Vec::new(),
        }
    }

    fn from_factor(f: CalcExpr) -> Term {
        Term {
            coeff: Value::ONE,
            factors: vec![f],
        }
    }

    /// Term product: coefficients multiply, factor lists concatenate.
    pub fn multiply(&self, other: &Term) -> Term {
        Term {
            coeff: self.coeff.mul(&other.coeff),
            factors: self
                .factors
                .iter()
                .chain(other.factors.iter())
                .cloned()
                .collect(),
        }
    }

    /// True if the coefficient annihilates the term.
    pub fn is_zero(&self) -> bool {
        self.coeff.is_zero()
    }

    /// All variables mentioned by the term's factors.
    pub fn all_vars(&self) -> BTreeSet<Var> {
        self.factors.iter().flat_map(|f| f.all_vars()).collect()
    }

    /// Rebuild a calculus expression for this term.
    pub fn to_expr(&self) -> CalcExpr {
        let mut factors = Vec::new();
        if self.coeff != Value::ONE {
            factors.push(CalcExpr::Val(ValExpr::Const(self.coeff.clone())));
        }
        factors.extend(self.factors.iter().cloned());
        CalcExpr::product(factors)
    }
}

/// Sum-of-products normal form.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Polynomial {
    pub terms: Vec<Term>,
}

impl Polynomial {
    pub fn zero() -> Polynomial {
        Polynomial { terms: Vec::new() }
    }

    fn single(term: Term) -> Polynomial {
        if term.is_zero() {
            Polynomial::zero()
        } else {
            Polynomial { terms: vec![term] }
        }
    }

    fn add(mut self, other: Polynomial) -> Polynomial {
        self.terms.extend(other.terms);
        self
    }

    fn multiply(&self, other: &Polynomial) -> Polynomial {
        let mut out = Vec::new();
        for a in &self.terms {
            for b in &other.terms {
                let t = a.multiply(b);
                if !t.is_zero() {
                    out.push(t);
                }
            }
        }
        Polynomial { terms: out }
    }

    fn negate(mut self) -> Polynomial {
        for t in &mut self.terms {
            t.coeff = t.coeff.neg();
        }
        self
    }

    /// Rebuild a calculus expression (a sum of product terms).
    pub fn to_expr(&self) -> CalcExpr {
        CalcExpr::sum(self.terms.iter().map(Term::to_expr).collect())
    }

    /// True if the polynomial has no terms.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Normalize `expr` into polynomial form, treating the variables in
/// `protected` as externally bound (trigger arguments, target-map keys):
/// they are never eliminated by equality unification and never count as
/// summed-over.
pub fn to_polynomial(expr: &CalcExpr, protected: &BTreeSet<Var>) -> Polynomial {
    let poly = normalize(expr, protected);
    let mut out = Vec::new();
    for term in poly.terms {
        if let Some(t) = simplify_term(term, protected) {
            if !t.is_zero() {
                out.push(t);
            }
        }
    }
    Polynomial { terms: out }
}

/// Simplify an expression and rebuild it (convenience wrapper around
/// [`to_polynomial`]).
pub fn simplify(expr: &CalcExpr, protected: &BTreeSet<Var>) -> CalcExpr {
    to_polynomial(expr, protected).to_expr()
}

// ---------------------------------------------------------------------
// normalization
// ---------------------------------------------------------------------

fn normalize(expr: &CalcExpr, protected: &BTreeSet<Var>) -> Polynomial {
    match expr {
        CalcExpr::Val(v) => {
            // Expand the arithmetic into a sum of monomials so that, e.g.,
            // sum(b.VOLUME * (b.PRICE - a.PRICE)) splits into two terms
            // whose trigger-variable parts can be factored out of the
            // aggregation independently (otherwise the materializer would
            // have to key a map on a variable with an unbounded domain).
            let mut terms = Vec::new();
            for (coeff, factors) in expand_val(v) {
                if coeff.is_zero() {
                    continue;
                }
                terms.push(Term {
                    coeff,
                    factors: factors.into_iter().map(CalcExpr::Val).collect(),
                });
            }
            Polynomial { terms }
        }
        CalcExpr::Rel { .. } | CalcExpr::MapRef { .. } => {
            Polynomial::single(Term::from_factor(expr.clone()))
        }
        CalcExpr::Cmp { op, left, right } => match (left.fold_const(), right.fold_const()) {
            (Some(l), Some(r)) => {
                if op.eval(&l, &r) {
                    Polynomial::single(Term::unit())
                } else {
                    Polynomial::zero()
                }
            }
            _ => Polynomial::single(Term::from_factor(expr.clone())),
        },
        CalcExpr::Neg(e) => normalize(e, protected).negate(),
        CalcExpr::Sum(es) => es.iter().fold(Polynomial::zero(), |acc, e| {
            acc.add(normalize(e, protected))
        }),
        CalcExpr::Prod(es) => {
            let mut acc = Polynomial::single(Term::unit());
            for e in es {
                let p = normalize(e, protected);
                acc = acc.multiply(&p);
                if acc.is_zero() {
                    return acc;
                }
            }
            acc
        }
        CalcExpr::AggSum { group, body } => normalize_aggsum(group, body, protected),
        CalcExpr::Lift { var, body } => {
            let inner = simplify(body, protected);
            Polynomial::single(Term::from_factor(CalcExpr::Lift {
                var: var.clone(),
                body: Box::new(inner),
            }))
        }
        CalcExpr::Exists(body) => {
            let inner = simplify(body, protected);
            if inner.is_zero() {
                Polynomial::zero()
            } else if !inner.has_relations()
                && inner.map_refs().is_empty()
                && inner.all_vars().is_empty()
            {
                // A constant, non-zero body: EXISTS is identically 1.
                Polynomial::single(Term::unit())
            } else {
                Polynomial::single(Term::from_factor(CalcExpr::Exists(Box::new(inner))))
            }
        }
    }
}

fn normalize_aggsum(group: &[Var], body: &CalcExpr, protected: &BTreeSet<Var>) -> Polynomial {
    // Inside the aggregation, group variables behave like externally
    // bound variables: they survive to the outside.
    let mut inner_protected = protected.clone();
    inner_protected.extend(group.iter().cloned());

    let body_poly = to_polynomial(body, &inner_protected);

    let mut out = Polynomial::zero();
    for term in body_poly.terms {
        // Partition the factors of this term into those that can be pulled
        // out of the aggregation and those that must stay inside.
        let summed: BTreeSet<Var> = term
            .factors
            .iter()
            .flat_map(|f| f.bound_vars())
            .filter(|v| !inner_protected.contains(v))
            .collect();

        let mut pulled = Vec::new();
        let mut inside = Vec::new();
        for f in term.factors {
            let pullable = matches!(f, CalcExpr::Val(_) | CalcExpr::Cmp { .. })
                && f.all_vars().iter().all(|v| !summed.contains(v));
            if pullable {
                pulled.push(f);
            } else {
                inside.push(f);
            }
        }

        // Product decomposition: factors that do not share any summed-over
        // variable aggregate independently, so the remaining body splits
        // into connected components (this is the rewrite that eliminates
        // the join on an insert into S in the paper's example: the delta
        // becomes sum_A(σ_{B=b}R) · sum_D(σ_{C=c}T)). Components with no
        // summed-over variables need no aggregation at all.
        let mut factors = pulled;
        for component in connected_components(inside, &summed) {
            let comp_summed: BTreeSet<Var> = component
                .iter()
                .flat_map(|f| f.bound_vars())
                .filter(|v| !inner_protected.contains(v))
                .collect();
            if comp_summed.is_empty() {
                factors.extend(component);
            } else {
                // Keep only the group variables that this component
                // actually mentions; the others are constant over it.
                let body_expr = CalcExpr::product(component);
                let body_vars = body_expr.all_vars();
                let kept_group: Vec<Var> = group
                    .iter()
                    .filter(|g| body_vars.contains(*g))
                    .cloned()
                    .collect();
                factors.push(CalcExpr::AggSum {
                    group: kept_group,
                    body: Box::new(body_expr),
                });
            }
        }
        out = out.add(Polynomial::single(Term {
            coeff: term.coeff,
            factors,
        }));
    }
    out
}

/// Expand a value expression into a sum of monomials: each entry is a
/// numeric coefficient and a list of Add-free factor expressions.
/// Division is kept opaque (not distributed).
fn expand_val(v: &ValExpr) -> Vec<(Value, Vec<ValExpr>)> {
    match v {
        ValExpr::Const(c) => vec![(c.clone(), vec![])],
        ValExpr::Var(x) => vec![(Value::ONE, vec![ValExpr::Var(x.clone())])],
        ValExpr::Neg(e) => expand_val(e)
            .into_iter()
            .map(|(c, fs)| (c.neg(), fs))
            .collect(),
        ValExpr::Add(es) => es.iter().flat_map(expand_val).collect(),
        ValExpr::Mul(es) => {
            let mut acc: Vec<(Value, Vec<ValExpr>)> = vec![(Value::ONE, vec![])];
            for e in es {
                let expanded = expand_val(e);
                let mut next = Vec::with_capacity(acc.len() * expanded.len());
                for (c1, f1) in &acc {
                    for (c2, f2) in &expanded {
                        let mut fs = f1.clone();
                        fs.extend(f2.iter().cloned());
                        next.push((c1.mul(c2), fs));
                    }
                }
                acc = next;
            }
            acc
        }
        ValExpr::Div(a, b) => vec![(Value::ONE, vec![ValExpr::Div(a.clone(), b.clone())])],
    }
}

/// Group factors into connected components, where two factors are
/// connected when they share a summed-over variable.
fn connected_components(factors: Vec<CalcExpr>, summed: &BTreeSet<Var>) -> Vec<Vec<CalcExpr>> {
    let n = factors.len();
    let var_sets: Vec<BTreeSet<Var>> = factors
        .iter()
        .map(|f| {
            f.all_vars()
                .into_iter()
                .filter(|v| summed.contains(v))
                .collect()
        })
        .collect();
    let mut component: Vec<usize> = (0..n).collect();

    fn find(component: &mut Vec<usize>, i: usize) -> usize {
        if component[i] != i {
            let root = find(component, component[i]);
            component[i] = root;
        }
        component[i]
    }

    for i in 0..n {
        for j in (i + 1)..n {
            if !var_sets[i].is_disjoint(&var_sets[j]) {
                let (ri, rj) = (find(&mut component, i), find(&mut component, j));
                if ri != rj {
                    component[rj] = ri;
                }
            }
        }
    }

    let mut groups: Vec<(usize, Vec<CalcExpr>)> = Vec::new();
    for (i, f) in factors.into_iter().enumerate() {
        let root = find(&mut component, i);
        match groups.iter_mut().find(|(r, _)| *r == root) {
            Some((_, g)) => g.push(f),
            None => groups.push((root, vec![f])),
        }
    }
    groups.into_iter().map(|(_, g)| g).collect()
}

// ---------------------------------------------------------------------
// per-term simplification: equality unification
// ---------------------------------------------------------------------

/// Apply equality unification and constant decision to one term.
/// Returns `None` if the term is annihilated by a contradictory
/// comparison.
fn simplify_term(mut term: Term, protected: &BTreeSet<Var>) -> Option<Term> {
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < term.factors.len() {
            let action = classify_equality(&term.factors[i], protected);
            match action {
                EqAction::Keep => i += 1,
                EqAction::Drop => {
                    term.factors.remove(i);
                    changed = true;
                }
                EqAction::Annihilate => return None,
                EqAction::Rename { from, to } => {
                    term.factors.remove(i);
                    for f in &mut term.factors {
                        *f = f.substitute_var(&from, &to);
                    }
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Fold constant-valued Val factors into the coefficient.
    let mut coeff = term.coeff.clone();
    let mut factors = Vec::with_capacity(term.factors.len());
    for f in term.factors {
        match &f {
            CalcExpr::Val(v) => match v.fold_const() {
                Some(c) if c.is_zero() => return None,
                Some(c) => coeff = coeff.mul(&c),
                None => factors.push(f),
            },
            _ => factors.push(f),
        }
    }
    if coeff.is_zero() {
        return None;
    }
    Some(Term { coeff, factors })
}

enum EqAction {
    Keep,
    Drop,
    Annihilate,
    Rename { from: Var, to: Var },
}

fn classify_equality(factor: &CalcExpr, protected: &BTreeSet<Var>) -> EqAction {
    let CalcExpr::Cmp { op, left, right } = factor else {
        return EqAction::Keep;
    };
    // Constant comparisons are decided immediately (any operator).
    if let (Some(l), Some(r)) = (left.fold_const(), right.fold_const()) {
        return if op.eval(&l, &r) {
            EqAction::Drop
        } else {
            EqAction::Annihilate
        };
    }
    if *op != CmpOp::Eq {
        return EqAction::Keep;
    }
    match (left, right) {
        (ValExpr::Var(x), ValExpr::Var(y)) if x == y => EqAction::Drop,
        (ValExpr::Var(x), ValExpr::Var(y)) => {
            let x_protected = protected.contains(x);
            let y_protected = protected.contains(y);
            if !x_protected {
                EqAction::Rename {
                    from: x.clone(),
                    to: y.clone(),
                }
            } else if !y_protected {
                EqAction::Rename {
                    from: y.clone(),
                    to: x.clone(),
                }
            } else {
                EqAction::Keep
            }
        }
        _ => EqAction::Keep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::EventKind::Insert;

    fn protected(vars: &[&str]) -> BTreeSet<Var> {
        vars.iter().map(|s| s.to_string()).collect()
    }

    /// The paper's query body: AggSum([], R(A,B)*S(B,C)*T(C,D)*[A-join
    /// predicates]*A*D).
    fn figure2_definition() -> CalcExpr {
        CalcExpr::agg_sum(
            vec![],
            CalcExpr::product(vec![
                CalcExpr::rel("R", vec!["R_A", "R_B"]),
                CalcExpr::rel("S", vec!["S_B", "S_C"]),
                CalcExpr::rel("T", vec!["T_C", "T_D"]),
                CalcExpr::eq_vars("R_B", "S_B"),
                CalcExpr::eq_vars("S_C", "T_C"),
                CalcExpr::Val(ValExpr::var("R_A")),
                CalcExpr::Val(ValExpr::var("T_D")),
            ]),
        )
    }

    #[test]
    fn constants_fold_and_zeros_annihilate() {
        let e = CalcExpr::product(vec![
            CalcExpr::constant(3),
            CalcExpr::constant(4),
            CalcExpr::Val(ValExpr::var("X")),
        ]);
        let p = to_polynomial(&e, &protected(&["X"]));
        assert_eq!(p.terms.len(), 1);
        assert_eq!(p.terms[0].coeff, Value::Int(12));
        assert_eq!(p.terms[0].factors.len(), 1);

        let z = CalcExpr::product(vec![CalcExpr::constant(3), CalcExpr::zero()]);
        assert!(to_polynomial(&z, &BTreeSet::new()).is_zero());

        let contradiction = CalcExpr::Cmp {
            op: CmpOp::Eq,
            left: ValExpr::Const(Value::Int(1)),
            right: ValExpr::Const(Value::Int(2)),
        };
        assert!(to_polynomial(&contradiction, &BTreeSet::new()).is_zero());
    }

    #[test]
    fn products_distribute_over_sums() {
        // (a + b) * (c + d) has 4 terms.
        let e = CalcExpr::product(vec![
            CalcExpr::sum(vec![
                CalcExpr::Val(ValExpr::var("A")),
                CalcExpr::Val(ValExpr::var("B")),
            ]),
            CalcExpr::sum(vec![
                CalcExpr::Val(ValExpr::var("C")),
                CalcExpr::Val(ValExpr::var("D")),
            ]),
        ]);
        let p = to_polynomial(&e, &protected(&["A", "B", "C", "D"]));
        assert_eq!(p.terms.len(), 4);
    }

    #[test]
    fn double_negation_cancels() {
        let e = CalcExpr::Neg(Box::new(CalcExpr::Neg(Box::new(CalcExpr::constant(7)))));
        let p = to_polynomial(&e, &BTreeSet::new());
        assert_eq!(p.terms[0].coeff, Value::Int(7));
    }

    #[test]
    fn equality_unification_renames_unprotected_variables() {
        // [X = Y] * R(X) with Y protected: X is renamed to Y.
        let e = CalcExpr::product(vec![
            CalcExpr::eq_vars("X", "Y"),
            CalcExpr::rel("R", vec!["X"]),
        ]);
        let p = to_polynomial(&e, &protected(&["Y"]));
        assert_eq!(p.terms.len(), 1);
        assert_eq!(p.terms[0].factors.len(), 1);
        assert_eq!(p.terms[0].factors[0].to_string(), "R(Y)");
        // Both protected: the comparison survives as a filter.
        let p = to_polynomial(&e, &protected(&["X", "Y"]));
        assert_eq!(p.terms[0].factors.len(), 2);
    }

    #[test]
    fn tautological_equality_disappears() {
        let e = CalcExpr::product(vec![
            CalcExpr::eq_vars("X", "X"),
            CalcExpr::rel("R", vec!["X"]),
        ]);
        let p = to_polynomial(&e, &BTreeSet::new());
        assert_eq!(p.terms[0].factors.len(), 1);
    }

    /// The paper's first derivation: Δq for insert R(a, b) simplifies to
    /// a · AggSum(S(b, C) ⋈ T(C, D) · D) — i.e. `a * qD[b]` once the
    /// aggregation is materialized.
    #[test]
    fn figure2_insert_r_simplifies_to_a_times_a_single_aggregation() {
        let def = figure2_definition();
        let d = crate::delta::delta(&def, "R", Insert, &["a".into(), "b".into()]);
        let p = to_polynomial(&d, &protected(&["a", "b"]));
        assert_eq!(
            p.terms.len(),
            1,
            "expected a single term, got {}",
            p.to_expr()
        );
        let term = &p.terms[0];
        assert_eq!(term.coeff, Value::ONE);
        // Factors: Val(a) pulled out of the aggregation + the residual AggSum.
        assert_eq!(term.factors.len(), 2, "factors: {:?}", term.factors);
        let rendered: Vec<String> = term.factors.iter().map(|f| f.to_string()).collect();
        assert!(rendered.contains(&"a".to_string()), "{rendered:?}");
        let agg = rendered.iter().find(|s| s.starts_with("AggSum")).unwrap();
        assert!(
            agg.contains("S(b, "),
            "S must be restricted to the trigger value b: {agg}"
        );
        assert!(agg.contains("T("), "{agg}");
        assert!(!agg.contains("R("), "the R atom must be gone: {agg}");
    }

    /// The paper's second derivation: Δq for insert S(b, c) splits into
    /// two independent aggregations (no join remains):
    /// sum_A(σ_{B=b}(R)) · sum_D(σ_{C=c}(T)).
    #[test]
    fn figure2_insert_s_eliminates_the_join() {
        let def = figure2_definition();
        let d = crate::delta::delta(&def, "S", Insert, &["s_b".into(), "s_c".into()]);
        let p = to_polynomial(&d, &protected(&["s_b", "s_c"]));
        assert_eq!(p.terms.len(), 1);
        let term = &p.terms[0];
        // One aggregation over R and one over T — the join between them is
        // gone. (They are separate factors of the same product term.)
        let aggs: Vec<&CalcExpr> = term
            .factors
            .iter()
            .filter(|f| matches!(f, CalcExpr::AggSum { .. }))
            .collect();
        assert_eq!(aggs.len(), 2, "factors: {:?}", term.factors);
        let rels: Vec<BTreeSet<String>> = aggs.iter().map(|a| a.relations()).collect();
        assert!(rels.iter().any(|r| r.contains("R") && !r.contains("T")));
        assert!(rels.iter().any(|r| r.contains("T") && !r.contains("R")));
    }

    #[test]
    fn delete_events_produce_negative_coefficients() {
        let def = figure2_definition();
        let d = crate::delta::delta(
            &def,
            "R",
            dbtoaster_common::EventKind::Delete,
            &["a".into(), "b".into()],
        );
        let p = to_polynomial(&d, &protected(&["a", "b"]));
        assert_eq!(p.terms.len(), 1);
        assert_eq!(p.terms[0].coeff, Value::Int(-1));
    }

    #[test]
    fn aggsum_with_nothing_to_sum_disappears() {
        // AggSum([B, C], S(B, C)) keeps the aggregation (B, C are group
        // vars), but AggSum([], [B = b]) where b is protected drops it.
        let e = CalcExpr::agg_sum(
            vec![],
            CalcExpr::Cmp {
                op: CmpOp::Eq,
                left: ValExpr::var("B"),
                right: ValExpr::var("b"),
            },
        );
        let p = to_polynomial(&e, &protected(&["b", "B"]));
        assert_eq!(p.terms.len(), 1);
        assert!(matches!(p.terms[0].factors[0], CalcExpr::Cmp { .. }));
    }

    #[test]
    fn aggsum_distributes_over_sums() {
        let e = CalcExpr::agg_sum(
            vec![],
            CalcExpr::sum(vec![
                CalcExpr::rel("R", vec!["X"]),
                CalcExpr::rel("S", vec!["Y"]),
            ]),
        );
        let p = to_polynomial(&e, &BTreeSet::new());
        assert_eq!(p.terms.len(), 2);
    }

    #[test]
    fn group_variables_are_never_unified_away() {
        // AggSum([C], [C = c] * S(B, C)) where both c (a trigger argument)
        // and C (a target-map key) are protected: C must survive as a
        // group variable, so the equality stays as a key-binding factor.
        let e = CalcExpr::agg_sum(
            vec!["C".into()],
            CalcExpr::product(vec![
                CalcExpr::eq_vars("C", "c"),
                CalcExpr::rel("S", vec!["B", "C"]),
            ]),
        );
        let p = to_polynomial(&e, &protected(&["c", "C"]));
        let s = p.to_expr().to_string();
        assert!(s.contains("[C = c]"), "{s}");
    }

    #[test]
    fn unprotected_group_variables_unify_with_trigger_arguments() {
        // Without C in the protected set, the equality is free to
        // specialize the aggregation to the trigger value.
        let e = CalcExpr::agg_sum(
            vec!["C".into()],
            CalcExpr::product(vec![
                CalcExpr::eq_vars("C", "c"),
                CalcExpr::rel("S", vec!["B", "C"]),
            ]),
        );
        let p = to_polynomial(&e, &protected(&["c"]));
        let s = p.to_expr().to_string();
        assert!(s.contains("S(B, c)"), "{s}");
    }

    #[test]
    fn exists_of_a_nonzero_constant_is_one() {
        let e = CalcExpr::Exists(Box::new(CalcExpr::constant(5)));
        let p = to_polynomial(&e, &BTreeSet::new());
        assert_eq!(p.terms.len(), 1);
        assert!(p.terms[0].factors.is_empty());
        let z = CalcExpr::Exists(Box::new(CalcExpr::zero()));
        assert!(to_polynomial(&z, &BTreeSet::new()).is_zero());
    }

    #[test]
    fn simplified_expression_size_shrinks() {
        let def = figure2_definition();
        let d = crate::delta::delta(&def, "R", Insert, &["a".into(), "b".into()]);
        let s = simplify(&d, &protected(&["a", "b"]));
        assert!(s.size() < d.size(), "{} !< {}", s.size(), d.size());
    }
}
