//! Translation of analyzed SQL queries into calculus map definitions.
//!
//! A bound query
//!
//! ```sql
//! SELECT g1, ..., gk, sum(f), count(*), ...
//! FROM   R1 a1, ..., Rn an
//! WHERE  p
//! GROUP BY g1, ..., gk
//! ```
//!
//! becomes, per aggregate, one *top-level map definition*
//!
//! ```text
//! Q_agg[g1..gk] := AggSum([g1..gk], R1(...) * ... * Rn(...) * ⟦p⟧ * ⟦f⟧)
//! ```
//!
//! where `⟦p⟧` is the predicate translated into 0/1-valued calculus
//! factors (conjunction → product, disjunction → inclusion–exclusion,
//! negation → `1 − p`, scalar subqueries → `Lift`, `EXISTS` → `Exists`)
//! and `⟦f⟧` is the aggregated value expression. `AVG` produces a
//! sum-map/count-map pair combined at result-access time; `MIN`/`MAX`
//! produce a *support map* keyed by the aggregated column whose extrema
//! are read lazily (see `ResultColumn::Extremum`).

use dbtoaster_common::{Error, Result};
use dbtoaster_sql::{AggKind, BoundAgg, BoundExpr, BoundQuery, BoundSelectItem};
use serde::{Deserialize, Serialize};

use crate::expr::{CalcExpr, CmpOp, ValExpr, Var};

/// A map that must be materialized and maintained for the query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggSpec {
    /// Map name (`Q`, `Q_PROFIT`, `Q_PROFIT_CNT`, ...).
    pub name: String,
    /// Key variables, in order.
    pub keys: Vec<Var>,
    /// Calculus definition: `AggSum(keys, body)`.
    pub definition: CalcExpr,
}

/// How one output column of the standing query is computed from the
/// maintained maps when a client reads the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResultColumn {
    /// A group-by column: the i-th key of the result maps.
    Group { name: String, var: Var },
    /// A `SUM`/`COUNT` aggregate read directly from `map`.
    Sum { name: String, map: String },
    /// `AVG` = `sum_map[k] / count_map[k]`.
    Avg {
        name: String,
        sum_map: String,
        count_map: String,
    },
    /// `MIN`/`MAX` read from a support map keyed by `group ++ [value]`:
    /// the extremum over entries with positive multiplicity.
    Extremum {
        name: String,
        map: String,
        is_min: bool,
    },
}

impl ResultColumn {
    /// The output column name.
    pub fn name(&self) -> &str {
        match self {
            ResultColumn::Group { name, .. }
            | ResultColumn::Sum { name, .. }
            | ResultColumn::Avg { name, .. }
            | ResultColumn::Extremum { name, .. } => name,
        }
    }
}

/// The calculus-level form of a standing query: what to materialize and
/// how to assemble results from the materialized maps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryCalc {
    /// Group-by variables (the key of every top-level map except extremum
    /// support maps, which append the aggregated column).
    pub group_vars: Vec<Var>,
    /// Output columns in `SELECT` order.
    pub columns: Vec<ResultColumn>,
    /// Top-level maps to compile and maintain.
    pub maps: Vec<AggSpec>,
    /// Base relations referenced by the query: `(name, column vars,
    /// is_static)` per instance, for trigger enumeration.
    pub relations: Vec<(String, Vec<Var>, bool)>,
}

/// Translate a bound query into calculus map definitions.
pub fn translate_query(query: &BoundQuery, result_prefix: &str) -> Result<QueryCalc> {
    let mut t = Translator { fresh: 0 };
    t.translate(query, result_prefix)
}

struct Translator {
    fresh: usize,
}

impl Translator {
    fn fresh_var(&mut self, hint: &str) -> Var {
        self.fresh += 1;
        format!("__{hint}{}", self.fresh)
    }

    fn translate(&mut self, query: &BoundQuery, prefix: &str) -> Result<QueryCalc> {
        let group_vars: Vec<Var> = query.group_by.iter().map(|c| c.var.clone()).collect();

        // Join graph + predicate, shared by every aggregate of the query.
        let base_body = self.query_body(query)?;

        let mut maps = Vec::new();
        let mut columns = Vec::new();
        let mut agg_index = 0usize;

        for item in &query.select {
            match item {
                BoundSelectItem::GroupColumn { column, name } => {
                    columns.push(ResultColumn::Group {
                        name: name.clone(),
                        var: column.var.clone(),
                    });
                }
                BoundSelectItem::Aggregate(agg) => {
                    agg_index += 1;
                    let single = query.aggregates().len() == 1;
                    let base_name = if single && prefix == "Q" {
                        "Q".to_string()
                    } else {
                        format!("{prefix}_{}", agg.name)
                    };
                    self.translate_aggregate(
                        agg,
                        &base_name,
                        &group_vars,
                        &base_body,
                        &mut maps,
                        &mut columns,
                    )?;
                    let _ = agg_index;
                }
            }
        }

        let relations = query
            .relations
            .iter()
            .map(|r| (r.name.clone(), r.column_vars.clone(), r.is_static))
            .collect();

        Ok(QueryCalc {
            group_vars,
            columns,
            maps,
            relations,
        })
    }

    /// The product of relation atoms and predicate factors (no aggregate
    /// argument yet).
    fn query_body(&mut self, query: &BoundQuery) -> Result<CalcExpr> {
        let mut factors = Vec::new();
        for rel in &query.relations {
            factors.push(CalcExpr::Rel {
                name: rel.name.clone(),
                vars: rel.column_vars.clone(),
            });
        }
        if let Some(pred) = &query.predicate {
            factors.push(self.predicate(pred)?);
        }
        Ok(CalcExpr::product(factors))
    }

    fn translate_aggregate(
        &mut self,
        agg: &BoundAgg,
        base_name: &str,
        group_vars: &[Var],
        base_body: &CalcExpr,
        maps: &mut Vec<AggSpec>,
        columns: &mut Vec<ResultColumn>,
    ) -> Result<()> {
        match agg.kind {
            AggKind::Sum | AggKind::Count => {
                let value_factors = match &agg.arg {
                    Some(arg) if agg.kind == AggKind::Sum => self.value_factors(arg)?,
                    Some(arg) => {
                        // COUNT(expr) counts non-null rows; with the
                        // supported fragment expressions are never null, so
                        // the argument does not change the count.
                        let _ = arg;
                        vec![]
                    }
                    None => vec![],
                };
                let body = CalcExpr::product(
                    std::iter::once(base_body.clone())
                        .chain(value_factors)
                        .collect(),
                );
                maps.push(AggSpec {
                    name: base_name.to_string(),
                    keys: group_vars.to_vec(),
                    definition: CalcExpr::agg_sum(group_vars.to_vec(), body),
                });
                columns.push(ResultColumn::Sum {
                    name: agg.name.clone(),
                    map: base_name.to_string(),
                });
            }
            AggKind::Avg => {
                let arg = agg
                    .arg
                    .as_ref()
                    .ok_or_else(|| Error::Analysis("AVG requires an argument".to_string()))?;
                let sum_name = format!("{base_name}_SUM");
                let cnt_name = format!("{base_name}_CNT");
                let sum_body = CalcExpr::product(
                    std::iter::once(base_body.clone())
                        .chain(self.value_factors(arg)?)
                        .collect(),
                );
                maps.push(AggSpec {
                    name: sum_name.clone(),
                    keys: group_vars.to_vec(),
                    definition: CalcExpr::agg_sum(group_vars.to_vec(), sum_body),
                });
                maps.push(AggSpec {
                    name: cnt_name.clone(),
                    keys: group_vars.to_vec(),
                    definition: CalcExpr::agg_sum(group_vars.to_vec(), base_body.clone()),
                });
                columns.push(ResultColumn::Avg {
                    name: agg.name.clone(),
                    sum_map: sum_name,
                    count_map: cnt_name,
                });
            }
            AggKind::Min | AggKind::Max => {
                let arg = agg
                    .arg
                    .as_ref()
                    .ok_or_else(|| Error::Analysis("MIN/MAX require an argument".to_string()))?;
                // The aggregated expression must expose a single variable
                // to key the support map on; plain columns do, complex
                // expressions get a Lift binding.
                let (value_var, extra) = match arg {
                    BoundExpr::Column(c) => (c.var.clone(), None),
                    other => {
                        let v = self.fresh_var("minmax");
                        let val = self.value_expr(other)?;
                        (
                            v.clone(),
                            Some(CalcExpr::Lift {
                                var: v,
                                body: Box::new(CalcExpr::Val(val)),
                            }),
                        )
                    }
                };
                let mut keys = group_vars.to_vec();
                keys.push(value_var);
                let body =
                    CalcExpr::product(std::iter::once(base_body.clone()).chain(extra).collect());
                let map_name = format!("{base_name}_SUPP");
                maps.push(AggSpec {
                    name: map_name.clone(),
                    keys: keys.clone(),
                    definition: CalcExpr::agg_sum(keys, body),
                });
                columns.push(ResultColumn::Extremum {
                    name: agg.name.clone(),
                    map: map_name,
                    is_min: agg.kind == AggKind::Min,
                });
            }
        }
        Ok(())
    }

    /// Translate a boolean predicate into a 0/1-valued calculus factor.
    fn predicate(&mut self, expr: &BoundExpr) -> Result<CalcExpr> {
        use dbtoaster_sql::BinaryOp as B;
        match expr {
            BoundExpr::Binary {
                op: B::And,
                left,
                right,
            } => {
                let l = self.predicate(left)?;
                let r = self.predicate(right)?;
                Ok(CalcExpr::product(vec![l, r]))
            }
            BoundExpr::Binary {
                op: B::Or,
                left,
                right,
            } => {
                // a OR b = a + b - a*b for 0/1-valued a, b.
                let l = self.predicate(left)?;
                let r = self.predicate(right)?;
                Ok(CalcExpr::sum(vec![
                    l.clone(),
                    r.clone(),
                    CalcExpr::Neg(Box::new(CalcExpr::product(vec![l, r]))),
                ]))
            }
            BoundExpr::Unary {
                op: dbtoaster_sql::UnaryOp::Not,
                expr,
            } => {
                let inner = self.predicate(expr)?;
                Ok(CalcExpr::sum(vec![
                    CalcExpr::one(),
                    CalcExpr::Neg(Box::new(inner)),
                ]))
            }
            BoundExpr::Binary { op, left, right } if op.is_comparison() => {
                self.comparison(*op, left, right)
            }
            BoundExpr::Exists(sub) => {
                let body = self.scalar_subquery_body(sub)?;
                Ok(CalcExpr::Exists(Box::new(body)))
            }
            BoundExpr::Literal(v) => Ok(if v.as_bool() {
                CalcExpr::one()
            } else {
                CalcExpr::zero()
            }),
            other => Err(Error::Unsupported(format!(
                "predicate form not supported in WHERE clause: {other:?}"
            ))),
        }
    }

    /// Translate a comparison whose operands may include scalar
    /// subqueries.
    fn comparison(
        &mut self,
        op: dbtoaster_sql::BinaryOp,
        left: &BoundExpr,
        right: &BoundExpr,
    ) -> Result<CalcExpr> {
        use dbtoaster_sql::BinaryOp as B;
        let cmp_op = match op {
            B::Eq => CmpOp::Eq,
            B::NotEq => CmpOp::NotEq,
            B::Lt => CmpOp::Lt,
            B::LtEq => CmpOp::LtEq,
            B::Gt => CmpOp::Gt,
            B::GtEq => CmpOp::GtEq,
            other => {
                return Err(Error::Compile(format!(
                    "{other} is not a comparison operator"
                )))
            }
        };
        let mut lifts = Vec::new();
        let l = self.operand(left, &mut lifts)?;
        let r = self.operand(right, &mut lifts)?;
        let cmp = CalcExpr::Cmp {
            op: cmp_op,
            left: l,
            right: r,
        };
        lifts.push(cmp);
        Ok(CalcExpr::product(lifts))
    }

    /// Translate a comparison operand, emitting `Lift` factors for any
    /// scalar subqueries it contains.
    fn operand(&mut self, expr: &BoundExpr, lifts: &mut Vec<CalcExpr>) -> Result<ValExpr> {
        match expr {
            BoundExpr::Subquery(sub) => {
                let body = self.scalar_subquery_body(sub)?;
                let v = self.fresh_var("nested");
                lifts.push(CalcExpr::Lift {
                    var: v.clone(),
                    body: Box::new(body),
                });
                Ok(ValExpr::Var(v))
            }
            BoundExpr::Binary { op, left, right } if op.is_arithmetic() => {
                let l = self.operand(left, lifts)?;
                let r = self.operand(right, lifts)?;
                Ok(arith(*op, l, r))
            }
            BoundExpr::Unary {
                op: dbtoaster_sql::UnaryOp::Neg,
                expr,
            } => Ok(ValExpr::Neg(Box::new(self.operand(expr, lifts)?))),
            other => self.value_expr(other),
        }
    }

    /// The calculus body computing a scalar subquery's single aggregate.
    fn scalar_subquery_body(&mut self, sub: &BoundQuery) -> Result<CalcExpr> {
        let base = self.query_body(sub)?;
        let agg = sub.aggregates()[0];
        let body = match (agg.kind, &agg.arg) {
            (AggKind::Sum, Some(arg)) => CalcExpr::product(
                std::iter::once(base)
                    .chain(self.value_factors(arg)?)
                    .collect(),
            ),
            (AggKind::Count, _) => base,
            (kind, _) => {
                return Err(Error::Unsupported(format!(
                    "scalar subqueries support SUM and COUNT aggregates, found {kind:?}"
                )))
            }
        };
        Ok(CalcExpr::agg_sum(vec![], body))
    }

    /// Translate an aggregate argument into multiplicative Val factors —
    /// products are split into separate factors so the simplifier can pull
    /// trigger-variable factors out of `AggSum` independently (this is what
    /// turns `sum(A*D)` into `a * sum(D)` on an insert into R).
    fn value_factors(&mut self, expr: &BoundExpr) -> Result<Vec<CalcExpr>> {
        use dbtoaster_sql::BinaryOp as B;
        match expr {
            BoundExpr::Binary {
                op: B::Mul,
                left,
                right,
            } => {
                let mut l = self.value_factors(left)?;
                let r = self.value_factors(right)?;
                l.extend(r);
                Ok(l)
            }
            other => Ok(vec![CalcExpr::Val(self.value_expr(other)?)]),
        }
    }

    /// Translate a scalar expression with no subqueries.
    fn value_expr(&mut self, expr: &BoundExpr) -> Result<ValExpr> {
        match expr {
            BoundExpr::Column(c) => Ok(ValExpr::Var(c.var.clone())),
            BoundExpr::Literal(v) => Ok(ValExpr::Const(v.clone())),
            BoundExpr::Unary {
                op: dbtoaster_sql::UnaryOp::Neg,
                expr,
            } => Ok(ValExpr::Neg(Box::new(self.value_expr(expr)?))),
            BoundExpr::Binary { op, left, right } if op.is_arithmetic() => {
                let l = self.value_expr(left)?;
                let r = self.value_expr(right)?;
                Ok(arith(*op, l, r))
            }
            BoundExpr::Binary { op, .. } if op.is_comparison() => Err(Error::Unsupported(
                "comparisons are not supported inside aggregate arguments".into(),
            )),
            other => Err(Error::Unsupported(format!(
                "expression not supported in value position: {other:?}"
            ))),
        }
    }
}

fn arith(op: dbtoaster_sql::BinaryOp, l: ValExpr, r: ValExpr) -> ValExpr {
    use dbtoaster_sql::BinaryOp as B;
    match op {
        B::Add => ValExpr::Add(vec![l, r]),
        B::Sub => ValExpr::Add(vec![l, ValExpr::Neg(Box::new(r))]),
        B::Mul => ValExpr::Mul(vec![l, r]),
        B::Div => ValExpr::Div(Box::new(l), Box::new(r)),
        _ => unreachable!("arith called with non-arithmetic operator"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{Catalog, ColumnType, Schema};
    use dbtoaster_sql::{analyze, parse_query};

    fn rst_catalog() -> Catalog {
        Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
            .with(Schema::new(
                "T",
                vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
            ))
    }

    fn bids_catalog() -> Catalog {
        Catalog::new().with(Schema::new(
            "BIDS",
            vec![
                ("T", ColumnType::Float),
                ("ID", ColumnType::Int),
                ("BROKER_ID", ColumnType::Int),
                ("VOLUME", ColumnType::Float),
                ("PRICE", ColumnType::Float),
            ],
        ))
    }

    fn calc(sql: &str, cat: &Catalog) -> QueryCalc {
        let q = parse_query(sql).unwrap();
        let b = analyze(&q, cat).unwrap();
        translate_query(&b, "Q").unwrap()
    }

    #[test]
    fn figure2_query_translates_to_a_single_scalar_map() {
        let qc = calc(
            "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C",
            &rst_catalog(),
        );
        assert_eq!(qc.maps.len(), 1);
        let m = &qc.maps[0];
        assert_eq!(m.name, "Q");
        assert!(m.keys.is_empty());
        let s = m.definition.to_string();
        assert!(s.contains("R(R_A, R_B)"));
        assert!(s.contains("[R_B = S_B]"));
        assert!(s.contains("[S_C = T_C]"));
        // sum(A*D) splits into two Val factors.
        assert!(s.contains("* R_A") && s.contains("* T_D"));
        assert_eq!(qc.relations.len(), 3);
    }

    #[test]
    fn group_by_keys_become_map_keys() {
        let qc = calc("select B, sum(A) from R group by B", &rst_catalog());
        assert_eq!(qc.group_vars, vec!["R_B".to_string()]);
        assert_eq!(qc.maps[0].keys, vec!["R_B".to_string()]);
        assert!(matches!(qc.columns[0], ResultColumn::Group { .. }));
        assert!(matches!(qc.columns[1], ResultColumn::Sum { .. }));
    }

    #[test]
    fn avg_produces_sum_and_count_maps() {
        let qc = calc("select avg(PRICE) from BIDS", &bids_catalog());
        assert_eq!(qc.maps.len(), 2);
        assert!(matches!(&qc.columns[0], ResultColumn::Avg { .. }));
        assert!(qc.maps.iter().any(|m| m.name.ends_with("_SUM")));
        assert!(qc.maps.iter().any(|m| m.name.ends_with("_CNT")));
    }

    #[test]
    fn min_produces_a_support_map_keyed_by_the_value() {
        let qc = calc(
            "select BROKER_ID, min(PRICE) from BIDS group by BROKER_ID",
            &bids_catalog(),
        );
        let supp = qc.maps.iter().find(|m| m.name.ends_with("_SUPP")).unwrap();
        assert_eq!(
            supp.keys,
            vec!["BIDS_BROKER_ID".to_string(), "BIDS_PRICE".to_string()]
        );
        assert!(matches!(
            qc.columns[1],
            ResultColumn::Extremum { is_min: true, .. }
        ));
    }

    #[test]
    fn or_predicates_use_inclusion_exclusion() {
        let qc = calc("select sum(A) from R where B = 1 or B = 2", &rst_catalog());
        let s = qc.maps[0].definition.to_string();
        // a + b - a*b
        assert!(s.contains("[R_B = 1]"));
        assert!(s.contains("[R_B = 2]"));
        assert!(s.contains("-("));
    }

    #[test]
    fn nested_scalar_subquery_becomes_a_lift() {
        let qc = calc(
            "select sum(b1.PRICE * b1.VOLUME) from BIDS b1 \
             where 0.25 * (select sum(b3.VOLUME) from BIDS b3) > \
                   (select sum(b2.VOLUME) from BIDS b2 where b2.PRICE > b1.PRICE)",
            &bids_catalog(),
        );
        let s = qc.maps[0].definition.to_string();
        assert!(s.contains(":= AggSum"), "expected Lift factors, got {s}");
        assert!(s.contains("BIDS(B2_T, B2_ID, B2_BROKER_ID, B2_VOLUME, B2_PRICE)"));
        assert!(s.contains("[B2_PRICE > B1_PRICE]"));
    }

    #[test]
    fn exists_subqueries_become_exists_factors() {
        let qc = calc(
            "select count(*) from BIDS b where exists \
             (select 1 from BIDS c where c.PRICE = b.PRICE)",
            &bids_catalog(),
        );
        let s = qc.maps[0].definition.to_string();
        assert!(s.contains("Exists("));
    }

    #[test]
    fn count_star_has_no_value_factor() {
        let qc = calc("select count(*) from R", &rst_catalog());
        let s = qc.maps[0].definition.to_string();
        assert_eq!(s, "AggSum([], R(R_A, R_B))");
    }

    #[test]
    fn ssb_q41_shape() {
        let cat = Catalog::new()
            .with(Schema::new(
                "LINEORDER",
                vec![
                    ("LO_CUSTKEY", ColumnType::Int),
                    ("LO_SUPPKEY", ColumnType::Int),
                    ("LO_PARTKEY", ColumnType::Int),
                    ("LO_ORDERDATE", ColumnType::Int),
                    ("LO_REVENUE", ColumnType::Float),
                    ("LO_SUPPLYCOST", ColumnType::Float),
                ],
            ))
            .with(Schema::new(
                "CUSTOMER",
                vec![
                    ("C_CUSTKEY", ColumnType::Int),
                    ("C_NATION", ColumnType::Str),
                    ("C_REGION", ColumnType::Str),
                ],
            ))
            .with(Schema::new(
                "SUPPLIER",
                vec![
                    ("S_SUPPKEY", ColumnType::Int),
                    ("S_REGION", ColumnType::Str),
                ],
            ))
            .with(Schema::new(
                "PART",
                vec![("P_PARTKEY", ColumnType::Int), ("P_MFGR", ColumnType::Str)],
            ))
            .with(Schema::new(
                "DATES",
                vec![("D_DATEKEY", ColumnType::Int), ("D_YEAR", ColumnType::Int)],
            ));
        let qc = calc(
            "select D_YEAR, C_NATION, sum(LO_REVENUE - LO_SUPPLYCOST) as PROFIT \
             from DATES, CUSTOMER, SUPPLIER, PART, LINEORDER \
             where LO_CUSTKEY = C_CUSTKEY and LO_SUPPKEY = S_SUPPKEY \
               and LO_PARTKEY = P_PARTKEY and LO_ORDERDATE = D_DATEKEY \
               and C_REGION = 'AMERICA' and S_REGION = 'AMERICA' \
               and (P_MFGR = 'MFGR#1' or P_MFGR = 'MFGR#2') \
             group by D_YEAR, C_NATION",
            &cat,
        );
        assert_eq!(qc.maps.len(), 1);
        assert_eq!(qc.maps[0].keys.len(), 2);
        assert_eq!(qc.relations.len(), 5);
        assert_eq!(qc.columns.len(), 3);
    }
}
