//! Canonical forms for map sharing.
//!
//! The paper notes that "we can exploit map sharing opportunities across
//! event handler functions": the maintenance of `q` on an insert into S
//! reuses the maps `qA[b]` and `qD[c]` that were created for inserts into
//! R and T. Two candidate maps can be shared when their definitions are
//! identical up to renaming of variables, so the compiler keys its map
//! registry by the canonical string produced here.
//!
//! The canonicalization renames the map's key variables positionally
//! (`__K0`, `__K1`, ...), sorts product factors by a name-insensitive
//! structural key, and then renames every remaining variable in traversal
//! order (`__V0`, `__V1`, ...). A failure to identify two structurally
//! equal definitions merely creates a duplicate map (a missed
//! optimization, never an error), so ties in the factor ordering are
//! acceptable.

use std::collections::BTreeMap;

use crate::expr::{CalcExpr, Var};

/// Produce a canonical string for a map definition with the given key
/// variables.
pub fn canonical_form(keys: &[Var], definition: &CalcExpr) -> String {
    let sorted = sort_structurally(definition);
    let mut renaming: BTreeMap<Var, Var> = BTreeMap::new();
    for (i, k) in keys.iter().enumerate() {
        renaming.insert(k.clone(), format!("__K{i}"));
    }
    let mut counter = 0usize;
    assign_names(&sorted, &mut renaming, &mut counter);
    let renamed = sorted.rename(&|v| renaming.get(v).cloned());
    format!("[{}] {renamed}", keys.len())
}

/// Recursively sort the factors of products and the terms of sums by a
/// structural key that ignores variable names, so that re-orderings do
/// not defeat sharing.
fn sort_structurally(expr: &CalcExpr) -> CalcExpr {
    match expr {
        CalcExpr::Prod(fs) => {
            let mut sorted: Vec<CalcExpr> = fs.iter().map(sort_structurally).collect();
            sorted.sort_by_key(structural_key);
            CalcExpr::Prod(sorted)
        }
        CalcExpr::Sum(ts) => {
            let mut sorted: Vec<CalcExpr> = ts.iter().map(sort_structurally).collect();
            sorted.sort_by_key(structural_key);
            CalcExpr::Sum(sorted)
        }
        CalcExpr::Neg(e) => CalcExpr::Neg(Box::new(sort_structurally(e))),
        CalcExpr::AggSum { group, body } => CalcExpr::AggSum {
            group: group.clone(),
            body: Box::new(sort_structurally(body)),
        },
        CalcExpr::Lift { var, body } => CalcExpr::Lift {
            var: var.clone(),
            body: Box::new(sort_structurally(body)),
        },
        CalcExpr::Exists(e) => CalcExpr::Exists(Box::new(sort_structurally(e))),
        other => other.clone(),
    }
}

/// A sort key that depends only on structure (node kind, relation / map
/// names, arities), never on variable names.
fn structural_key(expr: &CalcExpr) -> String {
    match expr {
        CalcExpr::Val(v) => format!("0:val:{}", v.vars().len()),
        CalcExpr::Cmp { op, .. } => format!("1:cmp:{op}"),
        CalcExpr::Rel { name, vars } => format!("2:rel:{name}:{}", vars.len()),
        CalcExpr::MapRef { name, keys } => format!("3:map:{name}:{}", keys.len()),
        CalcExpr::AggSum { group, body } => {
            format!("4:agg:{}:{}", group.len(), structural_key(body))
        }
        CalcExpr::Lift { body, .. } => format!("5:lift:{}", structural_key(body)),
        CalcExpr::Exists(e) => format!("6:exists:{}", structural_key(e)),
        CalcExpr::Neg(e) => format!("7:neg:{}", structural_key(e)),
        CalcExpr::Prod(fs) => {
            format!(
                "8:prod:{}",
                fs.iter().map(structural_key).collect::<Vec<_>>().join(",")
            )
        }
        CalcExpr::Sum(ts) => {
            format!(
                "9:sum:{}",
                ts.iter().map(structural_key).collect::<Vec<_>>().join(",")
            )
        }
    }
}

/// Assign canonical names to variables in traversal order.
fn assign_names(expr: &CalcExpr, renaming: &mut BTreeMap<Var, Var>, counter: &mut usize) {
    let visit = |v: &Var, renaming: &mut BTreeMap<Var, Var>, counter: &mut usize| {
        if !renaming.contains_key(v) {
            renaming.insert(v.clone(), format!("__V{counter}"));
            *counter += 1;
        }
    };
    match expr {
        CalcExpr::Val(v) => {
            for var in ordered_vars(v) {
                visit(&var, renaming, counter);
            }
        }
        CalcExpr::Cmp { left, right, .. } => {
            for var in ordered_vars(left).into_iter().chain(ordered_vars(right)) {
                visit(&var, renaming, counter);
            }
        }
        CalcExpr::Rel { vars, .. }
        | CalcExpr::MapRef {
            name: _,
            keys: vars,
        } => {
            for v in vars {
                visit(v, renaming, counter);
            }
        }
        CalcExpr::Prod(fs) | CalcExpr::Sum(fs) => {
            for f in fs {
                assign_names(f, renaming, counter);
            }
        }
        CalcExpr::Neg(e) | CalcExpr::Exists(e) => assign_names(e, renaming, counter),
        CalcExpr::AggSum { group, body } => {
            for g in group {
                visit(g, renaming, counter);
            }
            assign_names(body, renaming, counter);
        }
        CalcExpr::Lift { var, body } => {
            visit(var, renaming, counter);
            assign_names(body, renaming, counter);
        }
    }
}

fn ordered_vars(v: &crate::expr::ValExpr) -> Vec<Var> {
    let mut out = Vec::new();
    v.collect_vars(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ValExpr;

    #[test]
    fn alpha_equivalent_definitions_share() {
        // sum_D(S(B, C) ⋈ T(C, D)) keyed by B, written with two different
        // variable namings and factor orders.
        let def1 = CalcExpr::agg_sum(
            vec![],
            CalcExpr::product(vec![
                CalcExpr::rel("S", vec!["B", "C"]),
                CalcExpr::rel("T", vec!["C", "D"]),
                CalcExpr::Val(ValExpr::var("D")),
            ]),
        );
        let def2 = CalcExpr::agg_sum(
            vec![],
            CalcExpr::product(vec![
                CalcExpr::Val(ValExpr::var("Z")),
                CalcExpr::rel("T", vec!["Y", "Z"]),
                CalcExpr::rel("S", vec!["X", "Y"]),
            ]),
        );
        let c1 = canonical_form(&["B".to_string()], &def1);
        let c2 = canonical_form(&["X".to_string()], &def2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn different_structures_do_not_share() {
        let def1 = CalcExpr::agg_sum(vec![], CalcExpr::rel("S", vec!["B", "C"]));
        let def2 = CalcExpr::agg_sum(vec![], CalcExpr::rel("T", vec!["B", "C"]));
        assert_ne!(
            canonical_form(&["B".to_string()], &def1),
            canonical_form(&["B".to_string()], &def2)
        );
    }

    #[test]
    fn key_position_matters() {
        let def = CalcExpr::agg_sum(vec![], CalcExpr::rel("S", vec!["B", "C"]));
        let by_b = canonical_form(&["B".to_string()], &def);
        let by_c = canonical_form(&["C".to_string()], &def);
        assert_ne!(by_b, by_c);
    }

    #[test]
    fn key_count_is_part_of_the_form() {
        let def = CalcExpr::agg_sum(vec![], CalcExpr::rel("S", vec!["B", "C"]));
        let one = canonical_form(&["B".to_string()], &def);
        let two = canonical_form(&["B".to_string(), "C".to_string()], &def);
        assert_ne!(one, two);
    }
}
