//! Standalone processing mode.
//!
//! The paper's runtime can run either embedded in the client's address
//! space or as a standalone query processor "accepting input over a
//! network interface or archived stream". This module provides the
//! standalone form: the engine runs on its own thread behind a
//! [`crossbeam`] channel; producers push events, and any thread can take
//! a consistent read of the current result or of internal map snapshots
//! through a shared [`parking_lot::RwLock`].

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};
use parking_lot::RwLock;

use dbtoaster_common::{Event, Result, Tuple, Value};
use dbtoaster_compiler::TriggerProgram;

use crate::engine::{Engine, ProfileReport, ResultRow};

enum Command {
    Event(Event),
    Shutdown,
}

/// A standalone query processor: an [`Engine`] running on a dedicated
/// thread, fed through a bounded channel.
pub struct StandaloneServer {
    sender: Sender<Command>,
    engine: Arc<RwLock<Engine>>,
    worker: Option<JoinHandle<()>>,
}

impl StandaloneServer {
    /// Start the server for a compiled program. `queue_capacity` bounds
    /// the number of in-flight events (back-pressure on producers).
    pub fn start(program: &TriggerProgram, queue_capacity: usize) -> Result<StandaloneServer> {
        let engine = Arc::new(RwLock::new(Engine::new(program)?));
        let (sender, receiver) = bounded::<Command>(queue_capacity.max(1));
        let worker_engine = Arc::clone(&engine);
        let worker = std::thread::spawn(move || {
            while let Ok(cmd) = receiver.recv() {
                match cmd {
                    Command::Event(e) => {
                        // Errors on individual events (arity mismatches)
                        // are ignored in streaming mode; the profiler still
                        // counts the event.
                        let _ = worker_engine.write().on_event(&e);
                    }
                    Command::Shutdown => break,
                }
            }
        });
        Ok(StandaloneServer {
            sender,
            engine,
            worker: Some(worker),
        })
    }

    /// Enqueue one event (blocks when the queue is full).
    pub fn send(&self, event: Event) {
        let _ = self.sender.send(Command::Event(event));
    }

    /// Enqueue many events.
    pub fn send_all(&self, events: impl IntoIterator<Item = Event>) {
        for e in events {
            self.send(e);
        }
    }

    /// The current standing-query result (consistent snapshot).
    pub fn result(&self) -> Vec<ResultRow> {
        self.engine.read().result()
    }

    /// The current value of a scalar query.
    pub fn scalar_result(&self) -> Value {
        self.engine.read().scalar_result()
    }

    /// Read-only snapshot of an internal map.
    pub fn map_snapshot(&self, name: &str) -> Option<Vec<(Tuple, Value)>> {
        self.engine.read().map_snapshot(name)
    }

    /// Profiling report of the running engine.
    pub fn profile(&self) -> ProfileReport {
        self.engine.read().profile()
    }

    /// Number of events fully processed so far.
    pub fn events_processed(&self) -> u64 {
        self.engine.read().events_processed()
    }

    /// Stop the worker after draining the queue.
    pub fn shutdown(mut self) {
        let _ = self.sender.send(Command::Shutdown);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StandaloneServer {
    fn drop(&mut self) {
        let _ = self.sender.send(Command::Shutdown);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{tuple, Catalog, ColumnType, Schema};
    use dbtoaster_compiler::{compile_sql, CompileOptions};

    #[test]
    fn standalone_server_processes_a_stream_and_serves_results() {
        let cat = Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
            .with(Schema::new(
                "T",
                vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
            ));
        let p = compile_sql(
            "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C",
            &cat,
            &CompileOptions::full(),
        )
        .unwrap();
        let server = StandaloneServer::start(&p, 128).unwrap();
        server.send_all(vec![
            Event::insert("R", tuple![3i64, 1i64]),
            Event::insert("S", tuple![1i64, 2i64]),
            Event::insert("T", tuple![2i64, 10i64]),
        ]);
        // Wait for the queue to drain.
        while server.events_processed() < 3 {
            std::thread::yield_now();
        }
        assert_eq!(server.scalar_result(), Value::Int(30));
        assert_eq!(server.profile().events_processed, 3);
        server.shutdown();
    }
}
