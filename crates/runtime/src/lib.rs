//! DBToaster main-memory runtime.
//!
//! The compiler produces calculus-level trigger programs; this crate runs
//! them:
//!
//! * [`storage`] — the in-memory map data structures (hash maps keyed by
//!   tuples, with secondary indexes for the slice lookups that `foreach`
//!   statements need),
//! * [`lower`] — lowering of calculus statements into a flat, slot-based
//!   executable form: pre-resolved map ids, loop steps over index slices,
//!   guard predicates and arithmetic over environment slots. This is the
//!   reproduction's analog of the paper's generated C++: no query plans
//!   are interpreted at runtime, each event runs a short sequence of
//!   pre-compiled statements,
//! * [`engine`] — the query engine: applies update-stream events, exposes
//!   the standing query result, read-only snapshots of internal maps
//!   (the paper's ad-hoc client-side query interface), a per-map/
//!   per-trigger profiler and a statement-level tracing debugger. The
//!   evaluation core is generic over a map *frame* ([`storage::MapRead`]
//!   / [`storage::MapWrite`]), so the same compiled statements run
//!   against an engine's private maps or the shared store,
//! * [`store`] — the shared map store: maps deduplicated across views by
//!   canonical fingerprint, per-map-group locking (base maps grouped by
//!   *relation*, derived maps by registering view), maintainer-view
//!   bookkeeping, and cacheable [`store::FramePlan`] slot-resolution
//!   tables so frame construction is allocation-free (the server half of
//!   cross-query map sharing and sharded dispatch),
//! * [`standalone`] — the standalone processing mode: an engine running
//!   on its own thread, fed through a channel, mirroring the paper's
//!   network-fed standalone runtime (embedded mode is simply using
//!   [`engine::Engine`] in-process).

pub mod engine;
pub mod lower;
pub mod standalone;
pub mod storage;
pub mod store;

pub use engine::{
    apply_event_statements, assemble_result, ordered_fallback, result_column_names, Engine,
    EventScratch, ProfileReport, ResultRow, StatementPhase, StmtHooks, StmtProfile,
    StmtProfileEntry, StmtSpans,
};
pub use lower::{lower_program, ExecProgram};
pub use standalone::StandaloneServer;
pub use storage::{MapRead, MapStorage, MapWrite};
pub use store::{
    range_of_value, FramePlan, GroupKey, LockWaitMetrics, MapRegistration, MergedFrame,
    MergedReadGuard, RangeShard, ReadFrame, SharedMapStore, SlotMeta, ViewBinding, WriteFrame,
};
