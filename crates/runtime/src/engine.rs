//! The query engine: applies update-stream events to the maintained maps
//! and serves the standing-query result.
//!
//! An [`Engine`] is the *embedded mode* of the paper's runtime: it lives
//! in the application's address space, processes one [`Event`] at a time
//! through pre-compiled trigger statements, and exposes
//!
//! * [`Engine::result`] — the standing query's current answer,
//! * [`Engine::map_snapshot`] / [`Engine::lookup`] — the read-only
//!   interface to internal maps for ad-hoc client-side queries,
//! * [`Engine::profile`] — per-trigger and per-map statistics (tuple
//!   counts, processing time, entry counts, approximate bytes), backing
//!   the paper's profiling/visualization experiments,
//! * [`Engine::enable_tracing`] / [`Engine::last_trace`] — the
//!   statement-level debugger used by the demo walkthrough.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dbtoaster_common::{Error, Event, EventKind, FxHashMap, Result, Tuple, Value};
use dbtoaster_compiler::TriggerProgram;
use dbtoaster_telemetry::{TraceRecorder, TraceSpan, LAYER_STATEMENT};

use crate::lower::{lower_program, Block, ExecProgram, ResultColumnSpec, Scalar};
use crate::storage::{MapRead, MapStorage, MapWrite};

/// One row of the standing-query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Group-by key (empty for scalar queries).
    pub key: Tuple,
    /// Output values in `SELECT` order (including echoed group columns).
    pub values: Vec<Value>,
}

/// Per-trigger and per-map statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    pub events_processed: u64,
    pub per_trigger: Vec<(String, u64, Duration)>,
    /// (map name, live entries, approximate bytes).
    pub per_map: Vec<(String, usize, usize)>,
    pub total_bytes: usize,
    /// Number of compiled statements and total compiled "code size"
    /// (calculus nodes), mirroring the paper's generated-code statistics.
    pub statement_count: usize,
    pub code_size: usize,
    /// Wall-clock time spent compiling and lowering the query.
    pub compile_time: Duration,
    /// Per-statement self-profile (empty unless
    /// [`Engine::enable_profiling`] is on).
    pub statements: Vec<StmtProfileEntry>,
    /// Process-wide successful ordered-index range probes.
    pub ordered_probes: u64,
    /// Process-wide ordered-path fallbacks as `(reason, count)`.
    pub ordered_fallbacks: Vec<(String, u64)>,
}

/// The embedded-mode query engine.
pub struct Engine {
    program: TriggerProgram,
    exec: ExecProgram,
    maps: Vec<MapStorage>,
    events_processed: u64,
    trigger_stats: FxHashMap<(String, EventKind), (u64, Duration)>,
    compile_time: Duration,
    tracing: bool,
    trace: Vec<String>,
    profile: Option<StmtProfile>,
    /// Statement-evaluation buffers, reused across every event this
    /// engine processes (not just within one batch) so the per-event
    /// path pays no allocation either.
    scratch: EventScratch,
}

impl Engine {
    /// Build an engine from a compiled trigger program (lowers it and
    /// allocates all maps and secondary indexes).
    pub fn new(program: &TriggerProgram) -> Result<Engine> {
        let started = Instant::now();
        let exec = lower_program(program)?;
        let mut maps: Vec<MapStorage> = exec
            .map_arities
            .iter()
            .map(|&a| MapStorage::new(a))
            .collect();
        for (map, patterns) in exec.patterns.iter().enumerate() {
            for p in patterns {
                maps[map].register_pattern(p);
            }
        }
        for (map, positions) in exec.ordered.iter().enumerate() {
            for &p in positions {
                maps[map].register_ordered(p);
            }
        }
        Ok(Engine {
            program: program.clone(),
            exec,
            maps,
            events_processed: 0,
            trigger_stats: FxHashMap::default(),
            compile_time: started.elapsed(),
            tracing: false,
            trace: Vec::new(),
            profile: None,
            scratch: EventScratch::default(),
        })
    }

    /// The lowered program (for inspection and tests).
    pub fn exec_program(&self) -> &ExecProgram {
        &self.exec
    }

    /// The calculus-level program this engine runs.
    pub fn program(&self) -> &TriggerProgram {
        &self.program
    }

    /// Enable or disable statement-level tracing (the demo debugger).
    pub fn enable_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// The trace of the most recently processed event (statement renderings
    /// with the target-map sizes after each application).
    pub fn last_trace(&self) -> &[String] {
        &self.trace
    }

    /// Enable or disable the per-statement self-profiler: cumulative
    /// nanoseconds and run counts per `(trigger, stage, statement)`,
    /// reported through [`Engine::profile`]. Costs two clock reads per
    /// statement while on; turning it off discards the collected stats.
    pub fn enable_profiling(&mut self, on: bool) {
        self.profile = on.then(|| StmtProfile::for_program(&self.exec));
    }

    /// Process a single update-stream event.
    pub fn on_event(&mut self, event: &Event) -> Result<()> {
        let started = Instant::now();
        if self.tracing {
            self.trace.clear();
            self.trace.push(format!(
                "event: {} {} {}",
                event.kind.label(),
                event.relation,
                event.tuple
            ));
        }
        if !self.apply_event(event)? {
            // Relations unknown to the query are ignored (the paper's
            // runtime registers handlers only for referenced streams).
            self.events_processed += 1;
            return Ok(());
        }
        self.events_processed += 1;
        let entry = self
            .trigger_stats
            .entry((event.relation.clone(), event.kind))
            .or_insert((0, Duration::ZERO));
        entry.0 += 1;
        entry.1 += started.elapsed();
        Ok(())
    }

    /// Process a whole batch of events through the triggers, paying the
    /// per-event overheads once per batch instead of once per event — the
    /// engine half of the view server's batched ingestion path. Three
    /// costs are amortized: clock reads (two per batch instead of two per
    /// event), per-trigger stat updates (aggregated per batch), and the
    /// statement-evaluation scratch buffers (the slot environment and
    /// update staging vector are reused across every event of the batch
    /// instead of being allocated per statement). Statement application
    /// and event order are identical to calling [`Engine::on_event`] in a
    /// loop; only profiling granularity differs: per-trigger *counts*
    /// stay exact, but the measured time is attributed to the batch's
    /// first (relation, kind) pair rather than split per trigger.
    ///
    /// Returns the number of events absorbed (the whole batch, unless an
    /// arity error aborts mid-batch).
    pub fn process_batch<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a Event>,
    ) -> Result<usize> {
        let started = Instant::now();
        // Trigger keys are few; a linear probe avoids the per-event
        // String clone a hash-map entry key would cost.
        let mut counts: Vec<((String, EventKind), u64)> = Vec::new();
        let mut absorbed = 0usize;
        let mut failure = None;
        for event in events {
            match self.apply_event(event) {
                Ok(true) => {
                    match counts
                        .iter_mut()
                        .find(|((r, k), _)| *k == event.kind && *r == event.relation)
                    {
                        Some((_, n)) => *n += 1,
                        None => counts.push(((event.relation.clone(), event.kind), 1)),
                    }
                }
                Ok(false) => {}
                Err(e) => {
                    // Stop at the bad event, but still flush the stats of
                    // the events already absorbed so the batch and
                    // per-event paths agree on counters after an error.
                    failure = Some(e);
                    break;
                }
            }
            self.events_processed += 1;
            absorbed += 1;
        }
        let elapsed = started.elapsed();
        let mut first = true;
        for (key, count) in counts {
            let entry = self.trigger_stats.entry(key).or_insert((0, Duration::ZERO));
            entry.0 += count;
            if first {
                entry.1 += elapsed;
                first = false;
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(absorbed),
        }
    }

    /// Run the trigger for one event, without touching counters or the
    /// clock. Returns `false` when no trigger references the relation.
    /// The engine's own scratch provides the statement-evaluation
    /// buffers, so neither the per-event nor the batched path allocates.
    fn apply_event(&mut self, event: &Event) -> Result<bool> {
        let hooks = StmtHooks {
            log: if self.tracing {
                Some(&mut self.trace)
            } else {
                None
            },
            profile: self.profile.as_ref(),
            spans: None,
        };
        apply_event_statements(
            &self.exec,
            self.maps.as_mut_slice(),
            event,
            &mut self.scratch,
            StatementPhase::All,
            None,
            hooks,
        )
    }

    /// Process every event of a stream, in order.
    pub fn process<'a>(&mut self, events: impl IntoIterator<Item = &'a Event>) -> Result<()> {
        for e in events {
            self.on_event(e)?;
        }
        Ok(())
    }

    /// The current standing-query result, sorted by group key for
    /// deterministic output.
    pub fn result(&self) -> Vec<ResultRow> {
        assemble_result(&self.exec, self.maps.as_slice())
    }

    /// Output column names in `SELECT` order.
    pub fn column_names(&self) -> Vec<String> {
        result_column_names(&self.exec)
    }

    /// Convenience accessor for scalar single-aggregate queries.
    pub fn scalar_result(&self) -> Value {
        self.result()
            .first()
            .and_then(|r| r.values.first().cloned())
            .unwrap_or(Value::ZERO)
    }

    /// Read-only snapshot of one internal map (the ad-hoc query
    /// interface).
    pub fn map_snapshot(&self, name: &str) -> Option<Vec<(Tuple, Value)>> {
        let id = self.exec.map_id(name)?;
        let mut entries: Vec<(Tuple, Value)> = self.maps[id]
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Some(entries)
    }

    /// Point lookup into an internal map.
    pub fn lookup(&self, map: &str, key: &Tuple) -> Option<Value> {
        let id = self.exec.map_id(map)?;
        Some(self.maps[id].get(key))
    }

    /// Bulk-load entries into one internal map (secondary indexes are
    /// maintained). This is the warm-start path for archived state: a
    /// server restarting against a snapshot loads its base/child maps
    /// directly instead of replaying the archive through the triggers,
    /// then calls [`Engine::rebuild_derived`] to re-establish the
    /// recomputed maps. Entries add to whatever is already stored.
    pub fn load_map(
        &mut self,
        name: &str,
        entries: impl IntoIterator<Item = (Tuple, Value)>,
    ) -> Result<()> {
        let id = self
            .exec
            .map_id(name)
            .ok_or_else(|| Error::Runtime(format!("unknown map {name}")))?;
        for (key, value) in entries {
            self.maps[id].add(key, value);
        }
        Ok(())
    }

    /// Empty every internal map, keeping the registered secondary
    /// indexes (equality slices, ordered positions). Turns a built
    /// engine into a reusable oracle: the shadow auditor seeds one
    /// engine per view once, then per audited event resets it, loads
    /// the captured pre-event snapshot via [`Engine::load_map`], and
    /// replays the event — no re-lowering per audit.
    pub fn reset_maps(&mut self) {
        for m in &mut self.maps {
            m.clear();
        }
    }

    /// Re-establish every derived map that is maintained by post-stage
    /// statements — hierarchy-bracket targets (`Q += F(children)`) and
    /// legacy `Replace` targets — from the currently loaded inputs. Each
    /// target's statements are run once, from a single trigger (the
    /// bracket is identical in every trigger of the map). Completes a
    /// warm start: load the flat maps with [`Engine::load_map`], then
    /// call this to make the nested results consistent.
    pub fn rebuild_derived(&mut self) -> Result<()> {
        let mut done: Vec<usize> = Vec::new();
        for (_, trigger) in &self.exec.triggers {
            let pending: Vec<&crate::lower::ExecStatement> = trigger
                .statements
                .iter()
                .filter(|s| s.stage > 0 && !done.contains(&s.target))
                .collect();
            if pending.is_empty() {
                continue;
            }
            // The bracket statements reference no trigger arguments (a
            // full recomputation from materialized inputs), so a zeroed
            // environment is a valid context.
            let EventScratch { env, updates } = &mut self.scratch;
            for stmt in &pending {
                env.clear();
                run_statement(stmt, self.maps.as_mut_slice(), env, updates);
            }
            for stmt in pending {
                if !done.contains(&stmt.target) {
                    done.push(stmt.target);
                }
            }
        }
        Ok(())
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Approximate total memory held by all maps, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.maps.iter().map(MapStorage::approx_bytes).sum()
    }

    /// Build the profiling report (experiment E5).
    pub fn profile(&self) -> ProfileReport {
        let mut per_trigger: Vec<(String, u64, Duration)> = self
            .trigger_stats
            .iter()
            .map(|((rel, kind), (count, time))| {
                (format!("on_{}_{}", kind.label(), rel), *count, *time)
            })
            .collect();
        per_trigger.sort();
        let per_map: Vec<(String, usize, usize)> = self
            .exec
            .map_names
            .iter()
            .zip(&self.maps)
            .map(|(name, m)| (name.clone(), m.len(), m.approx_bytes()))
            .collect();
        ProfileReport {
            events_processed: self.events_processed,
            per_trigger,
            total_bytes: per_map.iter().map(|(_, _, b)| b).sum(),
            per_map,
            statement_count: self.program.statement_count(),
            code_size: self.program.code_size(),
            compile_time: self.compile_time,
            statements: self
                .profile
                .as_ref()
                .map(|p| p.entries(&self.exec))
                .unwrap_or_default(),
            ordered_probes: ordered_fallback::probes(),
            ordered_fallbacks: ordered_fallback::REASONS
                .iter()
                .zip(ordered_fallback::counts())
                .map(|(r, c)| (r.to_string(), c))
                .collect(),
        }
    }

    /// Alias for [`Engine::profile`] — the per-statement profiling
    /// plane's report (statements populated when
    /// [`Engine::enable_profiling`] is on).
    pub fn profile_report(&self) -> ProfileReport {
        self.profile()
    }
}

/// Reusable statement-evaluation buffers: the slot environment and the
/// staging vector for computed `(key, delta)` updates. One event's worth
/// of state — reused across a whole batch by `process_batch` and by the
/// view server's shared-store ingestion path.
#[derive(Default)]
pub struct EventScratch {
    env: Vec<Value>,
    updates: Vec<(Tuple, Value)>,
}

/// Which statements of a trigger to run.
///
/// Embedded engines run [`StatementPhase::All`]: the compiler already
/// sorts each trigger's statements by execution stage (hierarchy
/// retracts at `-1`, delta updates at `0`, hierarchy rebuilds and legacy
/// `Replace` re-evaluations at `+1`). The shared-store server runs the
/// stages *across views*: for each event, every view's statements of the
/// lowest stage run first, then the next stage, and so on — so shared
/// maps are written exactly once (by their maintainer), retract
/// statements observe every input pre-event, and rebuild/re-evaluation
/// statements observe fully post-event inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementPhase {
    /// Run every statement, in the trigger's (stage-sorted) order.
    All,
    /// Run only the statements of one execution stage.
    Stage(dbtoaster_compiler::Stage),
}

impl StatementPhase {
    fn runs(self, stage: dbtoaster_compiler::Stage) -> bool {
        match self {
            StatementPhase::All => true,
            StatementPhase::Stage(s) => s == stage,
        }
    }
}

// ---------------------------------------------------------------------
// per-statement self-profiling
// ---------------------------------------------------------------------

/// Cumulative per-statement self-profile: nanoseconds and run counts
/// keyed by the program-wide `(trigger index, statement index)` identity
/// (stable across map-id rebinding — see
/// [`ExecProgram::trigger_indexed`]). Recording is two relaxed atomic
/// adds, so one profile can be shared across worker threads.
#[derive(Debug)]
pub struct StmtProfile {
    /// Per-trigger base offset into the flattened statement arrays,
    /// aligned with `ExecProgram::triggers`.
    bases: Vec<usize>,
    nanos: Vec<AtomicU64>,
    runs: Vec<AtomicU64>,
}

impl StmtProfile {
    /// A zeroed profile sized for `exec`'s statements.
    pub fn for_program(exec: &ExecProgram) -> StmtProfile {
        let mut bases = Vec::with_capacity(exec.triggers.len());
        let mut total = 0usize;
        for (_, t) in &exec.triggers {
            bases.push(total);
            total += t.statements.len();
        }
        StmtProfile {
            bases,
            nanos: (0..total).map(|_| AtomicU64::new(0)).collect(),
            runs: (0..total).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Credit one execution of statement `stmt` of trigger `trigger`.
    #[inline]
    pub fn credit(&self, trigger: usize, stmt: usize, nanos: u64) {
        let slot = self.bases[trigger] + stmt;
        self.nanos[slot].fetch_add(nanos, Ordering::Relaxed);
        self.runs[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the statements that have run at least once, in program
    /// order. `exec` must be the program the profile was built for (or
    /// a map-rebound equivalent — trigger/statement order is identical).
    pub fn entries(&self, exec: &ExecProgram) -> Vec<StmtProfileEntry> {
        let mut out = Vec::new();
        for (ti, ((relation, kind), trigger)) in exec.triggers.iter().enumerate() {
            for (si, stmt) in trigger.statements.iter().enumerate() {
                let slot = self.bases[ti] + si;
                let runs = self.runs[slot].load(Ordering::Relaxed);
                if runs == 0 {
                    continue;
                }
                out.push(StmtProfileEntry {
                    trigger: format!("on_{}_{}", kind.label(), relation),
                    stage: stmt.stage,
                    target: exec.map_names[stmt.target].clone(),
                    rendered: stmt.rendered.clone(),
                    runs,
                    nanos: self.nanos[slot].load(Ordering::Relaxed),
                });
            }
        }
        out
    }

    /// Aggregate `(stage, nanos, runs)` per trigger-stage for one
    /// program — the bounded-cardinality shape the server exports as
    /// `dbt_stmt_nanos_total{view,stage}`.
    pub fn stage_totals(&self, exec: &ExecProgram) -> Vec<(dbtoaster_compiler::Stage, u64, u64)> {
        let mut out: Vec<(dbtoaster_compiler::Stage, u64, u64)> = Vec::new();
        for (ti, (_, trigger)) in exec.triggers.iter().enumerate() {
            for (si, stmt) in trigger.statements.iter().enumerate() {
                let slot = self.bases[ti] + si;
                let runs = self.runs[slot].load(Ordering::Relaxed);
                let nanos = self.nanos[slot].load(Ordering::Relaxed);
                if runs == 0 && nanos == 0 {
                    continue;
                }
                match out.iter_mut().find(|(s, _, _)| *s == stmt.stage) {
                    Some((_, n, r)) => {
                        *n += nanos;
                        *r += runs;
                    }
                    None => out.push((stmt.stage, nanos, runs)),
                }
            }
        }
        out.sort_by_key(|(s, _, _)| *s);
        out
    }
}

/// One row of a statement profile snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtProfileEntry {
    /// Trigger label, e.g. `on_insert_BIDS`.
    pub trigger: String,
    /// Execution stage (−1 retract, 0 delta, +1 rebuild).
    pub stage: dbtoaster_compiler::Stage,
    /// Target map name.
    pub target: String,
    /// Human-readable statement rendering.
    pub rendered: String,
    /// Times the statement ran.
    pub runs: u64,
    /// Cumulative execution nanoseconds.
    pub nanos: u64,
}

/// Sampled-span context for statement execution: the recorder, the
/// event's global seq, and a view label for the span detail.
pub struct StmtSpans<'a> {
    pub recorder: &'a TraceRecorder,
    pub seq: u64,
    pub view: &'a str,
    pub tid: u64,
}

/// Optional per-statement instrumentation threaded through
/// [`apply_event_statements`]. All three hooks default to off
/// ([`StmtHooks::none`]) and are independent: `log` is the demo
/// debugger's rendering trace, `profile` the cumulative self-profiler,
/// `spans` the sampled trace recorder. Statement clocks are read only
/// when `profile` or `spans` is present.
#[derive(Default)]
pub struct StmtHooks<'a> {
    /// Human-readable statement log (the demo debugger).
    pub log: Option<&'a mut Vec<String>>,
    /// Cumulative per-statement self-profiler.
    pub profile: Option<&'a StmtProfile>,
    /// Span sink for an event picked by the trace sampler.
    pub spans: Option<StmtSpans<'a>>,
}

impl StmtHooks<'_> {
    /// No instrumentation — the hot-path default.
    pub fn none() -> StmtHooks<'static> {
        StmtHooks::default()
    }
}

// ---------------------------------------------------------------------
// statement evaluation (generic over the map frame)
// ---------------------------------------------------------------------

/// Run one event's trigger statements against an arbitrary map frame.
///
/// This is the execution core shared by the embedded [`Engine`] (which
/// passes its own `Vec<MapStorage>`) and the view server (which passes a
/// write frame into the shared map store, a phase, and a skip list for
/// statements whose shared target another view maintains). Returns
/// `false` when no trigger references the event's relation; counters and
/// clocks are the caller's business, except the per-statement clocks
/// that `hooks` may request.
pub fn apply_event_statements<M: MapWrite + ?Sized>(
    exec: &ExecProgram,
    maps: &mut M,
    event: &Event,
    scratch: &mut EventScratch,
    phase: StatementPhase,
    skip_targets: Option<&[bool]>,
    mut hooks: StmtHooks<'_>,
) -> Result<bool> {
    let Some((trigger_idx, trigger)) = exec.trigger_indexed(&event.relation, event.kind) else {
        return Ok(false);
    };
    if event.tuple.arity() != trigger.event_args {
        return Err(Error::Runtime(format!(
            "event on {} has arity {}, expected {}",
            event.relation,
            event.tuple.arity(),
            trigger.event_args
        )));
    }

    let timing = hooks.profile.is_some() || hooks.spans.is_some();
    let EventScratch { env, updates } = scratch;
    for (stmt_idx, stmt) in trigger.statements.iter().enumerate() {
        if !phase.runs(stmt.stage) {
            continue;
        }
        if skip_targets.is_some_and(|s| s.get(stmt.target).copied().unwrap_or(false)) {
            continue;
        }
        env.clear();
        env.resize(stmt.slots, Value::ZERO);
        env[..event.tuple.arity()].clone_from_slice(&event.tuple);
        let started = timing.then(Instant::now);
        run_statement(stmt, maps, env, updates);
        if let Some(started) = started {
            let nanos = started.elapsed().as_nanos() as u64;
            if let Some(profile) = hooks.profile {
                profile.credit(trigger_idx, stmt_idx, nanos);
            }
            if let Some(spans) = &hooks.spans {
                spans.recorder.record(TraceSpan {
                    seq: spans.seq,
                    layer: LAYER_STATEMENT.to_string(),
                    detail: format!(
                        "view={} stage={} stmt={} target={}",
                        spans.view, stmt.stage, stmt_idx, exec.map_names[stmt.target]
                    ),
                    start_ns: spans.recorder.ns_of(started),
                    dur_ns: nanos,
                    tid: spans.tid,
                });
            }
        }
        if let Some(log) = hooks.log.as_deref_mut() {
            log.push(format!(
                "  {} => {} now has {} entries",
                stmt.rendered,
                exec.map_names[stmt.target],
                maps.map(stmt.target).len()
            ));
        }
    }

    Ok(true)
}

/// Execute one lowered statement against the maps. The caller provides
/// the environment with the leading slots (trigger arguments) already
/// populated and sized to `stmt.slots`; bootstrap callers
/// ([`Engine::rebuild_derived`]) pass a zeroed environment, which is
/// valid for post-stage statements because they reference no trigger
/// arguments.
fn run_statement<M: MapWrite + ?Sized>(
    stmt: &crate::lower::ExecStatement,
    maps: &mut M,
    env: &mut Vec<Value>,
    updates: &mut Vec<(Tuple, Value)>,
) {
    if env.len() < stmt.slots {
        env.resize(stmt.slots, Value::ZERO);
    }
    if stmt.clear_target {
        maps.map_mut(stmt.target).clear();
    }
    updates.clear();
    let fast = match &stmt.interval {
        Some(plan) => run_interval_statement(plan, stmt, &*maps, env, updates),
        None => false,
    };
    if !fast {
        run_block(&*maps, &stmt.block, env, 0, &mut |env, maps| {
            let key: Tuple = stmt
                .keys
                .iter()
                .map(|k| eval_scalar(k, env, maps))
                .collect();
            let value = match &stmt.block.value {
                Some(v) => eval_scalar(v, env, maps),
                None => Value::ONE,
            };
            if !value.is_zero() {
                updates.push((key, value));
            }
        });
    }
    let target = stmt.target;
    for (key, value) in updates.drain(..) {
        maps.map_mut(target).add(key, value);
    }
}

/// Evaluate the pivot guard of an interval plan at one outer key: bind
/// the key, evaluate the probe (the inner range sum at that key), and
/// test the guard.
fn interval_guard_true<M: MapRead + ?Sized>(
    key: &Value,
    plan: &crate::lower::IntervalPlan,
    block: &Block,
    env: &mut [Value],
    maps: &M,
) -> bool {
    env[plan.key_slot] = key.clone();
    let probe = eval_scalar(&plan.probe, env, maps);
    env[plan.probe_slot] = probe;
    eval_scalar(&block.guards[plan.pivot_guard], env, maps).as_bool()
}

/// Process-wide counters for ordered-index fast-path fallbacks, one per
/// reason. The interval plan and `RangeSum` probes carry runtime
/// preconditions (indexes present, non-negative inner values, comparable
/// keys); when one fails the engine silently falls back to the
/// always-correct O(P) loop/scan. These counters make fallback storms
/// visible: servers drain them into the `dbt_ordered_fallback_total`
/// telemetry counter at scrape time. Lock-free relaxed atomics — the
/// fallback paths are already slow, one `fetch_add` is noise.
pub mod ordered_fallback {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Reason labels, index-aligned with [`counts`].
    pub const REASONS: [&str; 6] = [
        "missing_outer_index",
        "missing_inner_index",
        "probe_shape",
        "negative_inner",
        "incomparable_keys",
        "range_probe_scan",
    ];
    pub const MISSING_OUTER_INDEX: usize = 0;
    pub const MISSING_INNER_INDEX: usize = 1;
    pub const PROBE_SHAPE: usize = 2;
    pub const NEGATIVE_INNER: usize = 3;
    pub const INCOMPARABLE_KEYS: usize = 4;
    pub const RANGE_PROBE_SCAN: usize = 5;

    static COUNTS: [AtomicU64; 6] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];

    static PROBES: AtomicU64 = AtomicU64::new(0);

    #[inline]
    pub(crate) fn bump(reason: usize) {
        COUNTS[reason].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn bump_probe() {
        PROBES.fetch_add(1, Ordering::Relaxed);
    }

    /// Current totals since process start, index-aligned with [`REASONS`].
    pub fn counts() -> [u64; 6] {
        std::array::from_fn(|i| COUNTS[i].load(Ordering::Relaxed))
    }

    /// Successful ordered-index range probes since process start — the
    /// denominator side of the probe-vs-fallback ratio (the probe either
    /// answers from the index, counted here, or falls back to the scan,
    /// counted under `range_probe_scan`).
    pub fn probes() -> u64 {
        PROBES.load(Ordering::Relaxed)
    }
}

/// The monotone-guard interval fast path: execute a statement carrying
/// an [`crate::lower::IntervalPlan`] in O(log² P) instead of looping the
/// outer map — binary-search the guard's flip point over the outer
/// ordered index (each probe an O(log P) inner range sum), then fold the
/// surviving key interval with one O(log P) interval sum.
///
/// Returns `true` when the statement was fully handled (its updates
/// staged in `updates`); `false` when a runtime precondition fails —
/// missing indexes, mixed-class keys, or negative inner values breaking
/// the probe's monotonicity — in which case the caller falls back to the
/// loop, which is always correct.
fn run_interval_statement<M: MapRead + ?Sized>(
    plan: &crate::lower::IntervalPlan,
    stmt: &crate::lower::ExecStatement,
    maps: &M,
    env: &mut [Value],
    updates: &mut Vec<(Tuple, Value)>,
) -> bool {
    let block = &stmt.block;
    let outer = maps.map(plan.outer_map);
    if !outer.has_ordered(0) {
        ordered_fallback::bump(ordered_fallback::MISSING_OUTER_INDEX);
        return false;
    }
    let inner = maps.map(plan.inner_map);
    if !inner.has_ordered(plan.inner_ordered_pos) {
        ordered_fallback::bump(ordered_fallback::MISSING_INNER_INDEX);
        return false;
    }

    // Loop-invariant assignments (everything but the probe), in the same
    // order the loop would run them: hoisted (level 0) first, innermost
    // after. Each is evaluated exactly once — they read no loop slots.
    for a in &block.assigns {
        if a.slot != plan.probe_slot && a.level.unwrap_or(block.loops.len()) == 0 {
            env[a.slot] = eval_scalar(&a.value, env, maps);
        }
    }
    for a in &block.assigns {
        if a.slot != plan.probe_slot && a.level.unwrap_or(block.loops.len()) != 0 {
            env[a.slot] = eval_scalar(&a.value, env, maps);
        }
    }

    // The probe is monotone in the outer key only while the inner map's
    // summed values are all non-negative (a shrinking range can otherwise
    // grow in value); the ordered group tracks that cheaply.
    let Scalar::RangeSum { eq_values, .. } = &plan.probe else {
        ordered_fallback::bump(ordered_fallback::PROBE_SHAPE);
        return false;
    };
    let inner_eq: Tuple = eq_values
        .iter()
        .map(|s| eval_scalar(s, env, maps))
        .collect();
    if let Some(view) = inner.ordered_view(plan.inner_ordered_pos, &inner_eq) {
        if !view.nonnegative() {
            ordered_fallback::bump(ordered_fallback::NEGATIVE_INNER);
            return false;
        }
    }

    // Loop-invariant guards: evaluated once; any failure zeroes the
    // whole statement (exactly as it would kill every loop iteration).
    for (gi, g) in block.guards.iter().enumerate() {
        if gi != plan.pivot_guard && !eval_scalar(g, env, maps).as_bool() {
            return true;
        }
    }

    let Some(view) = outer.ordered_view(0, &Tuple::empty()) else {
        return true; // empty outer map: the loop would emit nothing
    };
    if !view.comparable() {
        // Mixed-class keys: the index's sort order can disagree with SQL
        // comparison, so the flip point is not well-defined.
        ordered_fallback::bump(ordered_fallback::INCOMPARABLE_KEYS);
        return false;
    }

    // Binary-search the guard's flip point along the sorted outer keys.
    let keys = view.keys();
    let n = keys.len();
    let flip = if plan.rising {
        keys.partition_point(|k| !interval_guard_true(k, plan, block, env, maps))
    } else {
        keys.partition_point(|k| interval_guard_true(k, plan, block, env, maps))
    };
    let (lo, hi) = if plan.rising { (flip, n) } else { (0, flip) };
    if lo >= hi {
        return true;
    }

    // One interval sum replaces the whole surviving sub-loop; the
    // emitted value distributes over it (integer-exactly) because every
    // non-value factor is loop-invariant.
    env[plan.value_slot] = view.interval_sum(lo, hi);
    let key: Tuple = stmt
        .keys
        .iter()
        .map(|k| eval_scalar(k, env, maps))
        .collect();
    let value = match &block.value {
        Some(v) => eval_scalar(v, env, maps),
        None => Value::ONE,
    };
    if !value.is_zero() {
        updates.push((key, value));
    }
    true
}

/// Output column names of a lowered program, in `SELECT` order.
pub fn result_column_names(exec: &ExecProgram) -> Vec<String> {
    exec.result
        .columns
        .iter()
        .map(|c| match c {
            ResultColumnSpec::Group { name, .. }
            | ResultColumnSpec::Sum { name, .. }
            | ResultColumnSpec::Avg { name, .. }
            | ResultColumnSpec::Extremum { name, .. } => name.clone(),
        })
        .collect()
}

/// Assemble the standing-query result rows from an arbitrary map frame,
/// sorted by group key for deterministic output.
pub fn assemble_result<M: MapRead + ?Sized>(exec: &ExecProgram, maps: &M) -> Vec<ResultRow> {
    let spec = &exec.result;
    // Collect the set of group keys from the driver maps (or the
    // single empty key for scalar queries).
    let mut keys: Vec<Tuple> = Vec::new();
    if spec.group_arity == 0 {
        keys.push(Tuple::empty());
    } else {
        for &m in &spec.driver_maps {
            for (k, _) in maps.map(m).iter() {
                if !keys.contains(k) {
                    keys.push(k.clone());
                }
            }
        }
        // Extremum-only queries: derive groups from support maps.
        if spec.driver_maps.is_empty() {
            for col in &spec.columns {
                if let ResultColumnSpec::Extremum { map, .. } = col {
                    for (k, _) in maps.map(*map).iter() {
                        let prefix = Tuple::new(k.0[..spec.group_arity].to_vec());
                        if !keys.contains(&prefix) {
                            keys.push(prefix);
                        }
                    }
                }
            }
        }
        keys.sort();
    }

    let mut rows = Vec::with_capacity(keys.len());
    for key in keys {
        let mut values = Vec::with_capacity(spec.columns.len());
        let mut all_zero = true;
        for col in &spec.columns {
            let v = match col {
                ResultColumnSpec::Group { index, .. } => {
                    all_zero = false;
                    key[*index].clone()
                }
                ResultColumnSpec::Sum { map, .. } => {
                    let v = maps.map(*map).get(&key);
                    if !v.is_zero() {
                        all_zero = false;
                    }
                    v
                }
                ResultColumnSpec::Avg { sum, count, .. } => {
                    let s = maps.map(*sum).get(&key);
                    let c = maps.map(*count).get(&key);
                    if !c.is_zero() {
                        all_zero = false;
                    }
                    s.div(&c)
                }
                ResultColumnSpec::Extremum { map, is_min, .. } => {
                    let mut best: Option<Value> = None;
                    for (k, v) in maps.map(*map).iter() {
                        if k.0[..key.arity()] == key.0[..] && v.as_f64() > 0.0 {
                            let candidate = k.0[key.arity()].clone();
                            best = Some(match best {
                                None => candidate,
                                Some(b) => {
                                    if *is_min {
                                        b.min_of(&candidate)
                                    } else {
                                        b.max_of(&candidate)
                                    }
                                }
                            });
                            all_zero = false;
                        }
                    }
                    best.unwrap_or(Value::Null)
                }
            };
            values.push(v);
        }
        // For scalar queries we always report the single row; grouped
        // queries drop groups whose aggregates have all vanished.
        if spec.group_arity == 0 || !all_zero {
            rows.push(ResultRow { key, values });
        }
    }
    rows
}

/// Drive the nested loops of a block, invoking `emit` for every binding.
/// Guards and assignments are evaluated innermost (per complete binding).
fn run_block<M: MapRead + ?Sized>(
    maps: &M,
    block: &Block,
    env: &mut Vec<Value>,
    level: usize,
    emit: &mut dyn FnMut(&mut Vec<Value>, &M),
) {
    // Assignments run at the level where their inputs are bound —
    // *before* this level's loop evaluates bound keys that may read the
    // assigned slots (`None` = innermost, for untracked Lift bodies).
    for a in &block.assigns {
        if a.level.unwrap_or(block.loops.len()) == level {
            env[a.slot] = eval_scalar(&a.value, env, maps);
        }
    }
    if level == block.loops.len() {
        for g in &block.guards {
            if !eval_scalar(g, env, maps).as_bool() {
                return;
            }
        }
        emit(env, maps);
        return;
    }
    let step = &block.loops[level];
    let bound: Tuple = step
        .bound_values
        .iter()
        .map(|s| eval_scalar(s, env, maps))
        .collect();
    // The slice holds shared borrows of the map; recursive evaluation
    // only reads maps (updates are staged outside `run_block`), so the
    // entries need no deep copy — only the bound key components are
    // cloned into the environment.
    for (key, value) in maps.map(step.map).slice(&step.bound_positions, &bound) {
        for (pos, slot) in &step.bind {
            env[*slot] = key[*pos].clone();
        }
        env[step.value_slot] = value.clone();
        run_block(maps, block, env, level + 1, emit);
    }
}

/// Evaluate a scalar expression.
fn eval_scalar<M: MapRead + ?Sized>(scalar: &Scalar, env: &[Value], maps: &M) -> Value {
    match scalar {
        Scalar::Const(c) => c.clone(),
        Scalar::Slot(i) => env[*i].clone(),
        Scalar::Add(es) => es
            .iter()
            .fold(Value::ZERO, |acc, e| acc.add(&eval_scalar(e, env, maps))),
        Scalar::Mul(es) => {
            let mut acc = Value::ONE;
            for e in es {
                acc = acc.mul(&eval_scalar(e, env, maps));
                if acc.is_zero() {
                    return acc;
                }
            }
            acc
        }
        Scalar::Neg(e) => eval_scalar(e, env, maps).neg(),
        Scalar::Div(a, b) => eval_scalar(a, env, maps).div(&eval_scalar(b, env, maps)),
        Scalar::Cmp { op, left, right } => {
            let l = eval_scalar(left, env, maps);
            let r = eval_scalar(right, env, maps);
            Value::Int(op.eval(&l, &r) as i64)
        }
        Scalar::Lookup { map, keys } => {
            let key: Tuple = keys.iter().map(|k| eval_scalar(k, env, maps)).collect();
            maps.map(*map).get(&key)
        }
        Scalar::RangeSum {
            map,
            eq_positions,
            eq_values,
            ordered_pos,
            op,
            bound,
        } => {
            let eq_bound: Tuple = eq_values
                .iter()
                .map(|k| eval_scalar(k, env, maps))
                .collect();
            let b = eval_scalar(bound, env, maps);
            let storage = maps.map(*map);
            // O(log P) from the ordered index when it can answer exactly
            // under SQL comparison semantics; O(P) scan otherwise.
            match storage.range_sum(*ordered_pos, &eq_bound, *op, &b) {
                Some(v) => {
                    ordered_fallback::bump_probe();
                    v
                }
                None => {
                    ordered_fallback::bump(ordered_fallback::RANGE_PROBE_SCAN);
                    storage.range_sum_scan(*ordered_pos, eq_positions, &eq_bound, *op, &b)
                }
            }
        }
        Scalar::Aggregate(block) => eval_block_sum(block, env, maps),
        Scalar::Exists(block) => {
            let v = eval_block_sum(block, env, maps);
            Value::Int((!v.is_zero()) as i64)
        }
    }
}

/// Sum a nested block (Lift / EXISTS bodies).
fn eval_block_sum<M: MapRead + ?Sized>(block: &Block, env: &[Value], maps: &M) -> Value {
    let mut scratch = env.to_vec();
    let mut total = Value::ZERO;
    run_block(maps, block, &mut scratch, 0, &mut |env, maps| {
        if let Some(v) = &block.value {
            total = total.add(&eval_scalar(v, env, maps));
        } else {
            total = total.add(&Value::ONE);
        }
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_common::{tuple, Catalog, ColumnType, Schema, UpdateStream};
    use dbtoaster_compiler::{compile_sql, CompileOptions};

    fn rst_catalog() -> Catalog {
        Catalog::new()
            .with(Schema::new(
                "R",
                vec![("A", ColumnType::Int), ("B", ColumnType::Int)],
            ))
            .with(Schema::new(
                "S",
                vec![("B", ColumnType::Int), ("C", ColumnType::Int)],
            ))
            .with(Schema::new(
                "T",
                vec![("C", ColumnType::Int), ("D", ColumnType::Int)],
            ))
    }

    fn engine_for(sql: &str, options: &CompileOptions) -> Engine {
        let p = compile_sql(sql, &rst_catalog(), options).unwrap();
        Engine::new(&p).unwrap()
    }

    /// Reference computation of sum(A*D) over explicit relation contents.
    fn reference_sum_ad(r: &[(i64, i64)], s: &[(i64, i64)], t: &[(i64, i64)]) -> i64 {
        let mut total = 0;
        for (a, b) in r {
            for (b2, c) in s {
                if b == b2 {
                    for (c2, d) in t {
                        if c == c2 {
                            total += a * d;
                        }
                    }
                }
            }
        }
        total
    }

    const RST: &str = "select sum(A*D) from R, S, T where R.B=S.B and S.C=T.C";

    #[test]
    fn figure2_example_matches_hand_computation() {
        let mut engine = engine_for(RST, &CompileOptions::full());
        // Events in an order that exercises all handlers.
        let events = vec![
            Event::insert("S", tuple![1i64, 10i64]),
            Event::insert("R", tuple![5i64, 1i64]),
            Event::insert("T", tuple![10i64, 7i64]),
            Event::insert("R", tuple![2i64, 1i64]),
            Event::insert("T", tuple![10i64, 3i64]),
            Event::insert("S", tuple![1i64, 20i64]),
            Event::insert("T", tuple![20i64, 100i64]),
        ];
        engine.process(&events).unwrap();
        let r = [(5, 1), (2, 1)];
        let s = [(1, 10), (1, 20)];
        let t = [(10, 7), (10, 3), (20, 100)];
        assert_eq!(
            engine.scalar_result(),
            Value::Int(reference_sum_ad(&r, &s, &t))
        );
    }

    #[test]
    fn deletions_and_reinsertions_cancel_exactly() {
        let mut engine = engine_for(RST, &CompileOptions::full());
        let mut stream = UpdateStream::new();
        stream.push(Event::insert("R", tuple![4i64, 2i64]));
        stream.push(Event::insert("S", tuple![2i64, 9i64]));
        stream.push(Event::insert("T", tuple![9i64, 11i64]));
        stream.push(Event::delete("S", tuple![2i64, 9i64]));
        engine.process(&stream).unwrap();
        assert_eq!(engine.scalar_result(), Value::Int(0));
        engine
            .on_event(&Event::insert("S", tuple![2i64, 9i64]))
            .unwrap();
        assert_eq!(engine.scalar_result(), Value::Int(44));
    }

    #[test]
    fn full_and_first_order_compilation_agree() {
        let mut full = engine_for(RST, &CompileOptions::full());
        let mut first = engine_for(RST, &CompileOptions::first_order());
        let events = [
            Event::insert("R", tuple![1i64, 1i64]),
            Event::insert("S", tuple![1i64, 2i64]),
            Event::insert("T", tuple![2i64, 5i64]),
            Event::insert("R", tuple![3i64, 1i64]),
            Event::delete("R", tuple![1i64, 1i64]),
            Event::insert("T", tuple![2i64, 7i64]),
        ];
        for e in &events {
            full.on_event(e).unwrap();
            first.on_event(e).unwrap();
            assert_eq!(
                full.scalar_result(),
                first.scalar_result(),
                "diverged at {e:?}"
            );
        }
    }

    #[test]
    fn grouped_first_order_compilation_matches_full() {
        // Regression: a grouped first-order statement loops over a BASE
        // map whose bound key comes from an equality *assignment*
        // (group var := trigger arg), not from a trigger-arg slot. The
        // assignment must run before the loop evaluates its bound keys,
        // or the slice probes a zeroed slot and matches nothing.
        let sql = "select R.B, sum(A*D) from R, S, T where R.B=S.B and S.C=T.C group by R.B";
        let mut full = engine_for(sql, &CompileOptions::full());
        let mut first = engine_for(sql, &CompileOptions::first_order());
        let events = [
            Event::insert("S", tuple![1i64, 10i64]),
            Event::insert("R", tuple![5i64, 1i64]),
            Event::insert("T", tuple![10i64, 7i64]),
            Event::insert("R", tuple![2i64, 2i64]),
            Event::insert("S", tuple![2i64, 10i64]),
            Event::delete("R", tuple![5i64, 1i64]),
            Event::insert("T", tuple![10i64, 3i64]),
        ];
        for e in &events {
            full.on_event(e).unwrap();
            first.on_event(e).unwrap();
            assert_eq!(full.result(), first.result(), "diverged at {e:?}");
        }
        // And both agree with the hand computation: after the deletion
        // only R(2,2) remains, joining S(2,10) and T(10,{7,3}).
        assert_eq!(full.result().len(), 1);
        assert_eq!(
            full.result()[0].values,
            vec![Value::Int(2), Value::Int(2 * 7 + 2 * 3)]
        );
    }

    #[test]
    fn grouped_query_returns_rows_per_group() {
        let cat = rst_catalog();
        let p = compile_sql(
            "select B, sum(A), count(*) from R group by B",
            &cat,
            &CompileOptions::full(),
        )
        .unwrap();
        let mut engine = Engine::new(&p).unwrap();
        for (a, b) in [(10i64, 1i64), (20, 1), (5, 2)] {
            engine.on_event(&Event::insert("R", tuple![a, b])).unwrap();
        }
        let rows = engine.result();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].values,
            vec![Value::Int(1), Value::Int(30), Value::Int(2)]
        );
        assert_eq!(
            rows[1].values,
            vec![Value::Int(2), Value::Int(5), Value::Int(1)]
        );
        // Deleting the only group-2 row removes that group from the output.
        engine
            .on_event(&Event::delete("R", tuple![5i64, 2i64]))
            .unwrap();
        assert_eq!(engine.result().len(), 1);
    }

    #[test]
    fn avg_and_minmax_columns_are_assembled_from_their_maps() {
        let cat = rst_catalog();
        let p = compile_sql(
            "select B, avg(A), min(A), max(A) from R group by B",
            &cat,
            &CompileOptions::full(),
        )
        .unwrap();
        let mut engine = Engine::new(&p).unwrap();
        for a in [10i64, 20, 60] {
            engine
                .on_event(&Event::insert("R", tuple![a, 1i64]))
                .unwrap();
        }
        let rows = engine.result();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[1], Value::Int(30));
        assert_eq!(rows[0].values[2], Value::Int(10));
        assert_eq!(rows[0].values[3], Value::Int(60));
        // Deleting the current maximum exposes the next one.
        engine
            .on_event(&Event::delete("R", tuple![60i64, 1i64]))
            .unwrap();
        assert_eq!(engine.result()[0].values[3], Value::Int(20));
    }

    #[test]
    fn snapshots_and_lookups_expose_internal_maps() {
        let mut engine = engine_for(RST, &CompileOptions::full());
        engine
            .on_event(&Event::insert("S", tuple![1i64, 10i64]))
            .unwrap();
        let q1_name = engine
            .exec_program()
            .map_names
            .iter()
            .find(|n| n.starts_with("M5"))
            .unwrap()
            .clone();
        let snapshot = engine.map_snapshot(&q1_name).unwrap();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot[0].1, Value::Int(1));
        assert_eq!(
            engine.lookup(&q1_name, &tuple![1i64, 10i64]),
            Some(Value::Int(1))
        );
        assert!(engine.map_snapshot("NOPE").is_none());
    }

    #[test]
    fn profiler_reports_triggers_maps_and_code_size() {
        let mut engine = engine_for(RST, &CompileOptions::full());
        engine
            .on_event(&Event::insert("R", tuple![1i64, 1i64]))
            .unwrap();
        engine
            .on_event(&Event::insert("S", tuple![1i64, 2i64]))
            .unwrap();
        let report = engine.profile();
        assert_eq!(report.events_processed, 2);
        assert_eq!(report.per_map.len(), 6);
        assert!(report.statement_count >= 8);
        assert!(report.total_bytes > 0);
        assert!(report
            .per_trigger
            .iter()
            .any(|(n, c, _)| n == "on_insert_R" && *c == 1));
    }

    #[test]
    fn tracing_records_statement_applications() {
        let mut engine = engine_for(RST, &CompileOptions::full());
        engine.enable_tracing(true);
        engine
            .on_event(&Event::insert("R", tuple![1i64, 1i64]))
            .unwrap();
        let trace = engine.last_trace();
        assert!(trace[0].starts_with("event: insert R"));
        assert!(trace.len() > 1);
    }

    #[test]
    fn events_on_unknown_relations_are_ignored() {
        let mut engine = engine_for(RST, &CompileOptions::full());
        engine
            .on_event(&Event::insert("UNRELATED", tuple![1i64]))
            .unwrap();
        assert_eq!(engine.scalar_result(), Value::Int(0));
    }

    #[test]
    fn arity_mismatches_are_runtime_errors() {
        let mut engine = engine_for(RST, &CompileOptions::full());
        assert!(engine.on_event(&Event::insert("R", tuple![1i64])).is_err());
    }

    #[test]
    fn process_batch_matches_per_event_processing() {
        let mut per_event = engine_for(RST, &CompileOptions::full());
        let mut batched = engine_for(RST, &CompileOptions::full());
        let events = vec![
            Event::insert("S", tuple![1i64, 10i64]),
            Event::insert("R", tuple![5i64, 1i64]),
            Event::insert("T", tuple![10i64, 7i64]),
            Event::insert("UNRELATED", tuple![1i64]),
            Event::delete("R", tuple![5i64, 1i64]),
            Event::insert("R", tuple![2i64, 1i64]),
        ];
        per_event.process(&events).unwrap();
        let absorbed = batched.process_batch(&events).unwrap();
        assert_eq!(absorbed, events.len());
        assert_eq!(batched.scalar_result(), per_event.scalar_result());
        assert_eq!(batched.events_processed(), per_event.events_processed());
        // Per-trigger counts are exact in batch mode too.
        let count_of = |p: &ProfileReport, name: &str| {
            p.per_trigger
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, c, _)| *c)
        };
        let bp = batched.profile();
        assert_eq!(count_of(&bp, "on_insert_R"), Some(2));
        assert_eq!(count_of(&bp, "on_delete_R"), Some(1));
        assert_eq!(count_of(&bp, "on_insert_S"), Some(1));
    }

    #[test]
    fn process_batch_reports_arity_errors_and_flushes_stats() {
        let mut engine = engine_for(RST, &CompileOptions::full());
        let events = vec![
            Event::insert("R", tuple![1i64, 2i64]),
            Event::insert("R", tuple![1i64]),
        ];
        assert!(engine.process_batch(&events).is_err());
        // The valid prefix is absorbed and its per-trigger count flushed,
        // matching what the per-event path would report after the error.
        assert_eq!(engine.events_processed(), 1);
        let report = engine.profile();
        assert!(report
            .per_trigger
            .iter()
            .any(|(n, c, _)| n == "on_insert_R" && *c == 1));
    }

    #[test]
    fn warm_start_via_load_map_and_rebuild_derived_matches_replay() {
        // A nested view (hierarchy-maintained result map over child
        // maps): engine A replays an archive; engine B warm-starts by
        // bulk-loading A's flat maps and rebuilding the derived map.
        // Both must answer identically, now and after further events.
        let cat = Catalog::new().with(Schema::new(
            "BOOK",
            vec![("PRICE", ColumnType::Int), ("VOLUME", ColumnType::Int)],
        ));
        let sql = "select sum(b1.PRICE * b1.VOLUME) from BOOK b1 \
                   where b1.PRICE * 4 > (select sum(b2.VOLUME) from BOOK b2)";
        let p = compile_sql(sql, &cat, &CompileOptions::full()).unwrap();
        let mut replayed = Engine::new(&p).unwrap();
        for i in 0..40i64 {
            replayed
                .on_event(&Event::insert("BOOK", tuple![i % 9 + 1, i % 5 + 1]))
                .unwrap();
        }

        let mut warm = Engine::new(&p).unwrap();
        let derived_targets: Vec<String> = replayed
            .exec_program()
            .triggers
            .iter()
            .flat_map(|(_, t)| &t.statements)
            .filter(|s| s.stage > 0)
            .map(|s| replayed.exec_program().map_names[s.target].clone())
            .collect();
        for name in replayed.exec_program().map_names.clone() {
            if derived_targets.contains(&name) {
                continue;
            }
            warm.load_map(&name, replayed.map_snapshot(&name).unwrap())
                .unwrap();
        }
        warm.rebuild_derived().unwrap();
        assert_eq!(warm.result(), replayed.result());

        // The warm-started engine keeps maintaining correctly.
        for e in [
            Event::insert("BOOK", tuple![2i64, 50i64]),
            Event::delete("BOOK", tuple![3i64, 4i64]),
        ] {
            warm.on_event(&e).unwrap();
            replayed.on_event(&e).unwrap();
            assert_eq!(warm.result(), replayed.result(), "diverged at {e:?}");
        }
        assert!(warm.load_map("NOPE", vec![]).is_err());
    }

    #[test]
    fn memory_grows_with_state_and_shrinks_on_deletes() {
        let mut engine = engine_for(RST, &CompileOptions::full());
        let empty = engine.memory_bytes();
        for i in 0..50i64 {
            engine.on_event(&Event::insert("S", tuple![i, i])).unwrap();
        }
        let loaded = engine.memory_bytes();
        assert!(loaded > empty);
        for i in 0..50i64 {
            engine.on_event(&Event::delete("S", tuple![i, i])).unwrap();
        }
        assert!(engine.memory_bytes() < loaded);
    }
}
